//! Abstract syntax for the supported SQL fragment.
//!
//! The shapes mirror §3.1's normal form: a query is a projection and an
//! optional grouping over a selection of a join path. The WHERE clause is
//! an arbitrary boolean combination at this level; [`crate::dnf`] flattens
//! it into the disjunctive normal form the cracker extraction works on.

use crate::error::Span;
use engine::query::AggFunc;

/// A (possibly qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Qualifying table, when written `table.column`.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
    /// Source location.
    pub span: Span,
}

impl ColumnRef {
    /// An unqualified reference (used by tests and builders).
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
            span: Span::default(),
        }
    }

    /// A qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
            span: Span::default(),
        }
    }

    /// Render as `table.column` or bare `column`.
    pub fn display(&self) -> String {
        match &self.table {
            Some(t) => format!("{t}.{}", self.column),
            None => self.column.clone(),
        }
    }
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CmpOp {
    /// The operator with its operands swapped (`5 < a` ⇔ `a > 5`).
    pub fn mirrored(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// The logical negation (`NOT (a < 5)` ⇔ `a >= 5`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// Evaluate against two integers (for constant folding).
    pub fn eval(self, l: i64, r: i64) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Ge => l >= r,
            CmpOp::Gt => l > r,
        }
    }
}

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A column reference.
    Column(ColumnRef),
    /// An integer literal.
    Literal(i64),
    /// A positional parameter (`?`), numbered left to right from 0 within
    /// its statement. Bound to an integer by a prepared statement.
    Param {
        /// Zero-based position among the statement's `?` placeholders.
        idx: usize,
    },
}

impl Operand {
    /// The source span (literals and parameters get the enclosing
    /// comparison's span from the parser; column refs carry their own).
    pub fn span_or(&self, fallback: Span) -> Span {
        match self {
            Operand::Column(c) => c.span,
            Operand::Literal(_) | Operand::Param { .. } => fallback,
        }
    }
}

/// A boolean expression in a WHERE clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// A binary comparison.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
        /// Source location of the whole comparison.
        span: Span,
    },
    /// `col [NOT] BETWEEN low AND high` (inclusive on both ends, as in
    /// standard SQL).
    Between {
        /// Tested column.
        col: ColumnRef,
        /// Lower bound.
        low: i64,
        /// Upper bound.
        high: i64,
        /// True for `NOT BETWEEN`.
        negated: bool,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// The source span covered by this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::And(l, r) | Expr::Or(l, r) => l.span().merge(r.span()),
            Expr::Not(e) => e.span(),
            Expr::Cmp { span, .. } | Expr::Between { span, .. } => *span,
        }
    }
}

/// One item of a SELECT projection list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProjItem {
    /// A plain column.
    Column(ColumnRef),
    /// An aggregate call: `COUNT(*)`, `COUNT(col)`, `SUM(col)`, `MIN(col)`,
    /// `MAX(col)`.
    Aggregate {
        /// Aggregate function.
        func: AggFunc,
        /// Argument column; `None` for `COUNT(*)`.
        arg: Option<ColumnRef>,
        /// Source location.
        span: Span,
    },
}

impl ProjItem {
    /// The output column label for this item.
    pub fn label(&self) -> String {
        match self {
            ProjItem::Column(c) => c.column.clone(),
            ProjItem::Aggregate { func, arg, .. } => {
                let f = match func {
                    AggFunc::Count => "count",
                    AggFunc::Sum => "sum",
                    AggFunc::Min => "min",
                    AggFunc::Max => "max",
                };
                match arg {
                    Some(c) => format!("{f}({})", c.column),
                    None => format!("{f}(*)"),
                }
            }
        }
    }
}

/// A SELECT projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// An explicit item list.
    Items(Vec<ProjItem>),
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectStmt {
    /// What to return.
    pub projection: Projection,
    /// FROM list (join paths are expressed as equality predicates in
    /// WHERE, as the paper's example queries do).
    pub tables: Vec<(String, Span)>,
    /// Optional WHERE clause.
    pub filter: Option<Expr>,
    /// GROUP BY columns (the engine's Ω cracker supports one).
    pub group_by: Vec<ColumnRef>,
    /// Optional row cap (`LIMIT n`) — the "top-n queries" the hiking
    /// profile is driven by (§4).
    pub limit: Option<usize>,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE TABLE name (col INTEGER, ...)` — all columns integer, the
    /// tapestry playground's shape.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names in declaration order.
        columns: Vec<String>,
        /// Source location of the name.
        span: Span,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
        /// Source location of the name.
        span: Span,
    },
    /// `INSERT INTO name VALUES (..), (..)`.
    InsertValues {
        /// Target table.
        table: String,
        /// Row literals.
        rows: Vec<Vec<i64>>,
        /// Source location of the table name.
        span: Span,
    },
    /// `INSERT INTO name SELECT ...` — Figure 1(a)'s materialization.
    InsertSelect {
        /// Target table.
        table: String,
        /// Source query.
        select: SelectStmt,
        /// Source location of the table name.
        span: Span,
    },
    /// `DELETE FROM name [WHERE expr]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate; `None` deletes every row.
        filter: Option<Expr>,
        /// Source location of the table name.
        span: Span,
    },
    /// A plain SELECT.
    Select(SelectStmt),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_mirror_and_negate() {
        assert_eq!(CmpOp::Lt.mirrored(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.mirrored(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.mirrored(), CmpOp::Eq);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Ne.negated(), CmpOp::Eq);
        // Negation is an involution; mirroring is too.
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Ge,
            CmpOp::Gt,
        ] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.mirrored().mirrored(), op);
        }
    }

    #[test]
    fn cmp_op_eval_matches_rust_semantics() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(CmpOp::Ge.eval(2, 2));
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::bare("a").display(), "a");
        assert_eq!(ColumnRef::qualified("r", "a").display(), "r.a");
    }

    #[test]
    fn proj_item_labels() {
        assert_eq!(ProjItem::Column(ColumnRef::bare("a")).label(), "a");
        assert_eq!(
            ProjItem::Aggregate {
                func: AggFunc::Count,
                arg: None,
                span: Span::default()
            }
            .label(),
            "count(*)"
        );
        assert_eq!(
            ProjItem::Aggregate {
                func: AggFunc::Sum,
                arg: Some(ColumnRef::bare("a")),
                span: Span::default()
            }
            .label(),
            "sum(a)"
        );
    }

    #[test]
    fn expr_span_merges_children() {
        let c1 = Expr::Cmp {
            left: Operand::Column(ColumnRef::bare("a")),
            op: CmpOp::Lt,
            right: Operand::Literal(5),
            span: Span::new(0, 5),
        };
        let c2 = Expr::Cmp {
            left: Operand::Column(ColumnRef::bare("b")),
            op: CmpOp::Gt,
            right: Operand::Literal(9),
            span: Span::new(10, 15),
        };
        let e = Expr::And(Box::new(c1), Box::new(c2));
        assert_eq!(e.span(), Span::new(0, 15));
    }
}
