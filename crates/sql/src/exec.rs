//! Statement execution: a SQL session over an [`AdaptiveDb`].
//!
//! [`SqlSession`] is the "peek into the future" of §5.1 done right: where
//! the paper's SQL-level experiment had to emulate cracking with
//! `SELECT INTO` fragment tables (and found the catalog churn ruinous),
//! the session lowers statements straight onto the in-memory cracker — so
//! every `SELECT` leaves the store a little better partitioned for the
//! next one.
//!
//! Base-table DDL/DML (`CREATE`/`DROP`/`INSERT`) takes the conservative
//! end of the paper's open update question: it invalidates the cracked
//! state of the affected store on the next query (the incremental end —
//! pending staging areas — is available programmatically through
//! [`AdaptiveDb::stage_insert`]).

use crate::ast::{SelectStmt, Statement};
use crate::error::{Span, SqlError, SqlResult};
use crate::lower::{lower_select, LoweredSelect, OutputCol, Resolved};
use crate::parser::{parse, parse_one};
use cracker_core::{CrackerConfig, RangePred};
use engine::query::{AggFunc, QueryTerm};
use engine::{AdaptiveDb, Table};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// Selector for one side of an OID pair (join-path assembly).
type PairSide = fn(&(u32, u32)) -> u32;

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutput {
    /// A relation: column labels plus rows.
    Table {
        /// Output column labels.
        columns: Vec<String>,
        /// Row values, one `Vec` per row, aligned with `columns`.
        rows: Vec<Vec<i64>>,
    },
    /// A DDL/DML acknowledgement.
    Affected {
        /// Human-readable summary ("created table r", "inserted 2 rows").
        message: String,
    },
}

impl QueryOutput {
    /// Row count for table outputs; 0 for acknowledgements.
    pub fn row_count(&self) -> usize {
        match self {
            QueryOutput::Table { rows, .. } => rows.len(),
            QueryOutput::Affected { .. } => 0,
        }
    }

    /// The rows, if this is a table output.
    pub fn rows(&self) -> Option<&[Vec<i64>]> {
        match self {
            QueryOutput::Table { rows, .. } => Some(rows),
            QueryOutput::Affected { .. } => None,
        }
    }
}

impl fmt::Display for QueryOutput {
    /// Render as an aligned ASCII table (the REPL's output format).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryOutput::Affected { message } => write!(f, "{message}"),
            QueryOutput::Table { columns, rows } => {
                let mut widths: Vec<usize> = columns.iter().map(String::len).collect();
                let rendered: Vec<Vec<String>> = rows
                    .iter()
                    .map(|r| r.iter().map(i64::to_string).collect())
                    .collect();
                for row in &rendered {
                    for (w, cell) in widths.iter_mut().zip(row) {
                        *w = (*w).max(cell.len());
                    }
                }
                let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| {
                    let mut first = true;
                    for (w, c) in widths.iter().zip(cells) {
                        if !first {
                            write!(f, " | ")?;
                        }
                        first = false;
                        write!(f, "{c:>w$}", w = w)?;
                    }
                    writeln!(f)
                };
                line(f, columns)?;
                writeln!(
                    f,
                    "{}",
                    widths
                        .iter()
                        .map(|w| "-".repeat(*w))
                        .collect::<Vec<_>>()
                        .join("-+-")
                )?;
                for row in &rendered {
                    line(f, row)?;
                }
                write!(
                    f,
                    "({} row{})",
                    rows.len(),
                    if rows.len() == 1 { "" } else { "s" }
                )
            }
        }
    }
}

/// In-memory column buffers for one base table.
#[derive(Debug, Clone)]
struct TableBuffer {
    columns: Vec<(String, Vec<i64>)>,
}

/// A prepared SELECT: parsed, normalized and resolved once, with `?`
/// placeholders left as bind-time slots. Produced by
/// [`SqlSession::prepare`]; executed (any number of times, with different
/// values) by [`SqlSession::execute_prepared`] and
/// [`SqlSession::execute_prepared_many`].
#[derive(Debug, Clone)]
pub struct Prepared {
    lowered: LoweredSelect,
    limit: Option<usize>,
}

impl Prepared {
    /// Number of `?` placeholders each execution must bind.
    pub fn param_count(&self) -> usize {
        self.lowered.param_count
    }

    /// The lowered (still unbound) plan.
    pub fn lowered(&self) -> &LoweredSelect {
        &self.lowered
    }
}

/// An interactive SQL session over an adaptive (cracking) database.
pub struct SqlSession {
    buffers: BTreeMap<String, TableBuffer>,
    db: AdaptiveDb,
    dirty: bool,
    config: CrackerConfig,
}

impl SqlSession {
    /// An empty session with default cracker configuration.
    pub fn new() -> Self {
        Self::with_config(CrackerConfig::default())
    }

    /// An empty session with an explicit cracker configuration.
    pub fn with_config(config: CrackerConfig) -> Self {
        SqlSession {
            buffers: BTreeMap::new(),
            db: AdaptiveDb::with_config(config),
            dirty: false,
            config,
        }
    }

    /// Load a table programmatically (the REPL uses this for demo data;
    /// tests for fixtures). Columns must be equally long.
    pub fn load_table(
        &mut self,
        name: impl Into<String>,
        columns: Vec<(String, Vec<i64>)>,
    ) -> SqlResult<()> {
        let name = name.into();
        if self.buffers.contains_key(&name) {
            return Err(SqlError::semantic(
                format!("table {name:?} already exists"),
                Span::default(),
            ));
        }
        if columns.is_empty() {
            return Err(SqlError::semantic(
                "a table needs at least one column",
                Span::default(),
            ));
        }
        let n = columns[0].1.len();
        if columns.iter().any(|(_, v)| v.len() != n) {
            return Err(SqlError::semantic(
                "columns differ in length",
                Span::default(),
            ));
        }
        self.buffers.insert(name, TableBuffer { columns });
        self.dirty = true;
        Ok(())
    }

    /// The underlying adaptive database (synchronized first, so cracked
    /// state and catalog reflect all executed statements).
    pub fn adaptive(&mut self) -> &AdaptiveDb {
        self.sync();
        &self.db
    }

    /// Number of columns cracked so far in the current incarnation.
    pub fn cracked_columns(&mut self) -> usize {
        self.sync();
        self.db.cracked_columns()
    }

    /// Execute every statement in `src`, returning one output per
    /// statement. The whole source is parsed before any statement runs,
    /// so a syntax error anywhere leaves the session untouched.
    pub fn execute(&mut self, src: &str) -> SqlResult<Vec<QueryOutput>> {
        let stmts = parse(src)?;
        self.execute_batch(&stmts)
    }

    /// Execute a pre-parsed batch of statements in order, returning one
    /// output per statement. This is the batch entry point of the
    /// block-at-a-time executor: callers that parse (or build) statements
    /// up front skip per-statement parsing entirely, and semantic errors
    /// surface per statement, after the syntactic atomicity [`Self::execute`]
    /// already guarantees.
    pub fn execute_batch(&mut self, stmts: &[Statement]) -> SqlResult<Vec<QueryOutput>> {
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.run_statement(stmt)?);
        }
        Ok(out)
    }

    /// Execute a source text expected to hold exactly one statement.
    pub fn execute_one(&mut self, src: &str) -> SqlResult<QueryOutput> {
        let stmt = parse_one(src)?;
        self.run_statement(&stmt)
    }

    /// Prepare a SELECT: parse, normalize and resolve once, leaving `?`
    /// placeholders as unbound slots. The returned plan binds integer
    /// values per execution via [`Self::execute_prepared`] /
    /// [`Self::execute_prepared_many`] — the paper's recurring
    /// experiment shape (`A < v1 < v2 < A+w`) without re-lowering per
    /// query.
    pub fn prepare(&mut self, src: &str) -> SqlResult<Prepared> {
        let stmt = parse_one(src)?;
        let Statement::Select(select) = stmt else {
            return Err(SqlError::unsupported(
                "only SELECT statements can be prepared",
                Span::default(),
            ));
        };
        self.sync();
        let lowered = lower_select(&select, self.db.catalog())?;
        Ok(Prepared {
            lowered,
            limit: select.limit,
        })
    }

    /// Execute a prepared SELECT with one set of parameter values.
    pub fn execute_prepared(
        &mut self,
        prepared: &Prepared,
        params: &[i64],
    ) -> SqlResult<QueryOutput> {
        let bound = prepared.lowered.bind(params)?;
        self.sync();
        self.run_lowered(&bound, prepared.limit)
    }

    /// Execute a prepared SELECT once per binding, returning one output
    /// per binding. Single-table plans whose bindings all constrain one
    /// column ride the database's batch select — the cracked column
    /// answers the whole batch in one pass (and, on latched columns, under
    /// amortized lock acquisitions); other shapes fall back to one
    /// [`Self::execute_prepared`] per binding. Row order within each
    /// output is unspecified, as everywhere in this engine (cracked
    /// answers come back in physical piece order).
    pub fn execute_prepared_many(
        &mut self,
        prepared: &Prepared,
        bindings: &[Vec<i64>],
    ) -> SqlResult<Vec<QueryOutput>> {
        self.sync();
        if let Some(out) = self.try_prepared_batch(prepared, bindings)? {
            return Ok(out);
        }
        bindings
            .iter()
            .map(|b| self.execute_prepared(prepared, b))
            .collect()
    }

    /// The batched leg of [`Self::execute_prepared_many`]: one term, one
    /// table, no joins or grouping, and exactly one selection column —
    /// every binding then lowers to one [`RangePred`] over the same
    /// cracked column, which [`AdaptiveDb::select_batch`] answers in one
    /// pass.
    fn try_prepared_batch(
        &mut self,
        prepared: &Prepared,
        bindings: &[Vec<i64>],
    ) -> SqlResult<Option<Vec<QueryOutput>>> {
        let l = &prepared.lowered;
        let batchable = l.tables.len() == 1
            && l.group_by.is_none()
            && l.terms.len() == 1
            && l.terms[0].joins.is_empty()
            && l.terms[0].selections.len() == 1;
        if !batchable || bindings.is_empty() {
            return Ok(None);
        }
        let mut preds = Vec::with_capacity(bindings.len());
        for b in bindings {
            preds.push(l.bind_single_pred(b)?);
        }
        let sel = &l.terms[0].selections[0];
        let (table, attr) = (sel.table.clone(), sel.attr.clone());
        let oid_batches = self.db.select_batch(&table, &attr, &preds)?;
        let mut out = Vec::with_capacity(oid_batches.len());
        for mut oids in oid_batches {
            oids.sort_unstable();
            let mut o = self.emit_single_table(l, &oids)?;
            if let (Some(n), QueryOutput::Table { rows, .. }) = (prepared.limit, &mut o) {
                rows.truncate(n);
            }
            out.push(o);
        }
        Ok(Some(out))
    }

    /// Rebuild the adaptive database from the buffers after DDL/DML.
    fn sync(&mut self) {
        if !self.dirty {
            return;
        }
        let mut db = AdaptiveDb::with_config(self.config);
        for (name, buf) in &self.buffers {
            let cols: Vec<(&str, Vec<i64>)> = buf
                .columns
                .iter()
                .map(|(n, v)| (n.as_str(), v.clone()))
                .collect();
            let table = Table::from_int_columns(name.clone(), cols)
                // lint: allow(unwrap) — every mutation path validates the buffer
                .expect("buffers are validated on mutation");
            // lint: allow(unwrap) — buffers are keyed by name, so names are unique
            db.register(table).expect("buffer names are unique");
        }
        self.db = db;
        self.dirty = false;
    }

    fn run_statement(&mut self, stmt: &Statement) -> SqlResult<QueryOutput> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                span,
            } => {
                if self.buffers.contains_key(name) {
                    return Err(SqlError::semantic(
                        format!("table {name:?} already exists"),
                        *span,
                    ));
                }
                let columns = columns.iter().map(|c| (c.clone(), Vec::new())).collect();
                self.buffers.insert(name.clone(), TableBuffer { columns });
                self.dirty = true;
                Ok(QueryOutput::Affected {
                    message: format!("created table {name}"),
                })
            }
            Statement::DropTable { name, span } => {
                if self.buffers.remove(name).is_none() {
                    return Err(SqlError::semantic(format!("unknown table {name:?}"), *span));
                }
                self.dirty = true;
                Ok(QueryOutput::Affected {
                    message: format!("dropped table {name}"),
                })
            }
            Statement::InsertValues { table, rows, span } => {
                let buf = self
                    .buffers
                    .get_mut(table)
                    .ok_or_else(|| SqlError::semantic(format!("unknown table {table:?}"), *span))?;
                for row in rows {
                    if row.len() != buf.columns.len() {
                        return Err(SqlError::semantic(
                            format!(
                                "table {table:?} has {} columns but the rows have {}",
                                buf.columns.len(),
                                row.len()
                            ),
                            *span,
                        ));
                    }
                }
                for row in rows {
                    for ((_, col), v) in buf.columns.iter_mut().zip(row) {
                        col.push(*v);
                    }
                }
                // Fast path: while the adaptive db is in sync with the
                // buffers, route the batch through the staged-update
                // surface — one overlay batch per column — so cracked
                // state survives the insert instead of being rebuilt
                // cold on the next query. Any refusal falls back to the
                // dirty full rebuild (correct either way; the buffers
                // stay the source of truth).
                if !self.dirty && self.db.append_rows(table, rows).is_err() {
                    self.dirty = true;
                }
                Ok(QueryOutput::Affected {
                    message: format!("inserted {} rows into {table}", rows.len()),
                })
            }
            Statement::InsertSelect {
                table,
                select,
                span,
            } => {
                let out = self.run_select(select)?;
                let (columns, rows) = match out {
                    QueryOutput::Table { columns, rows } => (columns, rows),
                    QueryOutput::Affected { .. } => unreachable!("SELECT yields a table"),
                };
                if columns.iter().any(|c| c.contains('(')) {
                    return Err(SqlError::unsupported(
                        "INSERT INTO ... SELECT with aggregate outputs \
                         (materialize plain columns)",
                        *span,
                    ));
                }
                let inserted = rows.len();
                match self.buffers.get_mut(table) {
                    Some(buf) => {
                        if buf.columns.len() != columns.len() {
                            return Err(SqlError::semantic(
                                format!(
                                    "table {table:?} has {} columns but the query \
                                     produces {}",
                                    buf.columns.len(),
                                    columns.len()
                                ),
                                *span,
                            ));
                        }
                        for row in &rows {
                            for ((_, col), v) in buf.columns.iter_mut().zip(row) {
                                col.push(*v);
                            }
                        }
                    }
                    None => {
                        // Materialize into a new table, as §2.1's benchmark
                        // query does.
                        let mut cols: Vec<(String, Vec<i64>)> = columns
                            .iter()
                            .map(|c| (c.clone(), Vec::with_capacity(rows.len())))
                            .collect();
                        for row in &rows {
                            for ((_, col), v) in cols.iter_mut().zip(row) {
                                col.push(*v);
                            }
                        }
                        self.buffers
                            .insert(table.clone(), TableBuffer { columns: cols });
                    }
                }
                self.dirty = true;
                Ok(QueryOutput::Affected {
                    message: format!("inserted {inserted} rows into {table}"),
                })
            }
            Statement::Delete {
                table,
                filter,
                span,
            } => {
                if !self.buffers.contains_key(table) {
                    return Err(SqlError::semantic(
                        format!("unknown table {table:?}"),
                        *span,
                    ));
                }
                // Evaluate the predicate through the (cracking) engine —
                // deletion is itself a query first.
                let probe = SelectStmt {
                    projection: crate::ast::Projection::Star,
                    tables: vec![(table.clone(), *span)],
                    filter: filter.clone(),
                    group_by: Vec::new(),
                    limit: None,
                };
                self.sync();
                let lowered = lower_select(&probe, self.db.catalog())?;
                if lowered.param_count > 0 {
                    return Err(SqlError::unsupported(
                        "parameter placeholders in DELETE (only SELECT can be prepared)",
                        *span,
                    ));
                }
                let doomed: HashSet<u32> = if lowered.terms.is_empty() {
                    HashSet::new()
                } else {
                    self.all_term_oids(&lowered)?.into_iter().collect()
                };
                // lint: allow(unwrap) — membership checked at the top of this arm
                let buf = self.buffers.get_mut(table).expect("checked above");
                for (_, col) in &mut buf.columns {
                    let mut i = 0u32;
                    col.retain(|_| {
                        let keep = !doomed.contains(&i);
                        i += 1;
                        keep
                    });
                }
                self.dirty = true;
                Ok(QueryOutput::Affected {
                    message: format!("deleted {} rows from {table}", doomed.len()),
                })
            }
            Statement::Select(select) => self.run_select(select),
        }
    }

    fn run_select(&mut self, stmt: &SelectStmt) -> SqlResult<QueryOutput> {
        self.sync();
        let lowered = lower_select(stmt, self.db.catalog())?;
        self.run_lowered(&lowered, stmt.limit)
    }

    /// Dispatch a fully bound lowered plan to the right evaluator.
    fn run_lowered(
        &mut self,
        lowered: &LoweredSelect,
        limit: Option<usize>,
    ) -> SqlResult<QueryOutput> {
        if lowered.param_count > 0 {
            return Err(SqlError::unsupported(
                format!(
                    "{} unbound parameter placeholder(s) — prepare the \
                     statement and bind values",
                    lowered.param_count
                ),
                Span::default(),
            ));
        }
        let mut out = if lowered.group_by.is_some() {
            self.run_grouped(lowered)?
        } else if lowered.terms.iter().any(|t| !t.joins.is_empty()) {
            self.run_join(lowered)?
        } else {
            self.run_single_table(lowered)?
        };
        // LIMIT caps the delivered rows; the cracking already happened
        // (reorganization is a side effect of evaluation, not delivery).
        if let (Some(n), QueryOutput::Table { rows, .. }) = (limit, &mut out) {
            rows.truncate(n);
        }
        Ok(out)
    }

    /// Qualifying OIDs of one single-table DNF term (cracks as a side
    /// effect).
    fn term_oids(&mut self, table: &str, term: &QueryTerm) -> SqlResult<Vec<u32>> {
        let preds: Vec<(&str, RangePred<i64>)> = term
            .selections
            .iter()
            .map(|s| (s.attr.as_str(), s.pred))
            .collect();
        Ok(self.db.select_conjunctive(table, &preds)?)
    }

    /// Union of qualifying OIDs over all DNF terms.
    fn all_term_oids(&mut self, lowered: &LoweredSelect) -> SqlResult<Vec<u32>> {
        let table = lowered.tables[0].clone();
        if lowered.terms.len() == 1 {
            return self.term_oids(&table, &lowered.terms[0]);
        }
        let mut acc: BTreeSet<u32> = BTreeSet::new();
        for term in &lowered.terms {
            acc.extend(self.term_oids(&table, term)?);
        }
        Ok(acc.into_iter().collect())
    }

    fn run_single_table(&mut self, lowered: &LoweredSelect) -> SqlResult<QueryOutput> {
        let table = lowered.tables[0].clone();

        // Sideways fast path: `SELECT b FROM t WHERE a <range>` projects
        // one column under one single-column predicate — exactly the
        // shape a cracker map answers with a contiguous copy instead of
        // one random access per OID.
        if lowered.terms.len() == 1 && lowered.outputs.len() == 1 {
            let term = &lowered.terms[0];
            if term.selections.len() == 1 {
                if let OutputCol::Column { label, source } = &lowered.outputs[0] {
                    let sel = &term.selections[0];
                    if source.1 != sel.attr {
                        let vals = self
                            .db
                            .select_project(&table, &sel.attr, &source.1, sel.pred)?;
                        return Ok(QueryOutput::Table {
                            columns: vec![label.clone()],
                            rows: vals.into_iter().map(|v| vec![v]).collect(),
                        });
                    }
                }
            }
        }

        let oids = if lowered.terms.is_empty() {
            Vec::new()
        } else {
            self.all_term_oids(lowered)?
        };
        self.emit_single_table(lowered, &oids)
    }

    /// Materialize a single-table output (star, aggregate or plain-column
    /// projection) from its qualifying OIDs. Shared by the
    /// statement-at-a-time path and the prepared batch path.
    fn emit_single_table(&self, lowered: &LoweredSelect, oids: &[u32]) -> SqlResult<QueryOutput> {
        let table = &lowered.tables[0];

        // Header resolution: empty outputs means `SELECT *`.
        if lowered.outputs.is_empty() {
            let t = self.db.catalog().table(table)?;
            let columns: Vec<String> = t.schema().names().iter().map(|s| s.to_string()).collect();
            let rows = project_rows(t, oids, &columns)?;
            return Ok(QueryOutput::Table { columns, rows });
        }

        let aggregates: Vec<&OutputCol> = lowered
            .outputs
            .iter()
            .filter(|o| matches!(o, OutputCol::Aggregate { .. }))
            .collect();
        if !aggregates.is_empty() {
            if aggregates.len() != lowered.outputs.len() {
                return Err(SqlError::semantic(
                    "mixing plain columns with aggregates requires GROUP BY",
                    Span::default(),
                ));
            }
            let t = self.db.catalog().table(table)?;
            let mut row = Vec::with_capacity(aggregates.len());
            for agg in &aggregates {
                let OutputCol::Aggregate { func, arg, .. } = agg else {
                    unreachable!("filtered above")
                };
                row.push(fold_aggregate(t, oids, *func, arg.as_ref())?);
            }
            return Ok(QueryOutput::Table {
                columns: lowered
                    .outputs
                    .iter()
                    .map(|o| o.label().to_string())
                    .collect(),
                rows: vec![row],
            });
        }

        // Plain column projection.
        let columns: Vec<String> = lowered
            .outputs
            .iter()
            .map(|o| o.label().to_string())
            .collect();
        let sources: Vec<String> = lowered
            .outputs
            .iter()
            .map(|o| match o {
                OutputCol::Column { source, .. } => source.1.clone(),
                OutputCol::Aggregate { .. } => unreachable!("no aggregates here"),
            })
            .collect();
        let t = self.db.catalog().table(table)?;
        let rows = project_rows(t, oids, &sources)?;
        Ok(QueryOutput::Table { columns, rows })
    }

    fn run_grouped(&mut self, lowered: &LoweredSelect) -> SqlResult<QueryOutput> {
        // lint: allow(unwrap) — run_select dispatches here only when group_by is set
        let (g_table, g_col) = lowered.group_by.clone().expect("caller checked group_by");
        if lowered.tables.len() > 1 || lowered.terms.iter().any(|t| !t.joins.is_empty()) {
            return Err(SqlError::unsupported(
                "GROUP BY over a join (group the materialized join result instead)",
                Span::default(),
            ));
        }

        let has_filter =
            lowered.terms.iter().any(|t| !t.selections.is_empty()) || lowered.terms.len() != 1;

        // Per-group values for every aggregate output, keyed by group value.
        let mut groups: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
        let agg_outputs: Vec<(AggFunc, Option<Resolved>)> = lowered
            .outputs
            .iter()
            .filter_map(|o| match o {
                OutputCol::Aggregate { func, arg, .. } => Some((*func, arg.clone())),
                OutputCol::Column { .. } => None,
            })
            .collect();

        if !has_filter {
            // No WHERE: route through the Ω cracker.
            for (i, (func, arg)) in agg_outputs.iter().enumerate() {
                let pairs = self.db.group_aggregate(
                    &g_table,
                    &g_col,
                    *func,
                    arg.as_ref().map(|(_, c)| c.as_str()),
                )?;
                for (g, v) in pairs {
                    groups
                        .entry(g)
                        .or_insert_with(|| vec![0; agg_outputs.len()])[i] = v;
                }
            }
            if agg_outputs.is_empty() {
                // Pure `SELECT k ... GROUP BY k`: distinct groups via Ω.
                let pairs = self
                    .db
                    .group_aggregate(&g_table, &g_col, AggFunc::Count, None)?;
                for (g, _) in pairs {
                    groups.entry(g).or_default();
                }
            }
        } else {
            // WHERE + GROUP BY: crack for the selection, then aggregate the
            // qualifying tuples.
            let oids = self.all_term_oids(lowered)?;
            let t = self.db.catalog().table(&g_table)?;
            let g_vals = t.ints(&g_col)?;
            let mut member_oids: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
            for &o in &oids {
                member_oids.entry(g_vals[o as usize]).or_default().push(o);
            }
            for (g, members) in &member_oids {
                let mut row = Vec::with_capacity(agg_outputs.len());
                for (func, arg) in &agg_outputs {
                    row.push(fold_aggregate(t, members, *func, arg.as_ref())?);
                }
                groups.insert(*g, row);
            }
        }

        // Assemble rows in output order.
        let columns: Vec<String> = lowered
            .outputs
            .iter()
            .map(|o| o.label().to_string())
            .collect();
        let mut rows = Vec::with_capacity(groups.len());
        for (g, aggs) in &groups {
            let mut row = Vec::with_capacity(lowered.outputs.len());
            let mut agg_i = 0;
            for o in &lowered.outputs {
                match o {
                    OutputCol::Column { .. } => row.push(*g),
                    OutputCol::Aggregate { .. } => {
                        row.push(aggs[agg_i]);
                        agg_i += 1;
                    }
                }
            }
            rows.push(row);
        }
        Ok(QueryOutput::Table { columns, rows })
    }

    /// Evaluate a join-path term: left-deep over the ^ cracker, one
    /// [`AdaptiveDb::join`] per step, attaching one new table at a time
    /// (the paper's "join-path through the database schema", §3.1). Each
    /// intermediate is a vector of OID tuples aligned with the list of
    /// joined tables; cycle-closing steps become semijoin filters.
    fn run_join(&mut self, lowered: &LoweredSelect) -> SqlResult<QueryOutput> {
        if lowered.terms.len() != 1 {
            return Err(SqlError::unsupported(
                "OR across join queries (run the disjuncts separately)",
                Span::default(),
            ));
        }
        let term = &lowered.terms[0];

        // Per-table conjunctive filters (cracking each referenced column).
        let mut side_oids: BTreeMap<String, HashSet<u32>> = BTreeMap::new();
        for table in &lowered.tables {
            let preds: Vec<(&str, RangePred<i64>)> = term
                .selections
                .iter()
                .filter(|s| s.table == *table)
                .map(|s| (s.attr.as_str(), s.pred))
                .collect();
            let oids = self.db.select_conjunctive(table, &preds)?;
            side_oids.insert(table.clone(), oids.into_iter().collect());
        }

        // Order the join steps so each attaches exactly one new table
        // (lowering validated connectivity, so this always terminates).
        let mut joined: Vec<String> = vec![lowered.tables[0].clone()];
        let mut pending: Vec<_> = term.joins.clone();
        let mut attach_steps = Vec::new(); // (step, new-table-is-right)
        let mut cycle_steps = Vec::new();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|j| {
                let l_in = joined.contains(&j.left);
                let r_in = joined.contains(&j.right);
                match (l_in, r_in) {
                    (true, true) => {
                        cycle_steps.push(j.clone());
                        false
                    }
                    (true, false) => {
                        joined.push(j.right.clone());
                        attach_steps.push((j.clone(), true));
                        false
                    }
                    (false, true) => {
                        joined.push(j.left.clone());
                        attach_steps.push((j.clone(), false));
                        false
                    }
                    (false, false) => true, // not reachable yet; retry
                }
            });
            debug_assert!(
                pending.len() < before,
                "lowering guarantees a connected join path"
            );
        }

        // Left-deep evaluation: rows are OID tuples aligned with `joined`.
        let mut rows: Vec<Vec<u32>> = Vec::new();
        let mut first = true;
        for (step, new_is_right) in &attach_steps {
            let pairs = self
                .db
                .join(&step.left, &step.left_attr, &step.right, &step.right_attr)?;
            let keep_l = &side_oids[&step.left];
            let keep_r = &side_oids[&step.right];
            let pairs: Vec<(u32, u32)> = pairs
                .into_iter()
                .filter(|(l, r)| keep_l.contains(l) && keep_r.contains(r))
                .collect();
            let (existing_table, existing_of_pair): (&str, PairSide) = if *new_is_right {
                (&step.left, |p| p.0)
            } else {
                (&step.right, |p| p.1)
            };
            let new_of_pair: PairSide = if *new_is_right { |p| p.1 } else { |p| p.0 };
            if first {
                // Seed with the first step's pairs directly, in `joined`
                // order (existing table first).
                rows = pairs
                    .iter()
                    .map(|p| vec![existing_of_pair(p), new_of_pair(p)])
                    .collect();
                first = false;
                continue;
            }
            // Hash the new side by the existing table's OID and extend.
            let mut matches: HashMap<u32, Vec<u32>> = HashMap::new();
            for p in &pairs {
                matches
                    .entry(existing_of_pair(p))
                    .or_default()
                    .push(new_of_pair(p));
            }
            let idx = joined
                .iter()
                .position(|t| t == existing_table)
                .expect("attach order puts the existing table in `joined`"); // lint: allow(unwrap) — see message
            let mut next = Vec::new();
            for row in &rows {
                if let Some(news) = matches.get(&row[idx]) {
                    for &n in news {
                        let mut r = row.clone();
                        r.push(n);
                        next.push(r);
                    }
                }
            }
            rows = next;
        }

        // Cycle-closing steps filter the assembled rows.
        for step in &cycle_steps {
            let pairs: HashSet<(u32, u32)> = self
                .db
                .join(&step.left, &step.left_attr, &step.right, &step.right_attr)?
                .into_iter()
                .collect();
            // lint: allow(unwrap) — the join planner only emits tables already attached
            let li = joined.iter().position(|t| *t == step.left).expect("joined");
            let ri = joined
                .iter()
                .position(|t| *t == step.right)
                .expect("joined"); // lint: allow(unwrap) — same planner invariant
            rows.retain(|row| pairs.contains(&(row[li], row[ri])));
        }
        rows.sort_unstable();

        // COUNT(*) over the join.
        if lowered.outputs.len() == 1 {
            if let OutputCol::Aggregate {
                func: AggFunc::Count,
                arg: None,
                label,
            } = &lowered.outputs[0]
            {
                return Ok(QueryOutput::Table {
                    columns: vec![label.clone()],
                    rows: vec![vec![rows.len() as i64]],
                });
            }
        }
        if lowered
            .outputs
            .iter()
            .any(|o| matches!(o, OutputCol::Aggregate { .. }))
        {
            return Err(SqlError::unsupported(
                "aggregates other than COUNT(*) over a join",
                Span::default(),
            ));
        }

        // Column projection over the joined tuples. `SELECT *`
        // concatenates the schemas in join order, qualifying names that
        // appear in more than one table.
        let mut columns = Vec::new();
        let mut getters: Vec<(usize, String)> = Vec::new(); // (table idx, column)
        if lowered.outputs.is_empty() {
            for (ti, tname) in joined.iter().enumerate() {
                let t = self.db.catalog().table(tname)?;
                for name in t.schema().names() {
                    let clash = joined.iter().enumerate().any(|(oi, other)| {
                        oi != ti
                            && self
                                .db
                                .catalog()
                                .table(other)
                                .is_ok_and(|ot| ot.schema().position(name).is_some())
                    });
                    columns.push(if clash {
                        format!("{tname}.{name}")
                    } else {
                        name.to_string()
                    });
                    getters.push((ti, name.to_string()));
                }
            }
        } else {
            for o in &lowered.outputs {
                let OutputCol::Column { label, source } = o else {
                    unreachable!("aggregates rejected above")
                };
                columns.push(label.clone());
                let ti = joined
                    .iter()
                    .position(|t| *t == source.0)
                    .expect("resolution checked FROM membership"); // lint: allow(unwrap) — see message
                getters.push((ti, source.1.clone()));
            }
        }
        let mut out_rows = Vec::with_capacity(rows.len());
        for row in &rows {
            let mut out = Vec::with_capacity(getters.len());
            for (ti, col) in &getters {
                let t = self.db.catalog().table(&joined[*ti])?;
                out.push(t.ints(col)?[row[*ti] as usize]);
            }
            out_rows.push(out);
        }
        Ok(QueryOutput::Table {
            columns,
            rows: out_rows,
        })
    }
}

impl Default for SqlSession {
    fn default() -> Self {
        Self::new()
    }
}

/// Project `cols` of `table` at the given OIDs into rows.
fn project_rows(table: &Table, oids: &[u32], cols: &[String]) -> SqlResult<Vec<Vec<i64>>> {
    let col_slices: Vec<&[i64]> = cols
        .iter()
        .map(|c| table.ints(c))
        .collect::<Result<_, _>>()?;
    Ok(oids
        .iter()
        .map(|&o| col_slices.iter().map(|s| s[o as usize]).collect())
        .collect())
}

/// Compute one aggregate over the rows at `oids`.
fn fold_aggregate(
    table: &Table,
    oids: &[u32],
    func: AggFunc,
    arg: Option<&Resolved>,
) -> SqlResult<i64> {
    if func == AggFunc::Count {
        return Ok(oids.len() as i64);
    }
    // lint: allow(unwrap) — the parser rejects argument-less non-COUNT aggregates
    let (_, col) = arg.expect("parser guarantees non-COUNT aggregates have a column");
    let vals = table.ints(col)?;
    let it = oids.iter().map(|&o| vals[o as usize]);
    Ok(match func {
        AggFunc::Sum => it.sum(),
        // SQL would return NULL for empty groups; without NULLs we return 0,
        // which only arises for an empty overall selection.
        AggFunc::Min => it.min().unwrap_or(0),
        AggFunc::Max => it.max().unwrap_or(0),
        AggFunc::Count => unreachable!("handled above"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A session preloaded with the paper's two-table playground.
    fn session() -> SqlSession {
        let mut s = SqlSession::new();
        s.load_table(
            "r",
            vec![
                ("k".into(), (0..100).map(|i| i % 10).collect()),
                ("a".into(), (0..100).rev().collect()),
            ],
        )
        .unwrap();
        s.load_table(
            "s",
            vec![
                ("k".into(), (0..20).map(|i| i % 5).collect()),
                ("b".into(), (0..20).map(|i| i * 2).collect()),
            ],
        )
        .unwrap();
        s
    }

    fn rows(out: &QueryOutput) -> &[Vec<i64>] {
        out.rows().expect("expected table output")
    }

    #[test]
    fn the_papers_introduction_query() {
        let mut s = session();
        let out = s.execute_one("select * from r where a < 10").unwrap();
        assert_eq!(out.row_count(), 10);
        for row in rows(&out) {
            assert!(row[1] < 10, "a column filtered");
        }
        // The select cracked column a as a side effect.
        assert_eq!(s.cracked_columns(), 1);
    }

    #[test]
    fn repeat_queries_get_cheaper_not_wronger() {
        let mut s = session();
        let q = "select count(*) from r where a >= 20 and a < 50";
        let first = s.execute_one(q).unwrap();
        let second = s.execute_one(q).unwrap();
        assert_eq!(rows(&first)[0][0], 30);
        assert_eq!(first, second);
    }

    #[test]
    fn projection_and_order_of_columns() {
        let mut s = session();
        let out = s.execute_one("select a, k from r where a = 99").unwrap();
        match &out {
            QueryOutput::Table { columns, rows } => {
                assert_eq!(columns, &["a", "k"]);
                assert_eq!(rows, &[vec![99, 0]]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disjunction_unions_terms() {
        let mut s = session();
        let out = s
            .execute_one("select count(*) from r where a < 5 or a >= 95")
            .unwrap();
        assert_eq!(rows(&out)[0][0], 10);
        // Both disjuncts cracked the same column; no duplicates.
        let out = s
            .execute_one("select count(*) from r where a < 5 or a < 3")
            .unwrap();
        assert_eq!(rows(&out)[0][0], 5);
    }

    #[test]
    fn aggregates_without_group_by() {
        let mut s = session();
        let out = s
            .execute_one("select count(*), sum(a), min(a), max(a) from r where a < 10")
            .unwrap();
        assert_eq!(rows(&out), &[vec![10, 45, 0, 9]]);
    }

    #[test]
    fn mixing_columns_and_aggregates_needs_group_by() {
        let mut s = session();
        let err = s.execute_one("select k, count(*) from r").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
    }

    #[test]
    fn group_by_without_filter_uses_omega() {
        let mut s = session();
        let out = s
            .execute_one("select k, count(*), max(a) from r group by k")
            .unwrap();
        let r = rows(&out);
        assert_eq!(r.len(), 10);
        // Group 0 holds oids 0,10,..,90; a = 99-oid; max is 99.
        assert_eq!(r[0], vec![0, 10, 99]);
        assert_eq!(r[9], vec![9, 10, 90]);
    }

    #[test]
    fn group_by_with_filter_groups_the_cracked_selection() {
        let mut s = session();
        let out = s
            .execute_one("select k, count(*) from r where a >= 50 group by k")
            .unwrap();
        let r = rows(&out);
        // a >= 50 covers oids 0..=49: five oids per k-group 0..=9.
        assert_eq!(r.len(), 10);
        assert!(r.iter().all(|row| row[1] == 5));
        assert_eq!(s.cracked_columns(), 1, "filter cracked column a");
    }

    #[test]
    fn distinct_groups_without_aggregates() {
        let mut s = session();
        let out = s.execute_one("select k from r group by k").unwrap();
        let ks: Vec<i64> = rows(&out).iter().map(|r| r[0]).collect();
        assert_eq!(ks, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn the_papers_join_query_runs_via_the_wedge() {
        let mut s = session();
        let out = s
            .execute_one("select count(*) from r, s where r.k = s.k and r.a < 5")
            .unwrap();
        // a<5 ⇒ oids 95..=99 ⇒ k values 5..=9; s.k values are 0..=4 (i%5),
        // so only k in {} match... k=5..9 vs s.k ∈ 0..=4: no matches.
        assert_eq!(rows(&out)[0][0], 0);
        let out = s
            .execute_one("select count(*) from r, s where r.k = s.k and r.a >= 95")
            .unwrap();
        // a>=95 ⇒ oids 0..=4 ⇒ k = 0..4; each k matches 4 s-rows (20/5).
        assert_eq!(rows(&out)[0][0], 5 * 4);
    }

    #[test]
    fn join_star_projection_qualifies_clashing_columns() {
        let mut s = session();
        let out = s
            .execute_one("select * from r, s where r.k = s.k and r.a = 99 and s.b = 0")
            .unwrap();
        match &out {
            QueryOutput::Table { columns, rows } => {
                assert_eq!(columns, &["r.k", "a", "s.k", "b"]);
                assert_eq!(rows, &[vec![0, 99, 0, 0]]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_with_explicit_projection() {
        let mut s = session();
        let out = s
            .execute_one("select r.a, s.b from r, s where r.k = s.k and r.a = 99 and s.b <= 10")
            .unwrap();
        let mut got = rows(&out).to_vec();
        got.sort_unstable();
        // r.a=99 ⇒ oid 0, k=0; s rows with k=0: oids 0,5,10,15 → b=0,10,20,30;
        // b<=10 keeps b ∈ {0,10}.
        assert_eq!(got, vec![vec![99, 0], vec![99, 10]]);
    }

    #[test]
    fn three_way_join_path_agrees_with_nested_loops() {
        let mut s = SqlSession::new();
        // r(k,a) ⋈ s(k,m) ⋈ t(m,b): a proper join path through the schema.
        let r_k: Vec<i64> = (0..60).map(|i| i % 6).collect();
        let r_a: Vec<i64> = (0..60).collect();
        let s_k: Vec<i64> = (0..30).map(|i| i % 6).collect();
        let s_m: Vec<i64> = (0..30).map(|i| i % 5).collect();
        let t_m: Vec<i64> = (0..20).map(|i| i % 5).collect();
        let t_b: Vec<i64> = (0..20).map(|i| i * 10).collect();
        s.load_table(
            "r",
            vec![("k".into(), r_k.clone()), ("a".into(), r_a.clone())],
        )
        .unwrap();
        s.load_table(
            "s",
            vec![("k".into(), s_k.clone()), ("m".into(), s_m.clone())],
        )
        .unwrap();
        s.load_table(
            "t",
            vec![("m".into(), t_m.clone()), ("b".into(), t_b.clone())],
        )
        .unwrap();
        let out = s
            .execute_one(
                "select count(*) from r, s, t \
                 where r.k = s.k and s.m = t.m and r.a < 30 and t.b >= 50",
            )
            .unwrap();
        let mut want = 0i64;
        for i in 0..r_k.len() {
            for j in 0..s_k.len() {
                for l in 0..t_m.len() {
                    if r_k[i] == s_k[j] && s_m[j] == t_m[l] && r_a[i] < 30 && t_b[l] >= 50 {
                        want += 1;
                    }
                }
            }
        }
        assert_eq!(rows(&out)[0][0], want);

        // Projection across all three tables.
        let out = s
            .execute_one(
                "select a, b from r, s, t \
                 where r.k = s.k and s.m = t.m and r.a = 0 and s.m = 2",
            )
            .unwrap();
        let mut got = rows(&out).to_vec();
        got.sort_unstable();
        let mut want_rows = Vec::new();
        for j in 0..s_k.len() {
            for l in 0..t_m.len() {
                // r.a = 0 fixes r-row 0 (k = 0).
                if s_k[j] == 0 && s_m[j] == 2 && t_m[l] == 2 {
                    want_rows.push(vec![0, t_b[l]]);
                }
            }
        }
        want_rows.sort_unstable();
        assert_eq!(got, want_rows);
    }

    #[test]
    fn ddl_dml_lifecycle() {
        let mut s = SqlSession::new();
        let outs = s
            .execute(
                "create table t (x integer, y integer);\n\
                 insert into t values (1, 10), (2, 20), (3, 30);\n\
                 select * from t where x >= 2;",
            )
            .unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[2].row_count(), 2);
        s.execute_one("drop table t").unwrap();
        assert!(s.execute_one("select * from t").is_err());
    }

    #[test]
    fn insert_keeps_cracked_state_warm() {
        let mut s = session();
        // Crack `a`, then insert: the staged-batch fast path must keep
        // the cracked copy (no cold rebuild) and still see the new rows.
        s.execute_one("select count(*) from r where a >= 50")
            .unwrap();
        assert_eq!(s.cracked_columns(), 1);
        s.execute_one("insert into r values (3, 500), (7, 501)")
            .unwrap();
        assert_eq!(s.cracked_columns(), 1, "insert must not rebuild cold");
        let out = s
            .execute_one("select count(*) from r where a >= 500")
            .unwrap();
        assert_eq!(rows(&out)[0][0], 2);
        let out = s.execute_one("select count(*) from r where k = 3").unwrap();
        assert_eq!(rows(&out)[0][0], 11, "uncracked column sees grown base");
        // A ragged insert is rejected before touching any state.
        assert!(s.execute_one("insert into r values (1)").is_err());
        let out = s.execute_one("select count(*) from r").unwrap();
        assert_eq!(rows(&out)[0][0], 102);
    }

    #[test]
    fn insert_select_materializes_like_figure_1a() {
        let mut s = session();
        s.execute_one("insert into newr select * from r where a < 10")
            .unwrap();
        let out = s.execute_one("select count(*) from newr").unwrap();
        assert_eq!(rows(&out)[0][0], 10);
        // Appending via a second materialization.
        s.execute_one("insert into newr select * from r where a >= 90")
            .unwrap();
        let out = s.execute_one("select count(*) from newr").unwrap();
        assert_eq!(rows(&out)[0][0], 20);
    }

    #[test]
    fn insert_select_arity_mismatch_and_aggregates_rejected() {
        let mut s = session();
        s.execute_one("insert into one_col select a from r where a < 3")
            .unwrap();
        let err = s
            .execute_one("insert into one_col select a, k from r")
            .unwrap_err();
        assert!(err.to_string().contains("columns"));
        let err = s
            .execute_one("insert into agg select count(*) from r")
            .unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { .. }));
    }

    #[test]
    fn base_updates_invalidate_cracked_state() {
        let mut s = session();
        s.execute_one("select * from r where a < 10").unwrap();
        assert_eq!(s.cracked_columns(), 1);
        s.execute_one("insert into r values (0, 5)").unwrap();
        // The insert is visible and the store re-cracks lazily.
        let out = s
            .execute_one("select count(*) from r where a < 10")
            .unwrap();
        assert_eq!(rows(&out)[0][0], 11);
    }

    #[test]
    fn unsatisfiable_and_empty_range_queries() {
        let mut s = session();
        let out = s
            .execute_one("select count(*) from r where a < 3 and a > 9")
            .unwrap();
        assert_eq!(rows(&out)[0][0], 0);
        let out = s
            .execute_one("select * from r where a < 3 and 1 > 2")
            .unwrap();
        assert_eq!(out.row_count(), 0);
    }

    #[test]
    fn load_table_validation() {
        let mut s = SqlSession::new();
        assert!(s.load_table("t", vec![]).is_err());
        assert!(s
            .load_table("t", vec![("a".into(), vec![1]), ("b".into(), vec![1, 2])])
            .is_err());
        s.load_table("t", vec![("a".into(), vec![1])]).unwrap();
        assert!(s.load_table("t", vec![("a".into(), vec![2])]).is_err());
    }

    #[test]
    fn output_rendering() {
        let out = QueryOutput::Table {
            columns: vec!["k".into(), "count(*)".into()],
            rows: vec![vec![1, 10], vec![22, 5]],
        };
        let text = out.to_string();
        assert!(text.contains("k | count(*)"));
        assert!(text.contains("(2 rows)"));
        let one = QueryOutput::Table {
            columns: vec!["n".into()],
            rows: vec![vec![7]],
        };
        assert!(one.to_string().contains("(1 row)"));
        let ack = QueryOutput::Affected {
            message: "created table t".into(),
        };
        assert_eq!(ack.to_string(), "created table t");
    }

    #[test]
    fn single_column_projection_takes_the_sideways_path() {
        let mut s = session();
        let out = s.execute_one("select k from r where a >= 95").unwrap();
        // a >= 95 ⇒ oids 0..=4 ⇒ k = oid % 10 ∈ {0..4}.
        let mut got: Vec<i64> = rows(&out).iter().map(|r| r[0]).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        // The query built a cracker map, not a plain cracked column.
        assert_eq!(s.adaptive().map_count(), 1);
        assert_eq!(s.cracked_columns(), 0);
        // Projecting the selection column itself stays on the OID path.
        let out = s.execute_one("select a from r where a >= 95").unwrap();
        assert_eq!(out.row_count(), 5);
        assert_eq!(s.cracked_columns(), 1);
    }

    #[test]
    fn delete_removes_matching_rows() {
        let mut s = session();
        let out = s
            .execute_one("delete from r where a < 10 or a >= 90")
            .unwrap();
        assert_eq!(out.to_string(), "deleted 20 rows from r");
        let out = s.execute_one("select count(*) from r").unwrap();
        assert_eq!(rows(&out)[0][0], 80);
        // Row alignment across columns survives: k still matches oid%10
        // for the surviving a-values.
        let out = s.execute_one("select a, k from r where a = 50").unwrap();
        assert_eq!(rows(&out), &[vec![50, 9]]); // a=50 ⇒ old oid 49 ⇒ k=9
                                                // DELETE without WHERE empties the table.
        s.execute_one("delete from r").unwrap();
        let out = s.execute_one("select count(*) from r").unwrap();
        assert_eq!(rows(&out)[0][0], 0);
        // Unknown table errors.
        assert!(s.execute_one("delete from zzz").is_err());
    }

    #[test]
    fn limit_caps_delivery_but_not_cracking() {
        let mut s = session();
        let out = s
            .execute_one("select * from r where a < 50 limit 5")
            .unwrap();
        assert_eq!(out.row_count(), 5);
        // The store still cracked the full predicate range.
        assert_eq!(s.cracked_columns(), 1);
        let full = s.execute_one("select * from r where a < 50").unwrap();
        assert_eq!(full.row_count(), 50);
        // LIMIT 0 and LIMIT beyond the result size.
        let out = s.execute_one("select * from r limit 0").unwrap();
        assert_eq!(out.row_count(), 0);
        let out = s
            .execute_one("select * from r where a < 3 limit 99")
            .unwrap();
        assert_eq!(out.row_count(), 3);
        // Negative limits are rejected.
        assert!(s.execute_one("select * from r limit -1").is_err());
    }

    #[test]
    fn count_star_on_whole_table() {
        let mut s = session();
        let out = s.execute_one("select count(*) from r").unwrap();
        assert_eq!(rows(&out)[0][0], 100);
    }

    #[test]
    fn comparison_between_columns_of_same_table_is_unsupported() {
        let mut s = session();
        let err = s.execute_one("select * from r where k = a").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { .. }));
    }

    /// Sort rows so outputs compare as multisets (row order is
    /// unspecified across execution paths).
    fn sorted_rows(out: &QueryOutput) -> Vec<Vec<i64>> {
        let mut r = rows(out).to_vec();
        r.sort_unstable();
        r
    }

    #[test]
    fn prepared_statements_match_literal_execution() {
        let mut s = session();
        let p = s.prepare("select * from r where a >= ? and a < ?").unwrap();
        assert_eq!(p.param_count(), 2);
        for (lo, hi) in [(20, 50), (0, 10), (90, 100), (50, 50)] {
            let got = s.execute_prepared(&p, &[lo, hi]).unwrap();
            let want = s
                .execute_one(&format!("select * from r where a >= {lo} and a < {hi}"))
                .unwrap();
            assert_eq!(sorted_rows(&got), sorted_rows(&want), "[{lo}, {hi})");
        }
        // Wrong arity fails without running anything.
        assert!(s.execute_prepared(&p, &[1]).is_err());
    }

    #[test]
    fn execute_prepared_many_batches_single_column_plans() {
        let mut s = session();
        let p = s.prepare("select k from r where a >= ? and a < ?").unwrap();
        let bindings: Vec<Vec<i64>> = (0..10).map(|i| vec![i * 10, i * 10 + 7]).collect();
        let batched = s.execute_prepared_many(&p, &bindings).unwrap();
        assert_eq!(batched.len(), bindings.len());
        for (b, got) in bindings.iter().zip(&batched) {
            let want = s
                .execute_one(&format!(
                    "select k from r where a >= {} and a < {}",
                    b[0], b[1]
                ))
                .unwrap();
            assert_eq!(sorted_rows(got), sorted_rows(&want), "binding {b:?}");
        }
    }

    #[test]
    fn execute_prepared_many_falls_back_for_multi_column_plans() {
        let mut s = session();
        // Two selection columns: not batchable, still correct.
        let p = s
            .prepare("select count(*) from r where a < ? and k >= ?")
            .unwrap();
        let outs = s
            .execute_prepared_many(&p, &[vec![50, 5], vec![100, 0], vec![0, 0]])
            .unwrap();
        // a < 50 ⇒ oids 50..=99, k = oid%10 >= 5 ⇒ 5 per decade, 25 total.
        assert_eq!(rows(&outs[0])[0][0], 25);
        assert_eq!(rows(&outs[1])[0][0], 100);
        assert_eq!(rows(&outs[2])[0][0], 0);
    }

    #[test]
    fn prepared_aggregates_and_limit_ride_the_batch_path() {
        let mut s = session();
        let p = s
            .prepare("select count(*), min(a), max(a) from r where a between 0 and 99 and a < ?")
            .unwrap();
        let outs = s
            .execute_prepared_many(&p, &[vec![10], vec![1], vec![0]])
            .unwrap();
        assert_eq!(rows(&outs[0]), &[vec![10, 0, 9]]);
        assert_eq!(rows(&outs[1]), &[vec![1, 0, 0]]);
        assert_eq!(rows(&outs[2]), &[vec![0, 0, 0]]);
        let p = s.prepare("select * from r where a < ? limit 3").unwrap();
        let outs = s.execute_prepared_many(&p, &[vec![50], vec![2]]).unwrap();
        assert_eq!(outs[0].row_count(), 3);
        assert_eq!(outs[1].row_count(), 2);
    }

    #[test]
    fn unbound_parameters_cannot_run_directly() {
        let mut s = session();
        let err = s.execute_one("select * from r where a < ?").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { .. }));
        assert!(err.to_string().contains("unbound"));
        let err = s.execute_one("delete from r where a < ?").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { .. }));
        // Only SELECT prepares.
        assert!(s.prepare("delete from r where a < ?").is_err());
    }

    #[test]
    fn execute_parses_the_whole_source_before_running_any_statement() {
        let mut s = session();
        // The trailing statement is a syntax error: the leading DELETE
        // must not have executed.
        let err = s
            .execute("delete from r where a < 50; select * frm r")
            .unwrap_err();
        assert!(matches!(err, SqlError::Syntax { .. }));
        let out = s.execute_one("select count(*) from r").unwrap();
        assert_eq!(rows(&out)[0][0], 100, "failed batch left the table intact");
    }

    #[test]
    fn execute_batch_runs_pre_parsed_statements() {
        let mut s = session();
        let stmts = crate::parser::parse(
            "insert into r values (5, 1000); select count(*) from r where a >= 1000",
        )
        .unwrap();
        let outs = s.execute_batch(&stmts).unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(rows(&outs[1])[0][0], 1);
    }
}
