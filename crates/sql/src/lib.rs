#![warn(missing_docs)]
//! # sql — a SQL front-end for the cracking engine
//!
//! The paper's architecture slots the cracker "between the semantic
//! analyzer and the query optimizer of a modern DBMS infrastructure"
//! (§3). This crate supplies the stages above that slot, for the SQL
//! fragment §3.1 actually evaluates:
//!
//! * [`token`] — a tokenizer for the statement forms of the experiments
//!   (`SELECT` with `WHERE`/`GROUP BY`/`LIMIT`, `INSERT INTO ... SELECT`,
//!   `INSERT ... VALUES`, `DELETE FROM`, `CREATE TABLE`, `DROP TABLE`);
//! * [`parser`] — a recursive-descent parser producing the [`ast`];
//! * [`dnf`] — normalization of WHERE clauses to disjunctive normal form,
//!   the representation the paper assumes "without loss of generality";
//! * [`lower`] — the semantic analyzer: name resolution, per-column range
//!   folding, join-path validation, and lowering to
//!   [`engine::query::QueryTerm`] — exactly the point where the cracker
//!   handles (Ξ selections, ^ joins, Ω groupings, Ψ projections) are
//!   extracted;
//! * [`exec`] — [`SqlSession`], an interactive session over an
//!   [`engine::AdaptiveDb`]: every statement executed leaves the store
//!   better partitioned for the next. Statements may carry `?`
//!   placeholders; [`SqlSession::prepare`] lowers them once into a
//!   [`Prepared`] plan that [`SqlSession::execute_prepared_many`] binds
//!   and runs batch-at-a-time.
//!
//! ## Quick example
//!
//! ```
//! use sql::SqlSession;
//!
//! let mut session = SqlSession::new();
//! session
//!     .execute(
//!         "create table r (k integer, a integer);
//!          insert into r values (1, 30), (2, 10), (3, 20);",
//!     )
//!     .unwrap();
//! let out = session
//!     .execute_one("select * from r where a between 10 and 20")
//!     .unwrap();
//! assert_eq!(out.row_count(), 2);
//! // The range query cracked column `a` as a side effect.
//! assert_eq!(session.cracked_columns(), 1);
//!
//! // Single-column projections go sideways: a cracker map keeps `k`
//! // physically aligned with the cracked order of `a`.
//! session
//!     .execute_one("select k from r where a between 10 and 20")
//!     .unwrap();
//! assert_eq!(session.adaptive().map_count(), 1);
//! ```

pub mod ast;
pub mod dnf;
pub mod error;
pub mod exec;
pub mod lower;
pub mod parser;
pub mod token;

pub use error::{Span, SqlError, SqlResult};
pub use exec::{Prepared, QueryOutput, SqlSession};
pub use lower::{lower_select, LoweredSelect, ParamSlot, SchemaProvider};
pub use parser::{parse, parse_one};
