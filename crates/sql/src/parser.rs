//! Recursive-descent parser for the supported SQL fragment.
//!
//! Grammar (keywords case-insensitive, `;` separates statements):
//!
//! ```text
//! statement   := select | insert | delete | create | drop
//! delete      := DELETE FROM ident [WHERE expr]
//! create      := CREATE TABLE ident '(' ident INTEGER (',' ident INTEGER)* ')'
//! drop        := DROP TABLE ident
//! insert      := INSERT INTO ident ( VALUES row (',' row)* | select )
//! row         := '(' int (',' int)* ')'
//! select      := SELECT proj FROM ident (',' ident)* [WHERE expr]
//!                [GROUP BY colref (',' colref)*] [LIMIT int]
//! proj        := '*' | item (',' item)*
//! item        := agg | colref [AS ident]
//! agg         := COUNT '(' ('*'|colref) ')' | (SUM|MIN|MAX) '(' colref ')'
//! expr        := and_expr (OR and_expr)*
//! and_expr    := not_expr (AND not_expr)*
//! not_expr    := NOT not_expr | primary
//! primary     := '(' expr ')' | colref [NOT] BETWEEN int AND int
//!              | operand cmp operand
//! operand     := colref | int | '?'
//! colref      := ident ['.' ident]
//! int         := ['-'] INT
//! ```
//!
//! `?` is a positional parameter placeholder, numbered left to right from
//! 0 within each statement; it binds through a prepared statement
//! ([`crate::exec::SqlSession::prepare`]).

use crate::ast::{CmpOp, ColumnRef, Expr, Operand, ProjItem, Projection, SelectStmt, Statement};
use crate::error::{Span, SqlError, SqlResult};
use crate::token::{lex, Tok, Token};
use engine::query::AggFunc;

/// Parse a source text into its statements.
pub fn parse(src: &str) -> SqlResult<Vec<Statement>> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
        params: 0,
    };
    let mut out = Vec::new();
    loop {
        // Skip statement separators.
        while p.eat(&Tok::Semi) {}
        if p.at_end() {
            break;
        }
        out.push(p.statement()?);
        if !p.at_end() && !p.check(&Tok::Semi) {
            return Err(SqlError::syntax(
                format!("expected ';' between statements, found {}", p.peek_desc()),
                p.peek_span(),
            ));
        }
    }
    Ok(out)
}

/// Parse a source text expected to hold exactly one statement.
pub fn parse_one(src: &str) -> SqlResult<Statement> {
    let mut stmts = parse(src)?;
    match stmts.len() {
        // lint: allow(unwrap) — guarded by the len() == 1 match arm
        1 => Ok(stmts.pop().expect("len checked")),
        0 => Err(SqlError::syntax("empty input", Span::default())),
        n => Err(SqlError::syntax(
            format!("expected one statement, found {n}"),
            Span::default(),
        )),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    src_len: usize,
    /// `?` placeholders seen so far in the current statement; the next
    /// placeholder takes this value as its zero-based index.
    params: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek_span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map_or(Span::new(self.src_len, self.src_len), |t| t.span)
    }

    fn peek_desc(&self) -> String {
        self.peek()
            .map_or_else(|| "end of input".to_owned(), |t| t.to_string())
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn check(&self, tok: &Tok) -> bool {
        self.peek() == Some(tok)
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.check(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> SqlResult<Span> {
        if self.check(&tok) {
            let span = self.peek_span();
            self.pos += 1;
            Ok(span)
        } else {
            Err(SqlError::syntax(
                format!("expected {tok}, found {}", self.peek_desc()),
                self.peek_span(),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> SqlResult<(String, Span)> {
        match self.advance() {
            Some(Token {
                tok: Tok::Ident(name),
                span,
            }) => Ok((name, span)),
            Some(t) => Err(SqlError::syntax(
                format!("expected {what}, found {}", t.tok),
                t.span,
            )),
            None => Err(SqlError::syntax(
                format!("expected {what}, found end of input"),
                self.peek_span(),
            )),
        }
    }

    fn int_literal(&mut self) -> SqlResult<(i64, Span)> {
        let neg = self.eat(&Tok::Minus);
        match self.advance() {
            Some(Token {
                tok: Tok::Int(v),
                span,
            }) => Ok((if neg { -v } else { v }, span)),
            Some(t) => Err(SqlError::syntax(
                format!("expected integer, found {}", t.tok),
                t.span,
            )),
            None => Err(SqlError::syntax(
                "expected integer, found end of input",
                self.peek_span(),
            )),
        }
    }

    fn statement(&mut self) -> SqlResult<Statement> {
        self.params = 0; // parameters number from 0 within each statement
        match self.peek() {
            Some(Tok::Select) => Ok(Statement::Select(self.select()?)),
            Some(Tok::Create) => self.create(),
            Some(Tok::Drop) => self.drop(),
            Some(Tok::Insert) => self.insert(),
            Some(Tok::Delete) => self.delete(),
            _ => Err(SqlError::syntax(
                format!(
                    "expected SELECT, INSERT, DELETE, CREATE or DROP, found {}",
                    self.peek_desc()
                ),
                self.peek_span(),
            )),
        }
    }

    fn create(&mut self) -> SqlResult<Statement> {
        self.expect(Tok::Create)?;
        self.expect(Tok::Table)?;
        let (name, span) = self.ident("table name")?;
        self.expect(Tok::LParen)?;
        let mut columns = Vec::new();
        loop {
            let (col, col_span) = self.ident("column name")?;
            self.expect(Tok::Integer)?;
            if columns.contains(&col) {
                return Err(SqlError::semantic(
                    format!("duplicate column {col:?}"),
                    col_span,
                ));
            }
            columns.push(col);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        Ok(Statement::CreateTable {
            name,
            columns,
            span,
        })
    }

    fn drop(&mut self) -> SqlResult<Statement> {
        self.expect(Tok::Drop)?;
        self.expect(Tok::Table)?;
        let (name, span) = self.ident("table name")?;
        Ok(Statement::DropTable { name, span })
    }

    fn delete(&mut self) -> SqlResult<Statement> {
        self.expect(Tok::Delete)?;
        self.expect(Tok::From)?;
        let (table, span) = self.ident("table name")?;
        let filter = if self.eat(&Tok::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            filter,
            span,
        })
    }

    fn insert(&mut self) -> SqlResult<Statement> {
        self.expect(Tok::Insert)?;
        self.expect(Tok::Into)?;
        let (table, span) = self.ident("table name")?;
        if self.check(&Tok::Select) {
            let select = self.select()?;
            return Ok(Statement::InsertSelect {
                table,
                select,
                span,
            });
        }
        self.expect(Tok::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(Tok::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.int_literal()?.0);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            let close = self.expect(Tok::RParen)?;
            if let Some(first) = rows.first() {
                let first: &Vec<i64> = first;
                if first.len() != row.len() {
                    return Err(SqlError::semantic(
                        format!(
                            "row has {} values but the first row has {}",
                            row.len(),
                            first.len()
                        ),
                        close,
                    ));
                }
            }
            rows.push(row);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(Statement::InsertValues { table, rows, span })
    }

    fn select(&mut self) -> SqlResult<SelectStmt> {
        self.expect(Tok::Select)?;
        let projection = self.projection()?;
        self.expect(Tok::From)?;
        let mut tables = Vec::new();
        loop {
            let (name, span) = self.ident("table name")?;
            if tables.iter().any(|(n, _)| *n == name) {
                return Err(SqlError::unsupported(
                    format!("self-join of {name:?} (table aliases are not supported)"),
                    span,
                ));
            }
            tables.push((name, span));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        let filter = if self.eat(&Tok::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat(&Tok::Group) {
            self.expect(Tok::By)?;
            loop {
                group_by.push(self.column_ref()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        if self.check(&Tok::Order) {
            return Err(SqlError::unsupported(
                "ORDER BY (cracked answers come back in physical piece order)",
                self.peek_span(),
            ));
        }
        let limit = if self.eat(&Tok::Limit) {
            let (v, span) = self.int_literal()?;
            if v < 0 {
                return Err(SqlError::semantic("LIMIT must be non-negative", span));
            }
            Some(v as usize)
        } else {
            None
        };
        Ok(SelectStmt {
            projection,
            tables,
            filter,
            group_by,
            limit,
        })
    }

    fn projection(&mut self) -> SqlResult<Projection> {
        if self.eat(&Tok::Star) {
            return Ok(Projection::Star);
        }
        let mut items = Vec::new();
        loop {
            items.push(self.proj_item()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(Projection::Items(items))
    }

    fn proj_item(&mut self) -> SqlResult<ProjItem> {
        let agg = match self.peek() {
            Some(Tok::Count) => Some(AggFunc::Count),
            Some(Tok::Sum) => Some(AggFunc::Sum),
            Some(Tok::Min) => Some(AggFunc::Min),
            Some(Tok::Max) => Some(AggFunc::Max),
            _ => None,
        };
        if let Some(func) = agg {
            let start = self.peek_span();
            self.advance();
            self.expect(Tok::LParen)?;
            let arg = if func == AggFunc::Count && self.eat(&Tok::Star) {
                None
            } else {
                Some(self.column_ref()?)
            };
            let end = self.expect(Tok::RParen)?;
            self.maybe_alias()?;
            return Ok(ProjItem::Aggregate {
                func,
                arg,
                span: start.merge(end),
            });
        }
        let col = self.column_ref()?;
        self.maybe_alias()?;
        Ok(ProjItem::Column(col))
    }

    /// Parse (and discard) an optional `AS alias`; output columns keep
    /// their source labels.
    fn maybe_alias(&mut self) -> SqlResult<()> {
        if self.eat(&Tok::As) {
            self.ident("alias")?;
        }
        Ok(())
    }

    fn column_ref(&mut self) -> SqlResult<ColumnRef> {
        let (first, span) = self.ident("column name")?;
        if self.eat(&Tok::Dot) {
            let (column, col_span) = self.ident("column name")?;
            Ok(ColumnRef {
                table: Some(first),
                column,
                span: span.merge(col_span),
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
                span,
            })
        }
    }

    // --- WHERE expression grammar -------------------------------------

    fn expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat(&Tok::And) {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> SqlResult<Expr> {
        if self.eat(&Tok::Not) {
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> SqlResult<Expr> {
        if self.eat(&Tok::LParen) {
            let inner = self.expr()?;
            self.expect(Tok::RParen)?;
            return Ok(inner);
        }
        let start = self.peek_span();
        let left = self.operand()?;
        // `col [NOT] BETWEEN low AND high`.
        let negated = matches!(
            (self.peek(), self.tokens.get(self.pos + 1).map(|t| &t.tok)),
            (Some(Tok::Not), Some(Tok::Between))
        );
        if negated {
            self.advance();
        }
        if self.eat(&Tok::Between) {
            let col = match left {
                Operand::Column(c) => c,
                Operand::Literal(_) | Operand::Param { .. } => {
                    return Err(SqlError::syntax(
                        "BETWEEN requires a column on the left",
                        start,
                    ))
                }
            };
            let (low, _) = self.int_literal()?;
            self.expect(Tok::And)?;
            let (high, end) = self.int_literal()?;
            return Ok(Expr::Between {
                col,
                low,
                high,
                negated,
                span: start.merge(end),
            });
        }
        let op = match self.advance() {
            Some(Token { tok: Tok::Eq, .. }) => CmpOp::Eq,
            Some(Token { tok: Tok::Ne, .. }) => CmpOp::Ne,
            Some(Token { tok: Tok::Lt, .. }) => CmpOp::Lt,
            Some(Token { tok: Tok::Le, .. }) => CmpOp::Le,
            Some(Token { tok: Tok::Gt, .. }) => CmpOp::Gt,
            Some(Token { tok: Tok::Ge, .. }) => CmpOp::Ge,
            Some(t) => {
                return Err(SqlError::syntax(
                    format!("expected a comparison operator, found {}", t.tok),
                    t.span,
                ))
            }
            None => {
                return Err(SqlError::syntax(
                    "expected a comparison operator, found end of input",
                    self.peek_span(),
                ))
            }
        };
        let right = self.operand()?;
        let end = right.span_or(self.prev_span());
        Ok(Expr::Cmp {
            left,
            op,
            right,
            span: start.merge(end),
        })
    }

    fn prev_span(&self) -> Span {
        self.tokens
            .get(self.pos.saturating_sub(1))
            .map_or(Span::default(), |t| t.span)
    }

    fn operand(&mut self) -> SqlResult<Operand> {
        match self.peek() {
            Some(Tok::Ident(_)) => Ok(Operand::Column(self.column_ref()?)),
            Some(Tok::Int(_)) | Some(Tok::Minus) => Ok(Operand::Literal(self.int_literal()?.0)),
            Some(Tok::Param) => {
                self.advance();
                let idx = self.params;
                self.params += 1;
                Ok(Operand::Param { idx })
            }
            _ => Err(SqlError::syntax(
                format!(
                    "expected a column, integer or parameter, found {}",
                    self.peek_desc()
                ),
                self.peek_span(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(src: &str) -> SelectStmt {
        match parse_one(src).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn the_papers_first_example() {
        // §1: "select * from R where R.a <10".
        let s = sel("select * from R where R.a < 10");
        assert_eq!(s.projection, Projection::Star);
        assert_eq!(s.tables[0].0, "r");
        match s.filter.unwrap() {
            Expr::Cmp {
                left, op, right, ..
            } => {
                match left {
                    Operand::Column(c) => {
                        assert_eq!(c.table.as_deref(), Some("r"));
                        assert_eq!(c.column, "a");
                    }
                    other => panic!("expected column operand, got {other:?}"),
                }
                assert_eq!(op, CmpOp::Lt);
                assert_eq!(right, Operand::Literal(10));
            }
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn the_papers_join_query() {
        // §3.2: "select * from R,S where R.k=S.k and R.a<5".
        let s = sel("select * from R, S where R.k = S.k and R.a < 5");
        assert_eq!(s.tables.len(), 2);
        assert!(matches!(s.filter, Some(Expr::And(_, _))));
    }

    #[test]
    fn insert_select_materialization() {
        // §2.1's benchmark query shape.
        let stmt =
            parse_one("INSERT INTO newR SELECT * FROM R WHERE R.A >= 3 AND R.A <= 9").unwrap();
        match stmt {
            Statement::InsertSelect { table, select, .. } => {
                assert_eq!(table, "newr");
                assert_eq!(select.tables[0].0, "r");
            }
            other => panic!("expected INSERT..SELECT, got {other:?}"),
        }
    }

    #[test]
    fn create_insert_drop() {
        let stmts = parse(
            "create table r (k integer, a integer);\n\
             insert into r values (1, 10), (2, 20);\n\
             drop table r;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(
            &stmts[0],
            Statement::CreateTable { name, columns, .. }
                if name == "r" && columns == &["k", "a"]
        ));
        assert!(matches!(
            &stmts[1],
            Statement::InsertValues { rows, .. } if rows.len() == 2
        ));
        assert!(matches!(&stmts[2], Statement::DropTable { name, .. } if name == "r"));
    }

    #[test]
    fn between_and_not_between() {
        let s = sel("select * from r where a between 3 and 9");
        assert!(matches!(
            s.filter.unwrap(),
            Expr::Between {
                low: 3,
                high: 9,
                negated: false,
                ..
            }
        ));
        let s = sel("select * from r where a not between -5 and 9");
        assert!(matches!(
            s.filter.unwrap(),
            Expr::Between {
                low: -5,
                high: 9,
                negated: true,
                ..
            }
        ));
    }

    #[test]
    fn negative_literals_and_literal_on_left() {
        let s = sel("select * from r where -5 <= a");
        match s.filter.unwrap() {
            Expr::Cmp { left, op, .. } => {
                assert_eq!(left, Operand::Literal(-5));
                assert_eq!(op, CmpOp::Le);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_or_binds_weaker_than_and() {
        let s = sel("select * from r where a < 1 or b < 2 and c < 3");
        // Must parse as a<1 OR (b<2 AND c<3).
        match s.filter.unwrap() {
            Expr::Or(l, r) => {
                assert!(matches!(*l, Expr::Cmp { .. }));
                assert!(matches!(*r, Expr::And(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parentheses_override_precedence() {
        let s = sel("select * from r where (a < 1 or b < 2) and c < 3");
        assert!(matches!(s.filter.unwrap(), Expr::And(_, _)));
    }

    #[test]
    fn not_parses_tightly() {
        let s = sel("select * from r where not a < 1 and b < 2");
        // NOT binds to the comparison, not the conjunction.
        match s.filter.unwrap() {
            Expr::And(l, _) => assert!(matches!(*l, Expr::Not(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates_and_aliases() {
        let s = sel("select k, count(*) as n, sum(a) from r group by k");
        match &s.projection {
            Projection::Items(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0].label(), "k");
                assert_eq!(items[1].label(), "count(*)");
                assert_eq!(items[2].label(), "sum(a)");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.group_by[0].column, "k");
    }

    #[test]
    fn error_messages_carry_spans() {
        let src = "select * form r";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("expected FROM"));
        assert_eq!(err.span().unwrap().fragment(src), "form");
    }

    #[test]
    fn missing_semicolon_between_statements() {
        let err = parse("select * from r select * from s").unwrap_err();
        assert!(err.to_string().contains("';'"));
    }

    #[test]
    fn self_join_is_rejected() {
        let err = parse("select * from r, r").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { .. }));
    }

    #[test]
    fn order_by_is_rejected_with_guidance() {
        let err = parse("select * from r order by a").unwrap_err();
        assert!(err.to_string().contains("ORDER BY"));
    }

    #[test]
    fn ragged_insert_rows_rejected() {
        let err = parse("insert into r values (1,2), (3)").unwrap_err();
        assert!(err.to_string().contains("values"));
    }

    #[test]
    fn duplicate_create_columns_rejected() {
        let err = parse("create table r (a integer, a integer)").unwrap_err();
        assert!(matches!(err, SqlError::Semantic { .. }));
    }

    #[test]
    fn empty_input_yields_no_statements() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse(" ; ; ").unwrap().is_empty());
    }

    #[test]
    fn parse_one_rejects_multiples_and_empties() {
        assert!(parse_one("").is_err());
        assert!(parse_one("select * from r; select * from r").is_err());
    }

    #[test]
    fn parameters_number_left_to_right_per_statement() {
        let s = sel("select * from r where a >= ? and a < ?");
        let mut idxs = Vec::new();
        fn collect(e: &Expr, idxs: &mut Vec<usize>) {
            match e {
                Expr::And(l, r) | Expr::Or(l, r) => {
                    collect(l, idxs);
                    collect(r, idxs);
                }
                Expr::Not(i) => collect(i, idxs),
                Expr::Cmp { left, right, .. } => {
                    for o in [left, right] {
                        if let Operand::Param { idx } = o {
                            idxs.push(*idx);
                        }
                    }
                }
                Expr::Between { .. } => {}
            }
        }
        collect(&s.filter.unwrap(), &mut idxs);
        assert_eq!(idxs, vec![0, 1]);

        // Numbering restarts at each statement.
        let stmts = parse("select * from r where a < ?; select * from r where a > ?").unwrap();
        for stmt in &stmts {
            let Statement::Select(s) = stmt else {
                panic!("expected SELECT")
            };
            let mut idxs = Vec::new();
            collect(s.filter.as_ref().unwrap(), &mut idxs);
            assert_eq!(idxs, vec![0]);
        }
    }

    #[test]
    fn count_of_a_column() {
        let s = sel("select count(a) from r");
        match &s.projection {
            Projection::Items(items) => assert_eq!(items[0].label(), "count(a)"),
            other => panic!("{other:?}"),
        }
    }
}
