//! Workspace lint CLI: `cargo run -p analysis --bin lint [ROOT]`.
//!
//! Walks the workspace's library sources and enforces the conventions
//! documented in [`analysis::lint`]; exits non-zero when any finding
//! survives, so CI can use it as a required gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args_os()
        .nth(1)
        .map(PathBuf::from)
        .or_else(|| {
            // When run via `cargo run -p analysis`, the manifest dir is
            // crates/analysis; the workspace root is two levels up.
            std::env::var_os("CARGO_MANIFEST_DIR").map(|d| PathBuf::from(d).join("../.."))
        })
        .unwrap_or_else(|| PathBuf::from("."));
    let findings = match analysis::lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
