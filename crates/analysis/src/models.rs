//! Protocol models for the [`crate::sched`] explorer.
//!
//! Each model is a few-line re-statement of a real protocol from
//! `cracker_core` / `engine`, small enough to explore exhaustively (2–3
//! virtual threads, a 2-shard column) yet faithful at the sync-operation
//! level: the sequence of latch acquisitions, condvar waits, and
//! notifies matches the production code line for line. Every correct
//! model has a deliberately-broken sibling — the exact historical bug
//! shape the protocol defends against — so the test suite proves the
//! explorer *can* catch the bug class before trusting the clean run.
//!
//! | model                      | production code                         | property                                   |
//! |----------------------------|------------------------------------------|--------------------------------------------|
//! | [`double_crack`]           | `SharedCrackerColumn::select` upgrade    | exactly one crack per cold predicate       |
//! | [`double_crack_buggy`]     | (double-check deleted)                   | explorer finds a double-crack schedule     |
//! | [`admission_gate`]         | `AdmissionGate::admit` / permit release  | no deadlock, permits conserved             |
//! | [`admission_gate_buggy`]   | (unlock-then-sleep wait)                 | explorer finds the lost-wakeup deadlock    |
//! | [`eligibility_notify`]     | `Wake::{None,One,All}` release policy    | capped waiters never stall eligible ones   |
//! | [`gate_timeout`]           | `AdmissionGate::try_acquire_for`         | every exit path clears the waiting set     |
//! | [`gate_timeout_leaky`]     | (timeout path forgets `remove_one`)      | explorer finds the phantom-waiter leak     |

use crate::sched::{Explorer, Model, Report};

const SHARDS: usize = 2;
/// Per-shard oracle contribution; an uncracked read returns [`GARBAGE`].
const VALUES: [u64; SHARDS] = [10, 23];
const GARBAGE: u64 = 999;

#[derive(Debug, Clone, Copy, Default)]
struct Shard {
    cracked: bool,
    cracks: u32,
}

#[derive(Debug, Clone, Default)]
struct ColumnState {
    shards: [Shard; SHARDS],
    answers: Vec<u64>,
}

/// The two-phase sharded select from `ShardedCrackerColumn`
/// (`for_each_selection`): an optimistic all-shards read pass that bails
/// at the first cold shard, then a per-shard read-probe →
/// write-escalate pass whose write branch **re-checks** under the
/// exclusive latch before cracking. `double_check = false` deletes that
/// re-check — the seeded bug.
fn sharded_select(m: &mut Model, threads: usize, double_check: bool) {
    let locks: Vec<_> = (0..SHARDS)
        .map(|s| m.rwlock(["shard0", "shard1"][s]))
        .collect();
    let col = m.cell(ColumnState::default());

    for t in 0..threads {
        let locks = locks.clone();
        let col = col.clone();
        m.thread(["q0", "q1", "q2"][t], move |ctx| {
            // Phase 1: optimistic — read-latch ascending, bail on cold.
            let mut held = Vec::new();
            let mut warm = true;
            for (s, l) in locks.iter().enumerate() {
                ctx.acquire_read(*l);
                held.push(*l);
                if !col.with(|c| c.shards[s].cracked) {
                    warm = false;
                    break;
                }
            }
            if warm {
                let total: u64 = VALUES.iter().sum();
                for l in held.drain(..) {
                    ctx.release_read(l);
                }
                col.with(|c| c.answers.push(total));
                return;
            }
            for l in held.drain(..) {
                ctx.release_read(l);
            }

            // Phase 2: pessimistic — per shard, read-probe then escalate.
            let mut total = 0u64;
            for (s, l) in locks.iter().enumerate() {
                ctx.acquire_read(*l);
                if col.with(|c| c.shards[s].cracked) {
                    total += VALUES[s];
                    ctx.release_read(*l);
                    continue;
                }
                ctx.release_read(*l);
                ctx.acquire_write(*l);
                let must_crack = !double_check || !col.with(|c| c.shards[s].cracked);
                if must_crack {
                    col.with(|c| {
                        c.shards[s].cracked = true;
                        c.shards[s].cracks += 1;
                    });
                }
                total += if col.with(|c| c.shards[s].cracked) {
                    VALUES[s]
                } else {
                    GARBAGE
                };
                ctx.release_write(*l);
            }
            col.with(|c| c.answers.push(total));
        });
    }

    let col = col.clone();
    let expected: u64 = VALUES.iter().sum();
    m.check(move || {
        col.with(|c| {
            for (s, sh) in c.shards.iter().enumerate() {
                if sh.cracks != 1 {
                    return Err(format!("shard {s} cracked {} times (want 1)", sh.cracks));
                }
            }
            if c.answers.len() != threads {
                return Err(format!("{} answers for {threads} queries", c.answers.len()));
            }
            for (i, a) in c.answers.iter().enumerate() {
                if *a != expected {
                    return Err(format!("query {i} answered {a}, oracle says {expected}"));
                }
            }
            Ok(())
        })
    });
}

/// Preemption budget by model size: three query threads over two shards
/// have enough sync points that bound 3 overflows the schedule cap;
/// bound 2 keeps the space exhaustible and still covers the seeded bug
/// class (double-crack and lost-wakeup both need ≤ 2 preemptions).
fn select_explorer(threads: usize) -> Explorer {
    Explorer::with_preemptions(if threads > 2 { 2 } else { 3 })
}

/// Correct two-phase select: exactly one crack per shard and
/// oracle-equal answers on every explored schedule.
pub fn double_crack(threads: usize) -> Report {
    select_explorer(threads).explore(move |m| sharded_select(m, threads, true))
}

/// The seeded double-crack bug: the write branch skips the re-check
/// under the exclusive latch, so two queries that both probed a cold
/// shard crack it twice. The explorer must return a counterexample.
pub fn double_crack_buggy(threads: usize) -> Report {
    select_explorer(threads).explore(move |m| sharded_select(m, threads, false))
}

#[derive(Debug, Clone, Default)]
struct GateState {
    in_flight: usize,
    done: usize,
}

/// `AdmissionGate::admit` with one permit and `atomic_wait` selecting the
/// real condvar (release the mutex *and* sleep as one step) versus the
/// seeded non-atomic "unlock, then sleep" whose notify-sized window
/// loses wakeups. Release notifies **after** dropping the gate mutex,
/// exactly like `AdmissionPermit::drop`.
fn gate(m: &mut Model, threads: usize, atomic_wait: bool) {
    let mx = m.mutex("gate");
    let cv = m.condvar("released");
    let st = m.cell(GateState::default());

    for t in 0..threads {
        let st = st.clone();
        m.thread(["g0", "g1", "g2"][t], move |ctx| {
            // admit()
            ctx.lock(mx);
            while st.with(|g| g.in_flight) >= 1 {
                if atomic_wait {
                    ctx.wait(cv, mx);
                } else {
                    // Seeded bug: the sleep is not atomic with the
                    // unlock — a notify landing in between is lost.
                    ctx.unlock(mx);
                    ctx.wait_unlinked(cv);
                    ctx.lock(mx);
                }
            }
            st.with(|g| g.in_flight += 1);
            ctx.unlock(mx);

            ctx.step("query under permit");

            // AdmissionPermit::drop
            ctx.lock(mx);
            st.with(|g| {
                g.in_flight -= 1;
                g.done += 1;
            });
            ctx.unlock(mx);
            ctx.notify_one(cv);
        });
    }

    let st = st.clone();
    m.check(move || {
        st.with(|g| {
            if g.in_flight != 0 {
                return Err(format!("{} permits leaked", g.in_flight));
            }
            if g.done != threads {
                return Err(format!("{} of {threads} queries completed", g.done));
            }
            Ok(())
        })
    });
}

/// Correct gate: on every schedule all queries eventually admit and the
/// permit count balances — no deadlock, no lost wakeup.
pub fn admission_gate(threads: usize) -> Report {
    Explorer::default().explore(move |m| gate(m, threads, true))
}

/// The seeded lost-wakeup bug: a waiter unlocks the gate and *then*
/// sleeps, so a release that fires in the window notifies nobody and the
/// waiter sleeps forever. The explorer must report a deadlock.
pub fn admission_gate_buggy(threads: usize) -> Report {
    Explorer::default().explore(move |m| gate(m, threads, false))
}

#[derive(Debug, Clone, Default)]
struct TimedGateState {
    in_flight: usize,
    waiting: usize,
    admitted: usize,
    timed_out: usize,
    shed: usize,
}

/// Wait-queue bound of the timed-gate model (`max_waiters`).
const TIMED_MAX_WAITERS: usize = 1;

/// `AdmissionGate::try_acquire_for` over one permit with a wait queue of
/// one: a query at a full gate either sheds instantly (queue full), or
/// queues and later admits, or queues and *times out*. The explorer has
/// no timed-wait primitive, so the bounded wait is modeled as a yield
/// window ([`crate::sched::Ctx::step`]): whether the permit frees inside
/// it is a scheduler branch, which is exactly the nondeterminism a real
/// `wait_timeout` exposes. The property is the waiting-set bookkeeping:
/// **every** exit path — admitted, timed out, shed — must remove the
/// operation from the waiting count, or phantom waiters inflate the
/// queue bound and shed every later query at an empty gate.
/// `leak_on_timeout = true` deletes the removal on the timeout path —
/// the seeded bug.
fn timed_gate(m: &mut Model, leak_on_timeout: bool) {
    let mx = m.mutex("gate");
    let cv = m.condvar("released");
    let st = m.cell(TimedGateState::default());
    let threads = 3usize;

    for t in 0..threads {
        let st = st.clone();
        m.thread(["t0", "t1", "t2"][t], move |ctx| {
            // try_acquire_for(): fast path under the gate mutex.
            ctx.lock(mx);
            if st.with(|g| g.in_flight) < 1 {
                st.with(|g| {
                    g.in_flight += 1;
                    g.admitted += 1;
                });
                ctx.unlock(mx);
                ctx.step("query under permit");
                // AdmissionPermit::drop
                ctx.lock(mx);
                st.with(|g| g.in_flight -= 1);
                ctx.unlock(mx);
                ctx.notify_one(cv);
                return;
            }
            // Shed: the wait queue is already at its bound.
            if st.with(|g| g.waiting) >= TIMED_MAX_WAITERS {
                st.with(|g| g.shed += 1);
                ctx.unlock(mx);
                return;
            }
            // Queue, then wait at most the deadline budget.
            st.with(|g| g.waiting += 1);
            ctx.unlock(mx);
            ctx.step("bounded wait window");
            ctx.lock(mx);
            if st.with(|g| g.in_flight) < 1 {
                st.with(|g| {
                    g.waiting -= 1;
                    g.in_flight += 1;
                    g.admitted += 1;
                });
                ctx.unlock(mx);
                ctx.step("query under permit");
                ctx.lock(mx);
                st.with(|g| g.in_flight -= 1);
                ctx.unlock(mx);
                ctx.notify_one(cv);
                return;
            }
            // Timed out. The seeded bug forgets to leave the waiting
            // set — the phantom waiter that sheds every later query.
            if !leak_on_timeout {
                st.with(|g| g.waiting -= 1);
            }
            st.with(|g| g.timed_out += 1);
            ctx.unlock(mx);
        });
    }

    let st = st.clone();
    m.check(move || {
        st.with(|g| {
            if g.waiting != 0 {
                return Err(format!(
                    "{} phantom waiter(s) left in the waiting set — later queries \
                     would shed at an empty gate",
                    g.waiting
                ));
            }
            if g.in_flight != 0 {
                return Err(format!("{} permits leaked", g.in_flight));
            }
            if g.admitted + g.timed_out + g.shed != threads {
                return Err(format!(
                    "accounting hole: {} admitted + {} timed out + {} shed != {threads}",
                    g.admitted, g.timed_out, g.shed
                ));
            }
            if g.admitted == 0 {
                return Err("nobody ever held the permit".into());
            }
            Ok(())
        })
    });
}

/// Correct timed gate: on every schedule the waiting set drains to zero
/// and every query is accounted admitted, timed out, or shed.
pub fn gate_timeout() -> Report {
    Explorer::default().explore(move |m| timed_gate(m, false))
}

/// The seeded waiting-set leak: the timeout path returns without
/// `remove_one`, so a timed-out waiter is counted as queued forever. The
/// explorer must return a counterexample schedule.
pub fn gate_timeout_leaky() -> Report {
    Explorer::default().explore(move |m| timed_gate(m, true))
}

#[derive(Debug, Clone, Default)]
struct EligState {
    in_flight: usize,
    /// Per-session in-flight counts (2 sessions).
    per_session: [usize; 2],
    /// Per-session waiter counts (2 sessions).
    waiting: [usize; 2],
    done: usize,
}

const TOTAL_PERMITS: usize = 2;
const SESSION_CAP: usize = 1;

/// The eligibility-aware release policy from `AdmissionPermit::drop`:
/// `notify_one` when every waiting session is below its cap (any waiter
/// can take the permit), `notify_all` when some waiter is cap-blocked (a
/// single wakeup could land on it and stall an eligible waiter). Three
/// queries across two sessions on two permits with a per-session cap of
/// one — the smallest shape where a waiter can be cap-blocked while
/// permits are free, which is exactly what motivates the broadcast arm.
pub fn eligibility_notify() -> Report {
    Explorer::default().explore(move |m| {
        let mx = m.mutex("gate");
        let cv = m.condvar("released");
        let st = m.cell(EligState::default());
        // Sessions: q0,q1 → session 0; q2 → session 1.
        for (t, sid) in [(0usize, 0usize), (1, 0), (2, 1)] {
            let st = st.clone();
            m.thread(["s0a", "s0b", "s1a"][t], move |ctx| {
                ctx.lock(mx);
                let admissible =
                    |g: &EligState| g.in_flight < TOTAL_PERMITS && g.per_session[sid] < SESSION_CAP;
                if !st.with(|g| admissible(g)) {
                    st.with(|g| g.waiting[sid] += 1);
                    while !st.with(|g| admissible(g)) {
                        ctx.wait(cv, mx);
                    }
                    st.with(|g| g.waiting[sid] -= 1);
                }
                st.with(|g| {
                    g.in_flight += 1;
                    g.per_session[sid] += 1;
                });
                ctx.unlock(mx);

                ctx.step("query under permit");

                ctx.lock(mx);
                let wake = st.with(|g| {
                    g.in_flight -= 1;
                    g.per_session[sid] -= 1;
                    g.done += 1;
                    let waiters: usize = g.waiting.iter().sum();
                    if waiters == 0 {
                        0 // Wake::None
                    } else if (0..2).all(|s| g.waiting[s] == 0 || g.per_session[s] < SESSION_CAP) {
                        1 // Wake::One — every waiting session is eligible
                    } else {
                        2 // Wake::All — someone is cap-blocked
                    }
                });
                ctx.unlock(mx);
                match wake {
                    0 => {}
                    1 => ctx.notify_one(cv),
                    _ => ctx.notify_all(cv),
                }
            });
        }
        let st = st.clone();
        m.check(move || {
            st.with(|g| {
                if g.done != 3 {
                    return Err(format!("{} of 3 queries completed", g.done));
                }
                if g.in_flight != 0 || g.per_session != [0, 0] {
                    return Err("permit accounting leaked".into());
                }
                Ok(())
            })
        });
    })
}
