//! A miniature loom: deterministic, bounded exploration of thread
//! interleavings over small protocol models.
//!
//! Virtual threads are ordinary closures running on real OS threads, but
//! only **one is ever unparked at a time**: every model sync operation
//! (latch acquire/release, mutex lock, condvar wait/notify, or an
//! explicit [`Ctx::step`]) first hands control back to a cooperative
//! scheduler, which decides who runs next. Each such decision — and each
//! "which waiter does `notify_one` wake" choice — is a branch point; the
//! explorer enumerates branches depth-first, replaying a choice prefix
//! and diverging at the end, until the space is exhausted or a bound is
//! hit.
//!
//! The search is bounded CHESS-style by a **preemption budget**: a
//! context switch away from a thread that could have kept running costs
//! one preemption, switches away from a blocked or finished thread are
//! free. Almost all real concurrency bugs — including the double-crack
//! and lost-wakeup seeds in [`crate::models`] — need only one or two
//! preemptions, so a small budget explores the interesting schedules in
//! milliseconds while the unbounded space would be factorial.
//!
//! What the explorer checks on *every* schedule:
//!
//! * **deadlock** — some thread can never run again (all non-finished
//!   threads blocked or asleep on a condvar nobody will notify: the
//!   lost-wakeup symptom);
//! * **model assertions** — any panic inside a virtual thread (failed
//!   `assert!`, a release of a latch the thread does not hold, …);
//! * **post-conditions** — a [`Model::check`] closure run after all
//!   threads of a schedule finished (crack-exactly-once counters,
//!   oracle-equal answers, …);
//! * **livelock** — a per-schedule step limit.
//!
//! Models assume no spurious condvar wakeups (every wakeup stems from a
//! notify); protocol loops that re-check their condition are modeled
//! as-is, so a protocol relying on spurious wakeups for liveness would
//! show up here as a lost wakeup — which is exactly the bug class the
//! suite exists to catch. Determinism contract: model closures must not
//! branch on wall-clock time or ambient randomness; given that, the
//! explorer's replay is exact.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, PoisonError};

/// Handle to a model reader-writer latch (also used as the mutex handle:
/// a mutex is a latch that is only ever write-acquired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRef(usize);

/// Handle to a model condition variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CvRef(usize);

/// Shared model data: accessed by virtual threads *between* sync points.
/// Mutation is race-free by construction (one virtual thread runs at a
/// time), so the inner lock is never contended; it exists to satisfy
/// `Send`/`Sync`.
#[derive(Debug)]
pub struct ModelCell<T>(Arc<OsMutex<T>>);

impl<T> Clone for ModelCell<T> {
    fn clone(&self) -> Self {
        ModelCell(Arc::clone(&self.0))
    }
}

impl<T> ModelCell<T> {
    /// Run `f` over the shared state.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// A registered virtual-thread body.
type ThreadBody = Box<dyn FnOnce(&mut Ctx) + Send>;

/// One schedule's registration surface: create resources, spawn virtual
/// threads, install the post-condition. The build closure passed to
/// [`Explorer::explore`] runs once per explored schedule, so everything
/// it creates is schedule-fresh.
pub struct Model {
    lock_names: Vec<&'static str>,
    cv_names: Vec<&'static str>,
    threads: Vec<(&'static str, ThreadBody)>,
    check: Option<Box<dyn FnOnce() -> Result<(), String> + Send>>,
}

impl Model {
    fn new() -> Self {
        Model {
            lock_names: Vec::new(),
            cv_names: Vec::new(),
            threads: Vec::new(),
            check: None,
        }
    }

    /// A fresh reader-writer latch.
    pub fn rwlock(&mut self, name: &'static str) -> LockRef {
        self.lock_names.push(name);
        LockRef(self.lock_names.len() - 1)
    }

    /// A fresh mutex (a write-only latch).
    pub fn mutex(&mut self, name: &'static str) -> LockRef {
        self.rwlock(name)
    }

    /// A fresh condition variable.
    pub fn condvar(&mut self, name: &'static str) -> CvRef {
        self.cv_names.push(name);
        CvRef(self.cv_names.len() - 1)
    }

    /// Schedule-fresh shared state.
    pub fn cell<T: Send + 'static>(&mut self, init: T) -> ModelCell<T> {
        ModelCell(Arc::new(OsMutex::new(init)))
    }

    /// Register a virtual thread.
    pub fn thread(&mut self, name: &'static str, body: impl FnOnce(&mut Ctx) + Send + 'static) {
        self.threads.push((name, Box::new(body)));
    }

    /// Post-condition evaluated after every deadlock-free schedule.
    pub fn check(&mut self, check: impl FnOnce() -> Result<(), String> + Send + 'static) {
        self.check = Some(Box::new(check));
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockSt {
    Unlocked,
    /// Shared by `count` readers.
    Read(usize),
    /// Exclusively owned by thread `tid`.
    Write(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Want {
    Read(usize),
    Write(usize),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    Ready,
    Blocked(Want),
    /// Asleep on condvar `cv`; woken to `Blocked(Write(lock))` when the
    /// wait is mutex-linked, to `Ready` when unlinked.
    CvWait(usize),
    Finished,
}

#[derive(Debug, Clone, Copy)]
struct Decision {
    options: usize,
    chosen: usize,
}

#[derive(Debug)]
struct RunState {
    /// `None` = the scheduler decides next; `Some(tid)` = that virtual
    /// thread holds the baton.
    baton: Option<usize>,
    statuses: Vec<Status>,
    locks: Vec<LockSt>,
    cv_waiters: Vec<Vec<usize>>,
    steps: usize,
    last_ran: Option<usize>,
    preemptions: usize,
    prefix: Vec<usize>,
    cursor: usize,
    decisions: Vec<Decision>,
    trace: Vec<String>,
    panic_msg: Option<String>,
    abort: bool,
}

struct Shared {
    mx: OsMutex<RunState>,
    cv: OsCondvar,
    lock_names: Vec<&'static str>,
    cv_names: Vec<&'static str>,
    thread_names: Vec<&'static str>,
}

/// Sentinel unwound through a virtual thread when the run is torn down
/// early; recognized (and swallowed) by the thread wrapper.
struct AbortToken;

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, RunState> {
        self.mx.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Park until this thread is handed the baton. Panics with
    /// [`AbortToken`] when the run is being torn down.
    fn wait_turn(&self, tid: usize) {
        let mut st = self.lock();
        loop {
            if st.abort {
                drop(st);
                panic::panic_any(AbortToken);
            }
            if st.baton == Some(tid) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Hand the baton back to the scheduler.
    fn yield_to_scheduler(&self, st: &mut RunState) {
        st.baton = None;
        self.cv.notify_all();
    }
}

/// The per-virtual-thread operation surface. Every method is a
/// scheduling point; see the module docs.
pub struct Ctx {
    tid: usize,
    shared: Arc<Shared>,
}

impl Ctx {
    /// Yield, letting the scheduler interleave other threads here. Use to
    /// mark a visible step (a critical section, a data-race window).
    pub fn step(&mut self, label: &'static str) {
        self.turn(label, "");
    }

    /// Scheduling point: give the baton up and wait to be rescheduled.
    /// `op` names the operation, `res` the resource it targets.
    fn turn(&mut self, op: &'static str, res: &'static str) {
        {
            let mut st = self.shared.lock();
            if st.abort {
                drop(st);
                panic::panic_any(AbortToken);
            }
            let name = self.shared.thread_names[self.tid];
            st.trace.push(if res.is_empty() {
                format!("{name}: {op}")
            } else {
                format!("{name}: {op} `{res}`")
            });
            self.shared.yield_to_scheduler(&mut st);
        }
        self.shared.wait_turn(self.tid);
    }

    /// Block until `want` is grantable, then take it. Assumes the thread
    /// currently holds the baton; re-parks whenever the resource is busy
    /// (the scheduler re-baton's us only when it became grantable).
    fn acquire(&mut self, want: Want) {
        loop {
            {
                let mut st = self.shared.lock();
                if grantable(&st, want) {
                    grant(&mut st, self.tid, want);
                    return;
                }
                st.statuses[self.tid] = Status::Blocked(want);
                self.shared.yield_to_scheduler(&mut st);
            }
            self.shared.wait_turn(self.tid);
            let mut st = self.shared.lock();
            st.statuses[self.tid] = Status::Ready;
        }
    }

    /// Acquire `l` shared.
    pub fn acquire_read(&mut self, l: LockRef) {
        self.turn("acquire_read", self.shared.lock_names[l.0]);
        self.acquire(Want::Read(l.0));
    }

    /// Acquire `l` exclusive.
    pub fn acquire_write(&mut self, l: LockRef) {
        self.turn("acquire_write", self.shared.lock_names[l.0]);
        self.acquire(Want::Write(l.0));
    }

    /// Lock a mutex (alias of [`acquire_write`](Self::acquire_write)).
    pub fn lock(&mut self, m: LockRef) {
        self.acquire_write(m);
    }

    /// Release a shared hold on `l`.
    pub fn release_read(&mut self, l: LockRef) {
        self.turn("release_read", self.shared.lock_names[l.0]);
        let mut st = self.shared.lock();
        match st.locks[l.0] {
            LockSt::Read(n) if n > 0 => {
                st.locks[l.0] = if n == 1 {
                    LockSt::Unlocked
                } else {
                    LockSt::Read(n - 1)
                };
            }
            other => panic!(
                "model error: release_read of `{}` in state {:?}",
                self.shared.lock_names[l.0], other
            ),
        }
    }

    /// Release an exclusive hold on `l`.
    pub fn release_write(&mut self, l: LockRef) {
        self.turn("release_write", self.shared.lock_names[l.0]);
        let mut st = self.shared.lock();
        match st.locks[l.0] {
            LockSt::Write(owner) if owner == self.tid => st.locks[l.0] = LockSt::Unlocked,
            other => panic!(
                "model error: release_write of `{}` by t{} in state {:?}",
                self.shared.lock_names[l.0], self.tid, other
            ),
        }
    }

    /// Unlock a mutex (alias of [`release_write`](Self::release_write)).
    pub fn unlock(&mut self, m: LockRef) {
        self.release_write(m);
    }

    /// Correct condvar wait: atomically release mutex `m` (which the
    /// thread must hold exclusively) and sleep on `cv`; re-acquires `m`
    /// before returning, exactly like `std::sync::Condvar::wait`.
    pub fn wait(&mut self, cv: CvRef, m: LockRef) {
        self.turn("wait", self.shared.cv_names[cv.0]);
        {
            let mut st = self.shared.lock();
            match st.locks[m.0] {
                LockSt::Write(owner) if owner == self.tid => st.locks[m.0] = LockSt::Unlocked,
                other => panic!(
                    "model error: wait on `{}` without holding `{}` (state {:?})",
                    self.shared.cv_names[cv.0], self.shared.lock_names[m.0], other
                ),
            }
            st.cv_waiters[cv.0].push(self.tid);
            st.statuses[self.tid] = Status::CvWait(cv.0);
            self.shared.yield_to_scheduler(&mut st);
        }
        self.shared.wait_turn(self.tid);
        {
            let mut st = self.shared.lock();
            st.statuses[self.tid] = Status::Ready;
        }
        // The notifier left us blocked on the mutex; take it.
        self.acquire(Want::Write(m.0));
    }

    /// The *seeded-bug* wait: sleep on `cv` without any mutex interplay —
    /// the classic non-atomic "unlock, then sleep" window. A notify that
    /// fires inside that window is lost; the schedule explorer exists to
    /// find exactly this.
    pub fn wait_unlinked(&mut self, cv: CvRef) {
        self.turn("wait_unlinked", self.shared.cv_names[cv.0]);
        {
            let mut st = self.shared.lock();
            st.cv_waiters[cv.0].push(self.tid);
            st.statuses[self.tid] = Status::CvWait(cv.0);
            self.shared.yield_to_scheduler(&mut st);
        }
        self.shared.wait_turn(self.tid);
        let mut st = self.shared.lock();
        st.statuses[self.tid] = Status::Ready;
    }

    /// Wake one waiter of `cv` (no-op — a lost notification — when none
    /// is sleeping). When several wait and the wait was mutex-linked,
    /// *which* one wakes is a scheduler branch point.
    pub fn notify_one(&mut self, cv: CvRef) {
        self.turn("notify_one", self.shared.cv_names[cv.0]);
        let mut st = self.shared.lock();
        if st.cv_waiters[cv.0].is_empty() {
            return;
        }
        let waiters = st.cv_waiters[cv.0].len();
        let idx = choose(&mut st, waiters);
        let woken = st.cv_waiters[cv.0].remove(idx);
        wake(&mut st, woken);
    }

    /// Wake every waiter of `cv`.
    pub fn notify_all(&mut self, cv: CvRef) {
        self.turn("notify_all", self.shared.cv_names[cv.0]);
        let mut st = self.shared.lock();
        let waiters = std::mem::take(&mut st.cv_waiters[cv.0]);
        for tid in waiters {
            wake(&mut st, tid);
        }
    }
}

/// Transition a condvar sleeper to its post-wakeup state.
fn wake(st: &mut RunState, tid: usize) {
    st.statuses[tid] = Status::Ready;
}

fn grantable(st: &RunState, want: Want) -> bool {
    match want {
        Want::Read(l) => matches!(st.locks[l], LockSt::Unlocked | LockSt::Read(_)),
        Want::Write(l) => st.locks[l] == LockSt::Unlocked,
    }
}

fn grant(st: &mut RunState, tid: usize, want: Want) {
    match want {
        Want::Read(l) => {
            st.locks[l] = match st.locks[l] {
                LockSt::Unlocked => LockSt::Read(1),
                LockSt::Read(n) => LockSt::Read(n + 1),
                LockSt::Write(_) => unreachable!("grant checked by grantable"),
            };
        }
        Want::Write(l) => st.locks[l] = LockSt::Write(tid),
    }
}

/// Take the next branch decision: replay the prefix, default to 0 past
/// its end, and record `(options, chosen)` for backtracking. Single-
/// option "decisions" are not recorded.
fn choose(st: &mut RunState, options: usize) -> usize {
    if options <= 1 {
        return 0;
    }
    let chosen = if st.cursor < st.prefix.len() {
        st.prefix[st.cursor].min(options - 1)
    } else {
        0
    };
    st.cursor += 1;
    st.decisions.push(Decision { options, chosen });
    chosen
}

/// How one explored schedule failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Unfinished threads, none runnable (includes lost wakeups).
    Deadlock,
    /// A virtual thread panicked (failed assertion, model error).
    Panic,
    /// The post-condition ([`Model::check`]) rejected the final state.
    Check,
    /// Step limit exceeded (livelock guard).
    StepLimit,
}

/// A counterexample schedule.
#[derive(Debug)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Human-readable description (statuses at deadlock, panic payload…).
    pub message: String,
    /// The schedule: one line per scheduling decision taken.
    pub trace: Vec<String>,
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// True when the bounded space was exhausted (no early stop).
    pub complete: bool,
    /// Counterexamples found (empty = all explored schedules passed).
    pub failures: Vec<Failure>,
}

impl Report {
    /// Panic unless every explored schedule passed; the message carries
    /// the first counterexample's trace.
    pub fn assert_clean(&self) {
        if let Some(f) = self.failures.first() {
            panic!(
                "model failed ({:?}) after {} schedules: {}\nschedule:\n  {}",
                f.kind,
                self.schedules,
                f.message,
                f.trace.join("\n  ")
            );
        }
    }
}

/// The bounded DFS driver. See the module docs for the search strategy.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Context switches away from a runnable thread allowed per schedule.
    pub preemption_bound: usize,
    /// Cap on explored schedules (the DFS stops, `complete = false`).
    pub max_schedules: usize,
    /// Per-schedule step cap (livelock guard).
    pub max_steps: usize,
    /// Stop at the first counterexample (default) or keep enumerating.
    pub stop_on_failure: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            preemption_bound: 3,
            max_schedules: 20_000,
            max_steps: 2_000,
            stop_on_failure: true,
        }
    }
}

impl Explorer {
    /// An explorer with a custom preemption budget.
    pub fn with_preemptions(bound: usize) -> Self {
        Explorer {
            preemption_bound: bound,
            ..Explorer::default()
        }
    }

    /// Explore the model `build` constructs, one invocation per schedule.
    pub fn explore(&self, build: impl Fn(&mut Model)) -> Report {
        let mut prefix: Vec<usize> = Vec::new();
        let mut report = Report {
            schedules: 0,
            complete: true,
            failures: Vec::new(),
        };
        loop {
            let (decisions, failure) = self.run_once(&build, &prefix);
            report.schedules += 1;
            if let Some(f) = failure {
                report.failures.push(f);
                if self.stop_on_failure {
                    report.complete = false;
                    return report;
                }
            }
            // Next prefix: increment the deepest incrementable decision.
            let mut next = decisions;
            loop {
                match next.pop() {
                    None => return report, // space exhausted
                    Some(d) if d.chosen + 1 < d.options => {
                        prefix = next.iter().map(|d| d.chosen).collect();
                        prefix.push(d.chosen + 1);
                        break;
                    }
                    Some(_) => {}
                }
            }
            if report.schedules >= self.max_schedules {
                report.complete = false;
                return report;
            }
        }
    }

    /// Execute one schedule following `prefix`.
    fn run_once(
        &self,
        build: &impl Fn(&mut Model),
        prefix: &[usize],
    ) -> (Vec<Decision>, Option<Failure>) {
        let mut model = Model::new();
        build(&mut model);
        let n = model.threads.len();
        assert!(n > 0, "a model needs at least one thread");
        let shared = Arc::new(Shared {
            mx: OsMutex::new(RunState {
                baton: None,
                statuses: vec![Status::Ready; n],
                locks: vec![LockSt::Unlocked; model.lock_names.len()],
                cv_waiters: vec![Vec::new(); model.cv_names.len()],
                steps: 0,
                last_ran: None,
                preemptions: 0,
                prefix: prefix.to_vec(),
                cursor: 0,
                decisions: Vec::new(),
                trace: Vec::new(),
                panic_msg: None,
                abort: false,
            }),
            cv: OsCondvar::new(),
            lock_names: model.lock_names.clone(),
            cv_names: model.cv_names.clone(),
            thread_names: model.threads.iter().map(|(name, _)| *name).collect(),
        });
        let mut handles = Vec::with_capacity(n);
        for (tid, (_, body)) in model.threads.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("vthread-{tid}"))
                .stack_size(128 * 1024)
                .spawn(move || {
                    let mut ctx = Ctx {
                        tid,
                        shared: Arc::clone(&shared),
                    };
                    let result = panic::catch_unwind(AssertUnwindSafe(|| {
                        shared.wait_turn(tid);
                        body(&mut ctx);
                    }));
                    let mut st = shared.lock();
                    if let Err(payload) = result {
                        if !payload.is::<AbortToken>() && st.panic_msg.is_none() {
                            st.panic_msg = Some(payload_to_string(&payload));
                        }
                    }
                    st.statuses[tid] = Status::Finished;
                    shared.yield_to_scheduler(&mut st);
                })
                .expect("spawn virtual thread"); // lint: allow(unwrap) — cannot explore without threads; abort is correct
            handles.push(handle);
        }

        let failure = self.schedule_loop(&shared);
        for h in handles {
            let _ = h.join();
        }
        let mut st = shared.lock();
        let decisions = std::mem::take(&mut st.decisions);
        let failure = failure.or_else(|| {
            st.panic_msg.take().map(|message| Failure {
                kind: FailureKind::Panic,
                message,
                trace: st.trace.clone(),
            })
        });
        drop(st);
        // Post-condition, only for schedules that completed cleanly.
        let failure = failure.or_else(|| {
            model.check.take().and_then(|check| {
                match panic::catch_unwind(AssertUnwindSafe(check)) {
                    Ok(Ok(())) => None,
                    Ok(Err(message)) => Some(Failure {
                        kind: FailureKind::Check,
                        message,
                        trace: shared.lock().trace.clone(),
                    }),
                    Err(payload) => Some(Failure {
                        kind: FailureKind::Check,
                        message: payload_to_string(&payload),
                        trace: shared.lock().trace.clone(),
                    }),
                }
            })
        });
        (decisions, failure)
    }

    /// The scheduler: pick a runnable thread, hand it the baton, wait for
    /// it to yield, repeat until everyone finished or nobody can run.
    fn schedule_loop(&self, shared: &Shared) -> Option<Failure> {
        loop {
            let mut st = shared.lock();
            while st.baton.is_some() {
                st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            if st.panic_msg.is_some() {
                teardown(shared, &mut st);
                return None; // reported as Panic by run_once
            }
            if st.statuses.iter().all(|s| *s == Status::Finished) {
                return None;
            }
            let runnable: Vec<usize> = (0..st.statuses.len())
                .filter(|&tid| match st.statuses[tid] {
                    Status::Ready => true,
                    Status::Blocked(want) => grantable(&st, want),
                    Status::CvWait(_) | Status::Finished => false,
                })
                .collect();
            if runnable.is_empty() {
                let message = format!(
                    "deadlock: no runnable thread; statuses: {}",
                    describe_statuses(shared, &st)
                );
                let trace = st.trace.clone();
                teardown(shared, &mut st);
                return Some(Failure {
                    kind: FailureKind::Deadlock,
                    message,
                    trace,
                });
            }
            st.steps += 1;
            if st.steps > self.max_steps {
                let trace = st.trace.clone();
                teardown(shared, &mut st);
                return Some(Failure {
                    kind: FailureKind::StepLimit,
                    message: format!("exceeded {} steps (livelock?)", self.max_steps),
                    trace,
                });
            }
            // Preemption-bounded choice: continuing the last-run thread is
            // free; switching away from it while it could continue costs
            // one preemption.
            let prev_runnable = st.last_ran.filter(|p| runnable.contains(p));
            let choices: Vec<usize> = match prev_runnable {
                Some(p) if st.preemptions >= self.preemption_bound => vec![p],
                Some(p) => {
                    let mut c = vec![p];
                    c.extend(runnable.iter().copied().filter(|&t| t != p));
                    c
                }
                None => runnable,
            };
            let idx = choose(&mut st, choices.len());
            let tid = choices[idx];
            if prev_runnable.is_some_and(|p| p != tid) {
                st.preemptions += 1;
            }
            st.last_ran = Some(tid);
            st.baton = Some(tid);
            shared.cv.notify_all();
        }
    }
}

/// Unblock every parked virtual thread into the abort path.
fn teardown(shared: &Shared, st: &mut RunState) {
    st.abort = true;
    shared.cv.notify_all();
}

fn describe_statuses(shared: &Shared, st: &RunState) -> String {
    st.statuses
        .iter()
        .enumerate()
        .map(|(tid, s)| {
            let what = match s {
                Status::Ready => "ready".to_string(),
                Status::Finished => "finished".to_string(),
                Status::Blocked(Want::Read(l)) => {
                    format!("blocked acquiring read `{}`", shared.lock_names[*l])
                }
                Status::Blocked(Want::Write(l)) => {
                    format!("blocked acquiring write `{}`", shared.lock_names[*l])
                }
                Status::CvWait(cv) => {
                    format!("asleep on `{}` (never notified)", shared.cv_names[*cv])
                }
            };
            format!("{}={what}", shared.thread_names[tid])
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "virtual thread panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_runs_to_completion() {
        let report = Explorer::default().explore(|m| {
            let l = m.rwlock("l");
            let data = m.cell(0u32);
            let d = data.clone();
            m.thread("t0", move |ctx| {
                ctx.acquire_write(l);
                d.with(|v| *v += 1);
                ctx.release_write(l);
            });
            let d = data.clone();
            m.check(move || {
                let v = d.with(|v| *v);
                if v == 1 {
                    Ok(())
                } else {
                    Err(format!("expected 1, got {v}"))
                }
            });
        });
        report.assert_clean();
        assert_eq!(report.schedules, 1, "one thread has exactly one schedule");
        assert!(report.complete);
    }

    #[test]
    fn two_unsynchronized_increments_explore_multiple_schedules() {
        // A classic read-modify-write race: both threads read 0 on some
        // schedule, so the final value is 1 — the checker must see it.
        let report = Explorer::default().explore(|m| {
            let data = m.cell(0u32);
            for name in ["a", "b"] {
                let d = data.clone();
                m.thread(name, move |ctx| {
                    let seen = d.with(|v| *v);
                    ctx.step("between read and write");
                    d.with(|v| *v = seen + 1);
                });
            }
            let d = data.clone();
            m.check(move || {
                let v = d.with(|v| *v);
                if v == 2 {
                    Ok(())
                } else {
                    Err(format!("lost update: final value {v}"))
                }
            });
        });
        assert!(
            !report.failures.is_empty(),
            "the lost-update schedule must be found"
        );
        assert_eq!(report.failures[0].kind, FailureKind::Check);
    }

    #[test]
    fn mutex_serializes_the_same_increments() {
        let report = Explorer::default().explore(|m| {
            let mx = m.mutex("m");
            let data = m.cell(0u32);
            for name in ["a", "b"] {
                let d = data.clone();
                m.thread(name, move |ctx| {
                    ctx.lock(mx);
                    let seen = d.with(|v| *v);
                    ctx.step("inside critical section");
                    d.with(|v| *v = seen + 1);
                    ctx.unlock(mx);
                });
            }
            let d = data.clone();
            m.check(move || {
                let v = d.with(|v| *v);
                if v == 2 {
                    Ok(())
                } else {
                    Err(format!("mutex failed to serialize: {v}"))
                }
            });
        });
        report.assert_clean();
        assert!(report.schedules > 1, "contended mutex has real choices");
    }

    #[test]
    fn self_deadlock_is_detected() {
        let report = Explorer::default().explore(|m| {
            let mx = m.mutex("m");
            m.thread("t0", move |ctx| {
                ctx.lock(mx);
                ctx.lock(mx); // blocks forever
            });
        });
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].kind, FailureKind::Deadlock);
        assert!(report.failures[0].message.contains("blocked acquiring"));
    }

    #[test]
    fn ab_ba_deadlock_is_found_with_one_preemption() {
        let report = Explorer::with_preemptions(1).explore(|m| {
            let a = m.mutex("a");
            let b = m.mutex("b");
            m.thread("t0", move |ctx| {
                ctx.lock(a);
                ctx.lock(b);
                ctx.unlock(b);
                ctx.unlock(a);
            });
            m.thread("t1", move |ctx| {
                ctx.lock(b);
                ctx.lock(a);
                ctx.unlock(a);
                ctx.unlock(b);
            });
        });
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.kind == FailureKind::Deadlock),
            "AB-BA deadlock must be explored"
        );
    }

    #[test]
    fn readers_share_writers_exclude() {
        let report = Explorer::default().explore(|m| {
            let l = m.rwlock("l");
            let peak = m.cell((0usize, 0usize)); // (inside, peak readers)
            for name in ["r0", "r1"] {
                let p = peak.clone();
                m.thread(name, move |ctx| {
                    ctx.acquire_read(l);
                    p.with(|(inside, pk)| {
                        *inside += 1;
                        *pk = (*pk).max(*inside);
                    });
                    ctx.step("reading");
                    p.with(|(inside, _)| *inside -= 1);
                    ctx.release_read(l);
                });
            }
            m.thread("w", move |ctx| {
                ctx.acquire_write(l);
                ctx.step("writing");
                ctx.release_write(l);
            });
            let p = peak.clone();
            m.check(move || {
                let pk = p.with(|(_, pk)| *pk);
                if pk >= 1 {
                    Ok(())
                } else {
                    Err("readers never ran".into())
                }
            });
        });
        report.assert_clean();
    }

    #[test]
    fn notify_one_wakes_exactly_one_linked_waiter() {
        // Two sleepers, one notify_one, then one notify_all: all finish.
        let report = Explorer::default().explore(|m| {
            let mx = m.mutex("m");
            let cv = m.condvar("cv");
            let flags = m.cell(0u32);
            for name in ["w0", "w1"] {
                let f = flags.clone();
                m.thread(name, move |ctx| {
                    ctx.lock(mx);
                    while f.with(|v| *v) == 0 {
                        ctx.wait(cv, mx);
                    }
                    f.with(|v| *v -= 1);
                    ctx.unlock(mx);
                });
            }
            let f = flags.clone();
            m.thread("n", move |ctx| {
                ctx.lock(mx);
                f.with(|v| *v = 2);
                ctx.unlock(mx);
                ctx.notify_one(cv);
                ctx.notify_all(cv);
            });
        });
        report.assert_clean();
    }
}
