//! A hand-rolled, lexer-level source lint for the workspace's own
//! conventions — the ones `rustc`/`clippy` cannot express:
//!
//! * **`unsafe-needs-safety`** — every `unsafe { … }` block must carry a
//!   `// SAFETY:` comment block directly above it (only further
//!   comments, attributes, or blank lines may intervene).
//!   (`unsafe fn` / `unsafe impl` / `unsafe trait` headers are
//!   covered by `unsafe_op_in_unsafe_fn` + rustdoc `# Safety` sections
//!   and are not re-checked here.)
//! * **`raw-sync`** — no construction or import of `parking_lot` /
//!   `std::sync` mutexes, rwlocks, or condvars outside the
//!   `cracker_core::sync` facade: all real latching must flow through
//!   the instrumented wrappers so lockdep sees it. The facade itself and
//!   the model-checker scheduler (which *implements* scheduling on top
//!   of OS primitives) are allowlisted; anything else needs a
//!   `lint: allow(raw-sync)` waiver with a reason.
//! * **`no-unwrap`** — no `.unwrap()` / `.expect(` in non-test library
//!   code; return `Result`/`Option` or waive with
//!   `lint: allow(unwrap) — reason` for genuinely unreachable arms.
//!   `src/bin/` CLIs are exempt (aborting with a message is their job).
//! * **`allow-needs-reason`** — every `#[allow(…)]` / `#![allow(…)]` in
//!   non-test code must have a justification comment on the same line or
//!   the line directly above.
//! * **`durability-io`** — inside the durability layer
//!   (`storage::checkpoint`, `storage::wal`, `storage::persist`) no raw
//!   file I/O outside the `storage::fault` injector facade: every
//!   create/write/fsync/rename/truncate must name the `injector` (or one
//!   of the facade helpers) so chaos tests can arm it. Crash-simulation
//!   sites that *deliberately* bypass injection carry a
//!   `lint: allow(durability-io) — reason` waiver.
//! * **`per-tuple-alloc`** — inside the operator pipeline
//!   (`engine::exec`), no per-tuple allocation in hot loops: a
//!   `.clone()` / `vec![…]` / `Vec::new()` inside a `for`/`while`/`loop`
//!   body is exactly the per-row cost the block-at-a-time rework
//!   removed, and this rule keeps it from creeping back. Tuple-path
//!   reference code (whose per-row rows are its contract) and
//!   deliberate bridges carry a `lint: allow(per-tuple-alloc) — reason`
//!   waiver.
//!
//! The "parser" is a small lexer that blanks comments, strings, and char
//! literals (so `"unsafe"` in a string does not count) and records
//! comments per line (so waivers and SAFETY justifications do count).
//! `#[cfg(test)]` items and `#[test]` functions are skipped by brace
//! matching over the blanked source. This is deliberately not a real
//! Rust parser: the rules are conventions about *source text*, and a
//! lexer is the strongest tool that cannot rot when syntax it never
//! understood shows up.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`unsafe-needs-safety`, `raw-sync`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Files where the `raw-sync` rule does not apply at all: the facade
/// that wraps the raw primitives, and the schedule explorer that builds
/// a scheduler *out of* OS primitives (instrumenting those would be
/// turtles all the way down).
const RAW_SYNC_ALLOWED: &[&str] = &["crates/core/src/sync.rs", "crates/analysis/src/sched.rs"];

/// Durability-layer files where the `durability-io` rule applies. The
/// facade itself (`crates/storage/src/fault.rs`) is deliberately *not*
/// listed: it is the one place raw I/O is supposed to live.
const DURABILITY_SCOPED: &[&str] = &[
    "crates/storage/src/checkpoint.rs",
    "crates/storage/src/wal.rs",
    "crates/storage/src/persist.rs",
];

/// Raw file-I/O tokens the `durability-io` rule hunts for. Lexer-level
/// like everything here: a line that names the `injector` is taken as
/// going through the facade and is exempt.
const RAW_IO_TOKENS: &[&str] = &[
    "fs::",
    "File::",
    "OpenOptions",
    ".sync_all(",
    ".sync_data(",
    ".set_len(",
    ".write_all(",
    ".read_to_string(",
];

/// Allocation tokens the `per-tuple-alloc` rule hunts for inside loop
/// bodies of `engine::exec` files. Lexer-level: `.cloned()` covers the
/// iterator adaptor, `.clone()` the direct call; `unwrap_or`-style
/// names never match because the token list requires the exact call.
const PER_TUPLE_ALLOC_TOKENS: &[&str] = &[
    ".clone()",
    ".cloned()",
    ".to_vec()",
    "vec![",
    "Vec::new(",
    "Vec::with_capacity(",
];

/// Source text after lexing: code with comments/strings blanked, plus
/// the comment text per line.
struct Lexed {
    /// Same length and line structure as the input; comment and literal
    /// bodies replaced by spaces.
    code: String,
    /// 1-based line number → concatenated comment text on that line.
    comments: HashMap<usize, String>,
}

/// Blank comments, string literals, and char literals, preserving line
/// structure; collect comment text per line. Handles nested block
/// comments, raw strings with arbitrary `#` counts, escapes, and the
/// lifetime-vs-char-literal ambiguity.
fn lex(src: &str) -> Lexed {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut code = String::with_capacity(src.len());
    let mut comments: HashMap<usize, String> = HashMap::new();
    let mut line = 1usize;
    let mut st = St::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            code.push('\n');
            line += 1;
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    code.push(' ');
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    code.push(' ');
                } else if c == '"' {
                    st = St::Str;
                    code.push('"');
                } else if c == 'r' && (next == Some('"') || next == Some('#')) {
                    // Possible raw string r"…" / r#"…"# (also br"…").
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            code.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    code.push(c);
                } else if c == '\'' {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && chars.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        code.push(c);
                    } else {
                        st = St::Char;
                        code.push('\'');
                    }
                } else {
                    code.push(c);
                }
            }
            St::LineComment => {
                comments.entry(line).or_default().push(c);
                code.push(' ');
            }
            St::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                comments.entry(line).or_default().push(c);
                code.push(' ');
            }
            St::Str => {
                if c == '\\' {
                    code.push(' ');
                    if let Some(n) = chars.get(i + 1) {
                        code.push(if *n == '\n' { '\n' } else { ' ' });
                        if *n == '\n' {
                            line += 1;
                        }
                        i += 2;
                        continue;
                    }
                } else if c == '"' {
                    st = St::Code;
                    code.push('"');
                } else {
                    code.push(' ');
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        for _ in i..j {
                            code.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                code.push(' ');
            }
            St::Char => {
                if c == '\\' {
                    code.push(' ');
                    if chars.get(i + 1).is_some() {
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                } else if c == '\'' {
                    st = St::Code;
                    code.push('\'');
                } else {
                    code.push(' ');
                }
            }
        }
        i += 1;
    }
    Lexed { code, comments }
}

/// Mark every line that belongs to a `#[cfg(test)]` item or a `#[test]`
/// function, by matching the braces of the item that follows the
/// attribute in the blanked source.
fn test_lines(code: &str) -> Vec<bool> {
    let line_count = code.lines().count() + 1;
    let mut is_test = vec![false; line_count + 1];
    let bytes = code.as_bytes();
    let line_of = |pos: usize| 1 + code[..pos].bytes().filter(|b| *b == b'\n').count();
    for marker in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(found) = code[from..].find(marker) {
            let start = from + found;
            from = start + marker.len();
            // Scan to the item's opening brace; a `;` first means a
            // braceless item (e.g. `mod tests;`) — nothing to span.
            let mut j = start + marker.len();
            while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
                j += 1;
            }
            if j >= bytes.len() || bytes[j] == b';' {
                continue;
            }
            let mut depth = 0usize;
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let (a, b) = (
                line_of(start),
                line_of(j.min(bytes.len().saturating_sub(1))),
            );
            for flag in is_test.iter_mut().take(b.min(line_count) + 1).skip(a) {
                *flag = true;
            }
        }
    }
    is_test
}

/// Mark every line inside a `for`/`while`/`loop` body by matching the
/// braces of the block that follows the keyword in the blanked source.
/// `impl Trait for Type { … }` also contains the word `for`; a real
/// loop header is distinguished by the word `in` before its brace.
fn loop_lines(code: &str) -> Vec<bool> {
    let line_count = code.lines().count() + 1;
    let mut in_loop = vec![false; line_count + 1];
    let bytes = code.as_bytes();
    let line_of = |pos: usize| 1 + code[..pos].bytes().filter(|b| *b == b'\n').count();
    for kw in ["for", "while", "loop"] {
        let mut from = 0;
        while let Some(found) = code[from..].find(kw) {
            let pos = from + found;
            from = pos + kw.len();
            if !word_at(code, pos, kw) {
                continue;
            }
            // Scan the header to its opening brace; hitting `;` or `}`
            // first means this was not a loop header (e.g. `for<'a>`
            // bounds in a where-clause ending the item).
            let mut j = pos + kw.len();
            while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' && bytes[j] != b'}' {
                j += 1;
            }
            if j >= bytes.len() || bytes[j] != b'{' {
                continue;
            }
            if kw == "for" {
                let header = &code[pos..j];
                let is_loop = header
                    .match_indices("in")
                    .any(|(k, _)| word_at(header, k, "in"));
                if !is_loop {
                    continue;
                }
            }
            let mut depth = 0usize;
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let (a, b) = (line_of(pos), line_of(j.min(bytes.len().saturating_sub(1))));
            for flag in in_loop.iter_mut().take(b.min(line_count) + 1).skip(a) {
                *flag = true;
            }
        }
    }
    in_loop
}

/// True when `code[pos..]` starts with `word` as a whole identifier.
fn word_at(code: &str, pos: usize, word: &str) -> bool {
    if !code[pos..].starts_with(word) {
        return false;
    }
    let before_ok = pos == 0
        || !code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after_ok = !code[pos + word.len()..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// Does any comment on `line` or the `above` lines before it contain
/// `needle`?
fn comment_near(lexed: &Lexed, line: usize, above: usize, needle: &str) -> bool {
    (line.saturating_sub(above)..=line)
        .any(|l| lexed.comments.get(&l).is_some_and(|c| c.contains(needle)))
}

/// Does the contiguous comment/attribute block ending directly above
/// `line` (or `line` itself) contain `needle`? This is the SAFETY rule:
/// a multi-line `// SAFETY: …` block must abut the `unsafe`, with only
/// further comment lines, attributes, or blank lines in between.
fn comment_block_above(lexed: &Lexed, code_lines: &[&str], line: usize, needle: &str) -> bool {
    if lexed
        .comments
        .get(&line)
        .is_some_and(|c| c.contains(needle))
    {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if lexed.comments.get(&l).is_some_and(|c| c.contains(needle)) {
            return true;
        }
        let code = code_lines.get(l - 1).map_or("", |s| s.trim());
        let is_comment_line = lexed.comments.contains_key(&l);
        if !is_comment_line && !code.is_empty() && !code.starts_with("#[") {
            return false; // real code interrupts the block
        }
    }
    false
}

/// Does the comment on `line` or on the line directly above have any
/// non-empty text at all?
fn has_any_comment(lexed: &Lexed, line: usize) -> bool {
    (line.saturating_sub(1)..=line)
        .any(|l| lexed.comments.get(&l).is_some_and(|c| !c.trim().is_empty()))
}

/// Lint one source file. `rel` is the path relative to the workspace
/// root, used both for reporting and for path-scoped rule exemptions.
pub fn lint_source(rel: &Path, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let in_test = test_lines(&lexed.code);
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let is_bin = rel_str.contains("/src/bin/") || rel_str.ends_with("/main.rs");
    let raw_sync_exempt = RAW_SYNC_ALLOWED.iter().any(|p| rel_str.ends_with(p));
    let durability_scoped = DURABILITY_SCOPED.iter().any(|p| rel_str.ends_with(p));
    let exec_scoped = rel_str.contains("crates/engine/src/exec/");
    let mut findings = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            file: rel.to_path_buf(),
            line,
            rule,
            message,
        });
    };

    // ---- unsafe-needs-safety: scan the blanked code for `unsafe {`.
    let code = &lexed.code;
    let code_lines: Vec<&str> = code.lines().collect();
    let mut from = 0;
    while let Some(found) = code[from..].find("unsafe") {
        let pos = from + found;
        from = pos + "unsafe".len();
        if !word_at(code, pos, "unsafe") {
            continue;
        }
        let rest = code[pos + "unsafe".len()..].trim_start();
        // Only bare `unsafe { … }` blocks need a local justification.
        if !rest.starts_with('{') {
            continue;
        }
        let line = 1 + code[..pos].bytes().filter(|b| *b == b'\n').count();
        if in_test.get(line).copied().unwrap_or(false) {
            continue;
        }
        if !comment_block_above(&lexed, &code_lines, line, "SAFETY") {
            push(
                line,
                "unsafe-needs-safety",
                "`unsafe` block without a `// SAFETY:` comment block directly above it".into(),
            );
        }
    }

    // ---- line-scoped rules.
    let code_lines: Vec<&str> = lexed.code.lines().collect();
    let in_loop = if exec_scoped {
        loop_lines(&lexed.code)
    } else {
        Vec::new()
    };
    for (idx, &line_code) in code_lines.iter().enumerate() {
        let line = idx + 1;
        let test = in_test.get(line).copied().unwrap_or(false);

        if !raw_sync_exempt
            && (line_code.contains("parking_lot")
                || (line_code.contains("std::sync")
                    && ["Mutex", "RwLock", "Condvar"]
                        .iter()
                        .any(|t| line_code.contains(t))))
            && !comment_near(&lexed, line, 1, "lint: allow(raw-sync)")
        {
            push(
                line,
                "raw-sync",
                "raw lock primitive outside the `cracker_core::sync` facade; \
                 route latching through the facade or waive with `// lint: allow(raw-sync) — why`"
                    .into(),
            );
        }

        if !test && !is_bin {
            // `.expect("` / `.expect(format!` (the quote survives
            // blanking) rather than bare `.expect(`: parser-style
            // `self.expect(Tok::X)` methods returning `Result` are not
            // the panicking combinator.
            for pat in [".unwrap()", ".expect(\"", ".expect(format!"] {
                if line_code.contains(pat) && !comment_near(&lexed, line, 1, "lint: allow(unwrap)")
                {
                    push(
                        line,
                        "no-unwrap",
                        format!(
                            "`{pat}` in library code; propagate the error or waive with \
                             `// lint: allow(unwrap) — why`"
                        ),
                    );
                }
            }
        }

        if durability_scoped && !test {
            let trimmed = line_code.trim_start();
            let is_import = trimmed.starts_with("use ") || trimmed.starts_with("pub use ");
            // A rustfmt-split method chain puts `self.injector` on the line
            // above the `.write_all(...)` continuation; count both as facade.
            let through_facade = line_code.contains("injector")
                || (trimmed.starts_with('.')
                    && idx > 0
                    && code_lines[idx - 1].contains("injector"));
            if !is_import
                && !through_facade
                && RAW_IO_TOKENS.iter().any(|t| line_code.contains(t))
                && !comment_near(&lexed, line, 1, "lint: allow(durability-io)")
            {
                push(
                    line,
                    "durability-io",
                    "raw file I/O in the durability layer bypasses the `storage::fault` \
                     injector facade; route it through the injector or waive with \
                     `// lint: allow(durability-io) — why`"
                        .into(),
                );
            }
        }

        if exec_scoped
            && !test
            && in_loop.get(line).copied().unwrap_or(false)
            && PER_TUPLE_ALLOC_TOKENS.iter().any(|t| line_code.contains(t))
            && !comment_near(&lexed, line, 1, "lint: allow(per-tuple-alloc)")
        {
            push(
                line,
                "per-tuple-alloc",
                "per-tuple allocation inside an `engine::exec` hot loop; move it out of \
                 the loop, reuse a scratch buffer, or waive with \
                 `// lint: allow(per-tuple-alloc) — why`"
                    .into(),
            );
        }

        if !test
            && (line_code.trim_start().starts_with("#[allow(")
                || line_code.trim_start().starts_with("#![allow("))
            && !has_any_comment(&lexed, line)
        {
            push(
                line,
                "allow-needs-reason",
                "`#[allow]` without a justification comment on the same line or the line above"
                    .into(),
            );
        }
    }
    findings
}

/// Recursively collect `.rs` files under `dir`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every library source file in the workspace rooted at `root`:
/// `src/` of the facade package and of each crate under `crates/`.
/// (`tests/`, `benches/`, and `examples/` are intentionally out of
/// scope; the shims are vendored stand-ins, not our code.)
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let src = crate_dir.join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    let mut findings = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let src = std::fs::read_to_string(&file)?;
        findings.extend(lint_source(&rel, &src));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source(Path::new("crates/x/src/lib.rs"), src)
    }

    fn rules(src: &str) -> Vec<&'static str> {
        lint(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unsafe_block_without_safety_is_flagged() {
        let src = "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        assert_eq!(rules(src), vec!["unsafe-needs-safety"]);
    }

    #[test]
    fn unsafe_block_with_safety_passes() {
        let src = "fn f() {\n    // SAFETY: n is in bounds by the loop guard.\n    unsafe { do_it() }\n}\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn unsafe_fn_header_is_not_reflagged() {
        // Covered by unsafe_op_in_unsafe_fn + `# Safety` docs instead.
        let src = "/// # Safety\n/// caller checks bounds\npub unsafe fn f() {}\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let src = "fn f() {\n    let s = \"unsafe { }\";\n    // unsafe { } in a comment\n}\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn raw_sync_flagged_and_waivable() {
        let flagged = "use parking_lot::Mutex;\n";
        assert_eq!(rules(flagged), vec!["raw-sync"]);
        let waived = "// lint: allow(raw-sync) — below cracker_core in the dep graph\nuse parking_lot::Mutex;\n";
        assert!(rules(waived).is_empty());
        let facade = lint_source(Path::new("crates/core/src/sync.rs"), flagged);
        assert!(facade.is_empty(), "the facade itself is exempt");
    }

    #[test]
    fn std_sync_arc_alone_is_fine() {
        assert!(rules("use std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\n").is_empty());
        assert_eq!(rules("use std::sync::{Arc, Mutex};\n"), vec!["raw-sync"]);
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let src = "fn f() { x().unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y().unwrap(); }\n}\n";
        assert_eq!(rules(src), vec!["no-unwrap"]);
    }

    #[test]
    fn unwrap_or_variants_are_not_unwrap() {
        assert!(rules("fn f() { x().unwrap_or(0); y().unwrap_or_else(z); }\n").is_empty());
    }

    #[test]
    fn expect_flagged_and_waivable() {
        assert_eq!(
            rules("fn f() { x().expect(\"boom\"); }\n"),
            vec!["no-unwrap"]
        );
        let waived =
            "fn f() {\n    // lint: allow(unwrap) — len checked above\n    x().expect(\"boom\");\n}\n";
        assert!(rules(waived).is_empty());
    }

    #[test]
    fn bins_may_unwrap() {
        let src = "fn main() { run().unwrap(); }\n";
        assert!(lint_source(Path::new("crates/x/src/bin/tool.rs"), src).is_empty());
    }

    #[test]
    fn test_fn_attribute_also_skips() {
        let src = "#[test]\nfn t() { x().unwrap(); }\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn allow_needs_reason() {
        assert_eq!(
            rules("#[allow(dead_code)]\nfn f() {}\n"),
            vec!["allow-needs-reason"]
        );
        assert!(
            rules("// retained for the ffi layer\n#[allow(dead_code)]\nfn f() {}\n").is_empty()
        );
        assert!(rules("#[allow(dead_code)] // retained for the ffi layer\nfn f() {}\n").is_empty());
    }

    #[test]
    fn durability_io_flagged_in_scope_and_waivable() {
        let src = "fn f() { fs::write(p, b).ok(); }\n";
        let scoped = lint_source(Path::new("crates/storage/src/wal.rs"), src);
        assert_eq!(
            scoped.iter().map(|f| f.rule).collect::<Vec<_>>(),
            vec!["durability-io"]
        );
        let waived = "fn f() {\n    // lint: allow(durability-io) — crash sim bypasses injection\n    fs::write(p, b).ok();\n}\n";
        assert!(lint_source(Path::new("crates/storage/src/wal.rs"), waived).is_empty());
    }

    #[test]
    fn durability_io_exempts_facade_calls_imports_and_other_files() {
        // Calls through the injector are the sanctioned route.
        let facade =
            "fn f() { injector.write_all(P, file, b)?; self.injector.sync_file(P, &f)?; }\n";
        assert!(lint_source(Path::new("crates/storage/src/checkpoint.rs"), facade).is_empty());
        // Imports alone do no I/O.
        let import = "use std::fs::File;\nuse std::fs;\n";
        assert!(lint_source(Path::new("crates/storage/src/wal.rs"), import).is_empty());
        // rustfmt may split the facade call across lines; the continuation
        // under a `self.injector` receiver is still the sanctioned route.
        let split = "fn f() {\n    let _ = self\n        .injector\n        .write_all(P, &mut self.file, half);\n}\n";
        assert!(lint_source(Path::new("crates/storage/src/wal.rs"), split).is_empty());
        // The rule is scoped: the facade itself and unrelated crates may
        // touch files directly.
        let raw = "fn f() { fs::write(p, b).ok(); }\n";
        assert!(lint_source(Path::new("crates/storage/src/fault.rs"), raw).is_empty());
        assert!(lint_source(Path::new("crates/sim/src/lib.rs"), raw).is_empty());
        // Test code inside a scoped file is exempt too.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { fs::write(p, b).ok(); }\n}\n";
        assert!(lint_source(Path::new("crates/storage/src/wal.rs"), test_only).is_empty());
    }

    #[test]
    fn per_tuple_alloc_flagged_in_exec_loops_and_waivable() {
        let src =
            "fn f(rows: &[Row]) {\n    for r in rows {\n        let x = r.clone();\n    }\n}\n";
        let scoped = lint_source(Path::new("crates/engine/src/exec/ops.rs"), src);
        assert_eq!(
            scoped.iter().map(|f| f.rule).collect::<Vec<_>>(),
            vec!["per-tuple-alloc"]
        );
        // A waiver on the line above clears it.
        let waived = "fn f(rows: &[Row]) {\n    for r in rows {\n        // lint: allow(per-tuple-alloc) — emitted rows are owned by contract\n        let x = r.clone();\n    }\n}\n";
        assert!(lint_source(Path::new("crates/engine/src/exec/ops.rs"), waived).is_empty());
        // `while` and bare `loop` bodies are hot loops too.
        let while_loop = "fn f() {\n    while go() {\n        let v = Vec::new();\n    }\n    loop {\n        let v = vec![0u8; 4];\n        break;\n    }\n}\n";
        let found = lint_source(Path::new("crates/engine/src/exec/vector.rs"), while_loop);
        assert_eq!(found.len(), 2);
        // Outside a loop (one-time setup) allocation is fine.
        let setup = "fn f() {\n    let mut out = Vec::with_capacity(8);\n    out.push(1);\n}\n";
        assert!(lint_source(Path::new("crates/engine/src/exec/ops.rs"), setup).is_empty());
        // The rule is scoped: the same loop elsewhere passes.
        assert!(lint(src).is_empty());
        // Test code inside a scoped file is exempt.
        let test_only =
            "#[cfg(test)]\nmod tests {\n    fn t() { for r in rows { r.clone(); } }\n}\n";
        assert!(lint_source(Path::new("crates/engine/src/exec/ops.rs"), test_only).is_empty());
    }

    #[test]
    fn impl_for_blocks_are_not_loops() {
        // `impl Trait for Type` contains the word `for` but is no loop:
        // allocations directly inside its methods must not be flagged.
        let src = "impl Operator for ScanOp {\n    fn next(&mut self) -> Option<Row> {\n        let mut row = Vec::with_capacity(self.arity);\n        Some(row)\n    }\n}\n";
        assert!(lint_source(Path::new("crates/engine/src/exec/ops.rs"), src).is_empty());
        // But a real loop inside such a method is still covered.
        let src = "impl Operator for ScanOp {\n    fn next(&mut self) -> Option<Row> {\n        for c in &self.cols {\n            let v = c.to_vec();\n        }\n        None\n    }\n}\n";
        let found = lint_source(Path::new("crates/engine/src/exec/ops.rs"), src);
        assert_eq!(
            found.iter().map(|f| f.rule).collect::<Vec<_>>(),
            vec!["per-tuple-alloc"]
        );
    }

    #[test]
    fn raw_strings_and_chars_lex_cleanly() {
        let src = "fn f() {\n    let r = r#\"unsafe { .unwrap() }\"#;\n    let c = '\"';\n    let lt: &'static str = \"x\";\n}\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn nested_block_comments_do_not_leak() {
        let src = "/* outer /* inner */ still comment .unwrap() */\nfn f() {}\n";
        assert!(rules(src).is_empty());
    }
}
