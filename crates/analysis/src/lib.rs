//! Static and dynamic analysis for the cracker's concurrency protocols.
//!
//! Three tools live here, all dependency-free by construction (the build
//! environment is offline):
//!
//! * [`sched`] — a miniature loom: a cooperative scheduler that runs
//!   small protocol models one virtual thread at a time and enumerates
//!   interleavings depth-first under a CHESS-style preemption bound,
//!   flagging deadlocks, lost wakeups, assertion failures, and
//!   post-condition violations with a replayable schedule trace.
//! * [`models`] — sync-operation-faithful re-statements of the real
//!   protocols (`ShardedCrackerColumn`'s two-phase select,
//!   `AdmissionGate`'s condvar discipline), each paired with a
//!   deliberately-broken sibling so the suite proves the explorer can
//!   catch the bug class before trusting a clean run.
//! * [`lint`] — a lexer-level lint for workspace conventions `rustc`
//!   cannot express (`// SAFETY:` comments, no raw locks outside the
//!   `cracker_core::sync` facade, no `unwrap` in library code,
//!   justified `#[allow]`s), run in CI via `cargo run -p analysis
//!   --bin lint`.
//!
//! The runtime half of the story — lockdep's held-lock sets, the
//! lock-order graph, and latch budgets — lives in `cracker_core::sync`
//! so it can wrap every latch in the hot path; this crate holds the
//! tooling that does not belong in the production dependency tree. See
//! `CONCURRENCY.md` at the repo root for the full latch hierarchy and
//! which invariant is checked by which tool.

pub mod lint;
pub mod models;
pub mod sched;
