//! The mini-loom model suite: every correct protocol model must pass on
//! *all* explored schedules, and every seeded-bug sibling must be
//! caught. The seeded halves are the negative tests the issue requires —
//! they prove the explorer has teeth before we trust its clean runs.

use analysis::models;
use analysis::sched::FailureKind;

#[test]
fn double_crack_correct_two_threads_all_schedules() {
    let report = models::double_crack(2);
    report.assert_clean();
    assert!(report.complete, "bounded space should be exhausted");
    assert!(
        report.schedules > 10,
        "contention must produce real interleavings (got {})",
        report.schedules
    );
}

#[test]
fn double_crack_correct_three_threads_all_schedules() {
    let report = models::double_crack(3);
    report.assert_clean();
    assert!(report.complete);
}

#[test]
fn seeded_double_crack_is_caught() {
    // Deleting the re-check under the write latch must yield a schedule
    // where a shard cracks twice (or a query answers off-oracle).
    let report = models::double_crack_buggy(2);
    assert!(
        !report.failures.is_empty(),
        "explorer missed the seeded double-crack after {} schedules",
        report.schedules
    );
    let f = &report.failures[0];
    assert_eq!(f.kind, FailureKind::Check, "caught by the post-condition");
    assert!(
        f.message.contains("cracked") || f.message.contains("oracle"),
        "unexpected failure message: {}",
        f.message
    );
    assert!(!f.trace.is_empty(), "counterexample must carry a schedule");
}

#[test]
fn admission_gate_correct_two_threads_all_schedules() {
    let report = models::admission_gate(2);
    report.assert_clean();
    assert!(report.complete);
}

#[test]
fn admission_gate_correct_three_threads_all_schedules() {
    let report = models::admission_gate(3);
    report.assert_clean();
    assert!(report.complete);
}

#[test]
fn seeded_lost_wakeup_is_caught_as_deadlock() {
    // The non-atomic "unlock, then sleep" wait loses a notify that fires
    // in the window; the sleeper never wakes and the explorer must
    // report the resulting deadlock with the sleeper named in it.
    let report = models::admission_gate_buggy(2);
    let deadlock = report
        .failures
        .iter()
        .find(|f| f.kind == FailureKind::Deadlock);
    let Some(f) = deadlock else {
        panic!(
            "explorer missed the seeded lost wakeup after {} schedules: {:?}",
            report.schedules, report.failures
        );
    };
    assert!(
        f.message.contains("asleep on `released`"),
        "deadlock report should name the lost sleeper: {}",
        f.message
    );
}

#[test]
fn gate_timeout_clears_the_waiting_set_on_every_schedule() {
    // try_acquire_for: admitted, timed out, or shed — every exit path
    // must remove the operation from the waiting set, on all schedules.
    let report = models::gate_timeout();
    report.assert_clean();
    assert!(report.complete, "bounded space should be exhausted");
    assert!(
        report.schedules > 10,
        "three timed queries on one permit must contend (got {})",
        report.schedules
    );
}

#[test]
fn seeded_waiting_set_leak_is_caught() {
    // Deleting the remove on the timeout path leaves a phantom waiter
    // whose queue-bound contribution sheds every later query; the
    // explorer must surface a schedule that reaches the leak.
    let report = models::gate_timeout_leaky();
    assert!(
        !report.failures.is_empty(),
        "explorer missed the seeded waiting-set leak after {} schedules",
        report.schedules
    );
    let f = &report.failures[0];
    assert_eq!(f.kind, FailureKind::Check, "caught by the post-condition");
    assert!(
        f.message.contains("phantom waiter"),
        "unexpected failure message: {}",
        f.message
    );
    assert!(!f.trace.is_empty(), "counterexample must carry a schedule");
}

#[test]
fn eligibility_notify_policy_is_stall_free() {
    // The Wake::{None,One,All} release policy from AdmissionPermit::drop:
    // on every schedule all three queries finish — notify_one never
    // strands an eligible waiter behind a cap-blocked one.
    let report = models::eligibility_notify();
    report.assert_clean();
    assert!(report.complete);
}
