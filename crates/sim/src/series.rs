//! The data series behind Figures 2 and 3.

use crate::granule::GranuleSim;

/// The scan baseline of Figure 3: by construction, 1.0.
pub const SCAN_BASELINE: f64 = 1.0;

/// **Figure 2** — "fractional overhead in terms of writes for various
/// selectivity factors using a uniform distribution and a query sequence
/// of up to 20 steps": per step, the cracking writes divided by the
/// database size.
pub fn fig2_series(n: usize, sigma: f64, steps: usize, seed: u64) -> Vec<f64> {
    let mut sim = GranuleSim::new(n, sigma, seed);
    sim.run(steps)
        .into_iter()
        .map(|c| c.writes as f64 / n as f64)
        .collect()
}

/// **Figure 3** — "the corresponding accumulated overhead in terms of both
/// reads and writes. The baseline (=1.0) is to read the vector. Above the
/// baseline we have lost performance, below the baseline cracking has
/// become beneficial."
///
/// Entry `i` is `Σ_{j≤i} (reads_j + writes_j) / ((i+1) · N)` — cumulative
/// cracking I/O relative to cumulative scanning.
pub fn fig3_series(n: usize, sigma: f64, steps: usize, seed: u64) -> Vec<f64> {
    let mut sim = GranuleSim::new(n, sigma, seed);
    let costs = sim.run(steps);
    let mut acc = 0u64;
    costs
        .iter()
        .enumerate()
        .map(|(i, c)| {
            acc += c.io();
            acc as f64 / ((i + 1) as f64 * n as f64)
        })
        .collect()
}

/// The sort-upfront alternative of §2.2 on the same axes as Figure 3:
/// "completely sort or index the table upfront ... would require N·log(N)
/// writes. This investment would be recovered after log(N) queries."
/// Entry `i` is `(N + N·log2(N) + Σ_{j≤i} (2·log2(N) + σN)) / ((i+1)·N)`.
pub fn sort_cumulative_series(n: usize, sigma: f64, steps: usize) -> Vec<f64> {
    let log_n = (usize::BITS - n.leading_zeros()) as u64;
    let upfront = n as u64 + n as u64 * log_n;
    let per_query = 2 * log_n + (sigma * n as f64).ceil() as u64;
    (0..steps)
        .map(|i| {
            let total = upfront + (i as u64 + 1) * per_query;
            total as f64 / ((i + 1) as f64 * n as f64)
        })
        .collect()
}

/// The selectivity ladder of Figures 2 and 3.
pub fn paper_selectivities() -> [f64; 7] {
    [0.01, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80]
}

/// [`fig2_series`] averaged over `runs` independent random query streams —
/// the smooth-curve form used for plotting (a single stream is noisy: one
/// query may land in a large virgin piece and spike).
pub fn fig2_series_avg(n: usize, sigma: f64, steps: usize, runs: u64) -> Vec<f64> {
    average((0..runs).map(|s| fig2_series(n, sigma, steps, 0xF162 + s)))
}

/// [`fig3_series`] averaged over `runs` independent random query streams.
pub fn fig3_series_avg(n: usize, sigma: f64, steps: usize, runs: u64) -> Vec<f64> {
    average((0..runs).map(|s| fig3_series(n, sigma, steps, 0xF163 + s)))
}

fn average(series: impl Iterator<Item = Vec<f64>>) -> Vec<f64> {
    let mut acc: Vec<f64> = Vec::new();
    let mut count = 0usize;
    for s in series {
        if acc.is_empty() {
            acc = vec![0.0; s.len()];
        }
        assert_eq!(acc.len(), s.len(), "all runs must share the step count");
        for (a, v) in acc.iter_mut().zip(s) {
            *a += v;
        }
        count += 1;
    }
    for a in &mut acc {
        *a /= count.max(1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_first_step_low_selectivity_has_big_overhead() {
        let s = fig2_series(10_000, 0.01, 20, 1);
        assert_eq!(s.len(), 20);
        assert!(s[0] > 0.5, "step 1 @1%: near-full rewrite, got {}", s[0]);
    }

    #[test]
    fn fig2_overhead_decays_toward_zero() {
        for sigma in paper_selectivities() {
            let s = fig2_series_avg(50_000, sigma, 20, 10);
            let early = s[0];
            let late: f64 = s[15..].iter().sum::<f64>() / 5.0;
            assert!(
                late < (0.5 * early).max(0.08),
                "sigma {sigma}: late {late} vs early {early}"
            );
        }
    }

    #[test]
    fn fig3_starts_above_baseline_and_crosses_below() {
        // "the break-even point is already reached after a handful of
        // queries."
        let s = fig3_series_avg(100_000, 0.05, 20, 10);
        assert!(s[0] > SCAN_BASELINE, "first query costs more than a scan");
        let below_at = s.iter().position(|&v| v < SCAN_BASELINE);
        assert!(
            matches!(below_at, Some(i) if i <= 10),
            "break-even within a handful of queries, got {below_at:?} in {s:?}"
        );
        // And it keeps improving.
        assert!(s.last().unwrap() < &s[4]);
    }

    #[test]
    fn fig3_is_monotone_decreasing_after_first_steps() {
        let s = fig3_series_avg(50_000, 0.10, 20, 10);
        for w in s[1..].windows(2) {
            assert!(w[1] <= w[0] + 0.05, "cumulative ratio mostly decays: {w:?}");
        }
    }

    #[test]
    fn sort_series_starts_high_and_amortizes() {
        let s = sort_cumulative_series(100_000, 0.05, 128);
        // First query carries the whole N log N investment: >> 1.
        assert!(s[0] > 10.0);
        // Recovered after about log(N) ≈ 17 queries.
        let recover = s.iter().position(|&v| v < 1.0).unwrap();
        assert!(
            (8..=40).contains(&recover),
            "sort amortizes after ~log N queries, got {recover}"
        );
    }

    #[test]
    fn cracking_beats_sort_for_short_sequences() {
        // "cracking is a viable alternative to sorting ... if the number
        // of queries interested in the attribute is rather low."
        let crack = fig3_series(100_000, 0.05, 10, 11);
        let sort = sort_cumulative_series(100_000, 0.05, 10);
        for i in 0..10 {
            assert!(
                crack[i] < sort[i],
                "step {i}: crack {} vs sort {}",
                crack[i],
                sort[i]
            );
        }
    }

    #[test]
    fn higher_selectivity_lower_relative_overhead_at_step_one() {
        // Figure 2's fan: at step 1 the 80% line sits below the 1% line
        // (selecting most of the table leaves little to relocate).
        let lo = fig2_series(20_000, 0.01, 1, 2)[0];
        let hi = fig2_series(20_000, 0.80, 1, 2)[0];
        assert!(hi < lo, "80% overhead {hi} below 1% overhead {lo}");
    }

    #[test]
    fn series_lengths_match_steps() {
        assert_eq!(fig2_series(100, 0.5, 7, 1).len(), 7);
        assert_eq!(fig3_series(100, 0.5, 7, 1).len(), 7);
        assert_eq!(sort_cumulative_series(100, 0.5, 7).len(), 7);
    }
}
