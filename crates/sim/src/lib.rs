#![warn(missing_docs)]
//! # sim — the §2.2 cost outlook simulation
//!
//! "A small-scale simulation provides the following outlook. Consider a
//! database represented as a vector where the elements denote the granule
//! of interest, i.e. tuples or disk pages. From this vector we draw at
//! random a range with fixed σ and update the cracker index. During each
//! step we only touch the pieces that should be cracked to solve the
//! query."
//!
//! [`granule::GranuleSim`] is that vector-plus-cracker-index model;
//! [`series`] turns it into the exact data series of **Figure 2**
//! (fractional write overhead per step) and **Figure 3** (accumulated
//! read+write cost relative to scanning, with the sort-upfront alternative
//! for comparison).
//!
//! Beyond the paper's built-in uniform RNG streams, the sim replays any
//! `workload::scenario::Scenario` (Zipf endpoints, shifting hot sets,
//! update-heavy mixes): [`GranuleSim::from_scenario`] loads the scenario's
//! base column and [`GranuleSim::run_scenario`] charges its op stream
//! under the same §2.2 cost model.

pub mod granule;
pub mod series;

pub use granule::{GranuleSim, StepCost};
pub use series::{fig2_series, fig3_series, sort_cumulative_series, SCAN_BASELINE};
