//! The granule-vector simulation model.

use cracker_core::{CrackerColumn, RangePred};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use workload::scenario::{Op, Scenario};

/// Cost of one simulation step, in granule units.
///
/// Writes follow the paper's own model: "in a cracker approach we may have
/// to write all tuples to their new location, causing another (1−σ)N
/// writes" — i.e. the non-qualifying granules among those touched are the
/// ones relocated. (The physical swap count of the implementation is
/// tracked separately by `cracker_core::CrackStats` and reported by the
/// engine-level experiments; this module reproduces §2.2's *model*.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepCost {
    /// Granules inspected while cracking border pieces.
    pub reads: u64,
    /// Granules relocated by the crack: `max(0, touched − answer∩touched)`
    /// — the "(1−σ)N writes" investment of §2.2.
    pub writes: u64,
    /// Granules in the answer (σN for a fixed-σ draw).
    pub answer: u64,
}

impl StepCost {
    /// Reads plus writes.
    pub fn io(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A database as a vector of granules, cracked by uniformly random
/// fixed-selectivity range queries.
#[derive(Debug)]
pub struct GranuleSim {
    column: CrackerColumn<i64>,
    n: usize,
    sigma: f64,
    rng: SmallRng,
    /// Separate stream for volatility updates, so enabling them leaves the
    /// query sequence drawn from `rng` untouched — quiet and volatile runs
    /// with the same seed face identical queries and the measured delta
    /// isolates the update overhead.
    update_rng: SmallRng,
    steps_taken: usize,
    /// Updates applied between steps (insert+delete pairs, keeping the
    /// granule count stable) — the "database volatility" §2.2 names as a
    /// decisive factor.
    volatility: usize,
    next_oid: u32,
}

impl GranuleSim {
    /// A vector of `n` granules; queries select a uniformly placed window
    /// of `⌈σ·n⌉` granules.
    ///
    /// The granule values are `0..n` in random order — the simulation
    /// draws *value* ranges, and the initial physical order is irrelevant
    /// to the cost model (cracking costs depend only on piece sizes).
    pub fn new(n: usize, sigma: f64, seed: u64) -> Self {
        assert!(n >= 1, "at least one granule");
        assert!((0.0..=1.0).contains(&sigma), "selectivity in [0,1]");
        let mut rng = SmallRng::seed_from_u64(seed);
        // Random initial physical order via an in-place Fisher-Yates.
        let mut vals: Vec<i64> = (0..n as i64).collect();
        for i in (1..vals.len()).rev() {
            let j = rng.gen_range(0..=i);
            vals.swap(i, j);
        }
        GranuleSim {
            column: CrackerColumn::new(vals),
            n,
            sigma,
            rng,
            update_rng: SmallRng::seed_from_u64(seed ^ 0x5EED_FACE_CAFE_F00D),
            steps_taken: 0,
            volatility: 0,
            next_oid: n as u32,
        }
    }

    /// Enable volatility: before every step, `updates` granules are
    /// replaced (one delete plus one insert each, so the granule count
    /// stays `n`). "The actual performance impact of this continual
    /// database reorganization strongly depends on the database
    /// volatility and query sequence" (§2.2) — this knob makes that
    /// dependency measurable.
    pub fn with_volatility(mut self, updates: usize) -> Self {
        self.volatility = updates;
        self
    }

    /// Number of granules.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Steps simulated so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Pieces currently administered by the cracker index.
    pub fn piece_count(&self) -> usize {
        self.column.piece_count()
    }

    /// Crack one explicit value window and charge it under the §2.2 model.
    fn crack_window(&mut self, pred: RangePred<i64>) -> StepCost {
        let before = *self.column.stats();
        let sel = self.column.select(pred);
        let delta = self.column.stats().delta_since(&before);
        self.steps_taken += 1;
        let touched = delta.tuples_touched + delta.edge_scanned;
        // §2.2 write model: of the touched granules, the qualifying ones
        // are delivered as the answer; the rest are written to their new
        // location. The answer may partly lie in already-cracked pieces,
        // so the overlap with the touched region bounds the discount.
        let answer = sel.count() as u64;
        StepCost {
            reads: touched,
            writes: touched.saturating_sub(answer),
            answer,
        }
    }

    /// Draw one uniformly random window of width `⌈σ·n⌉` and crack it.
    pub fn step(&mut self) -> StepCost {
        for _ in 0..self.volatility {
            // Replace a random live granule with a fresh random value.
            let victims: &[u32] = self.column.oids();
            if !victims.is_empty() {
                let idx = self.update_rng.gen_range(0..victims.len());
                let victim = victims[idx];
                self.column.delete(victim);
            }
            let v = self.update_rng.gen_range(0..self.n as i64);
            self.column.insert(self.next_oid, v);
            self.next_oid += 1;
        }
        let width = ((self.sigma * self.n as f64).ceil() as i64).clamp(1, self.n as i64);
        let lo = self.rng.gen_range(0..=(self.n as i64 - width));
        self.crack_window(RangePred::half_open(lo, lo + width))
    }

    /// Run `k` steps, collecting per-step costs.
    pub fn run(&mut self, k: usize) -> Vec<StepCost> {
        (0..k).map(|_| self.step()).collect()
    }

    /// Build the simulation over a scenario's base column instead of the
    /// built-in shuffled `0..n` vector: the granule vector is the
    /// scenario's data, and the query/update streams come from the
    /// scenario's ops ([`Self::apply`] / [`Self::run_scenario`]) rather
    /// than this sim's own RNGs. `seed` only feeds the legacy
    /// [`Self::step`] / volatility streams, should the caller mix modes.
    pub fn from_scenario<S: Scenario + ?Sized>(scenario: &S, seed: u64) -> Self {
        let vals = scenario.base().to_vec();
        let n = vals.len();
        assert!(n >= 1, "scenario base column must be non-empty");
        GranuleSim {
            column: CrackerColumn::new(vals),
            n,
            sigma: 0.0,
            rng: SmallRng::seed_from_u64(seed),
            update_rng: SmallRng::seed_from_u64(seed ^ 0x5EED_FACE_CAFE_F00D),
            steps_taken: 0,
            volatility: 0,
            next_oid: n as u32,
        }
    }

    /// Apply one scenario op. Selects are charged under the §2.2 cost
    /// model exactly like [`Self::step`]; inserts and deletes are staged
    /// in O(1) granule traffic (one write into the staging area — the
    /// relocation cost surfaces later, in the selects that crack through
    /// the merged tuples), so they report `writes: 1`.
    pub fn apply(&mut self, op: &Op) -> StepCost {
        match *op {
            Op::Select(w) => self.crack_window(RangePred::half_open(w.lo, w.hi)),
            Op::Insert { oid, value } => {
                self.column.insert(oid, value);
                self.next_oid = self.next_oid.max(oid + 1);
                StepCost {
                    reads: 0,
                    writes: 1,
                    answer: 0,
                }
            }
            Op::Delete { oid } => {
                self.column.delete(oid);
                StepCost {
                    reads: 0,
                    writes: 1,
                    answer: 0,
                }
            }
        }
    }

    /// Drive an entire op stream (any [`Scenario`], or a replayed `Vec`
    /// of ops), collecting one [`StepCost`] per op in order.
    pub fn run_scenario<I: Iterator<Item = Op>>(&mut self, ops: I) -> Vec<StepCost> {
        ops.map(|op| self.apply(&op)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_rewrites_most_of_the_database() {
        // "Selecting a few tuples (1%) in the first step generates a
        // sizable overhead, because the database is effectively completely
        // rewritten."
        let mut sim = GranuleSim::new(10_000, 0.01, 7);
        let c = sim.step();
        assert_eq!(c.reads, 10_000, "virgin vector: everything touched");
        assert!(
            c.writes > 5_000,
            "most granules relocate on the first crack, got {}",
            c.writes
        );
        assert_eq!(c.answer, 100);
    }

    #[test]
    fn overhead_dwindles_with_steps() {
        // §2.2: "the writing overhead due to cracking has dwindled" as the
        // sequence progresses. Averaged over seeds (single streams are
        // noisy), the late-phase overhead must sit far below the opening
        // investment and approach the answer-size order of magnitude.
        let mut first_sum = 0.0;
        let mut late_sum = 0.0;
        let mut answer = 0;
        for seed in 0..10 {
            let mut sim = GranuleSim::new(100_000, 0.05, seed);
            let costs = sim.run(20);
            answer = costs[0].answer;
            first_sum += costs[0].writes as f64;
            late_sum += costs[12..].iter().map(|c| c.writes as f64).sum::<f64>() / 8.0;
        }
        let first = first_sum / 10.0;
        let late = late_sum / 10.0;
        assert!(
            late < first / 4.0,
            "late write overhead {late} far below first-step {first}"
        );
        assert!(
            late < 3.0 * answer as f64,
            "late overhead {late} within the answer-size order ({answer})"
        );
    }

    #[test]
    fn volatility_keeps_count_stable_and_raises_overhead() {
        let quiet: u64 = GranuleSim::new(20_000, 0.05, 5)
            .run(30)
            .iter()
            .skip(10)
            .map(|c| c.io())
            .sum();
        // 10% of the store churning per step: the update stream is drawn
        // from a dedicated RNG, so both runs face the identical query
        // sequence and the delta isolates the update overhead.
        let mut volatile_sim = GranuleSim::new(20_000, 0.05, 5).with_volatility(2_000);
        let volatile: u64 = volatile_sim.run(30).iter().skip(10).map(|c| c.io()).sum();
        assert!(
            volatile > quiet + quiet / 20,
            "updates degrade the cracked structure: {volatile} !> {quiet} + 5%"
        );
        assert_eq!(volatile_sim.n(), 20_000);
    }

    #[test]
    fn answer_size_is_sigma_n() {
        let mut sim = GranuleSim::new(5000, 0.2, 1);
        for c in sim.run(10) {
            assert_eq!(c.answer, 1000);
        }
    }

    #[test]
    fn piece_count_grows_then_saturates() {
        let mut sim = GranuleSim::new(1000, 0.1, 2);
        sim.run(5);
        let p5 = sim.piece_count();
        sim.run(45);
        let p50 = sim.piece_count();
        assert!(p5 > 1);
        assert!(p50 >= p5);
        // Each double-sided query adds at most two boundaries.
        assert!(p50 <= 1 + 2 * 50);
        assert_eq!(sim.steps_taken(), 50);
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<_> = GranuleSim::new(2000, 0.1, 9).run(10);
        let b: Vec<_> = GranuleSim::new(2000, 0.1, 9).run(10);
        assert_eq!(a, b);
    }

    #[test]
    fn io_accessor() {
        let c = StepCost {
            reads: 10,
            writes: 5,
            answer: 3,
        };
        assert_eq!(c.io(), 15);
    }

    #[test]
    fn scenario_replay_is_deterministic_and_costs_every_op() {
        use workload::scenario::{Shift, ShiftingHotSet};
        let run = |seed| {
            let mut s = ShiftingHotSet::new(5_000, 48, 8, Shift::Jump, seed);
            let mut sim = GranuleSim::from_scenario(&s, 0);
            let costs = sim.run_scenario(&mut s);
            (costs, sim.piece_count(), sim.steps_taken())
        };
        let (a, pieces, steps) = run(3);
        let (b, _, _) = run(3);
        assert_eq!(a, b, "same seed, same cost series");
        assert_eq!(a.len(), 48, "one StepCost per op");
        assert_eq!(steps, 48, "every select counted as a step");
        assert!(pieces > 1, "the scenario physically cracked the store");
        // Shifted hot sets keep paying: the first query of a fresh epoch
        // touches more than a settled one, so reads never flatline to the
        // pure-homerun tail; still, everything after step 0 is below the
        // full-touch opening.
        assert_eq!(a[0].reads, 5_000);
        assert!(a[1..].iter().all(|c| c.reads < 5_000));
    }

    #[test]
    fn scenario_updates_charge_single_granule_writes() {
        use workload::scenario::Op;
        use workload::Window;
        let mut sim = GranuleSim::new(1_000, 0.1, 7);
        let ins = sim.apply(&Op::Insert {
            oid: 1_000,
            value: 12,
        });
        assert_eq!((ins.reads, ins.writes, ins.answer), (0, 1, 0));
        let del = sim.apply(&Op::Delete { oid: 1_000 });
        assert_eq!((del.reads, del.writes, del.answer), (0, 1, 0));
        // The staged pair cancels out: a full-domain select sees n tuples.
        let sel = sim.apply(&Op::Select(Window::new(0, 1_000)));
        assert_eq!(sel.answer, 1_000);
    }

    #[test]
    fn update_heavy_scenario_raises_io_over_its_quiet_twin() {
        use workload::scenario::{Op, UpdateHeavy};
        use workload::Mqs;
        // The same select stream with updates stripped must be cheaper to
        // replay than the full update-heavy mix — the §2.2 "database
        // volatility" effect, now driven by a scenario instead of the
        // built-in volatility knob.
        let mqs = Mqs::paper_default(20_000, 40, 0.05);
        let mut heavy = UpdateHeavy::new(mqs, 25.0, 25, 5);
        let mut sim = GranuleSim::from_scenario(&heavy, 0);
        let ops: Vec<Op> = heavy.by_ref().collect();
        let noisy: u64 = sim
            .run_scenario(ops.iter().copied())
            .iter()
            .map(|c| c.io())
            .sum();
        let mut quiet_sim = GranuleSim::from_scenario(&heavy, 0);
        let quiet: u64 = quiet_sim
            .run_scenario(ops.iter().copied().filter(|o| matches!(o, Op::Select(_))))
            .iter()
            .map(|c| c.io())
            .sum();
        assert!(
            noisy > quiet,
            "updates degrade the cracked structure: {noisy} !> {quiet}"
        );
    }

    #[test]
    fn sigma_one_touches_once_then_free() {
        let mut sim = GranuleSim::new(1000, 1.0, 4);
        let first = sim.step();
        assert_eq!(first.answer, 1000);
        let second = sim.step();
        assert_eq!(second.reads, 0, "full-range repeat costs nothing");
    }
}
