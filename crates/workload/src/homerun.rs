//! The homerun user profile.
//!
//! "The homerun user profile illustrates a user zooming into a specific
//! subset of σN tuples, using a multi-step query refinement process. It
//! represents a hypothetical user, who is able to consistently improve his
//! query with each step taken, such that he reaches his final destination
//! in precisely k steps. ... The homerun models a sequence of range
//! refinements and a monotonously reducing answer set" (§4).
//!
//! Generation: pick a random target window of width `σN`, then emit `k`
//! windows whose widths follow `ρ(i, k, σ)`, each *containing* the target
//! and *contained in* its predecessor — the nesting is what "answers to
//! previous queries help to speedup processing" relies on: every query's
//! bounds fall inside the piece cracked by the previous one.

use crate::distribution::Contraction;
use crate::Window;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate a homerun sequence of `k` nested windows over the domain
/// `1..=n`, converging on a random target window of width `⌈σ·n⌉`.
pub fn homerun_sequence(
    n: usize,
    k: usize,
    sigma: f64,
    contraction: Contraction,
    seed: u64,
) -> Vec<Window> {
    assert!(n >= 1, "domain must be non-empty");
    assert!(k >= 1, "at least one step");
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_i = n as i64;
    let target_w = ((sigma * n as f64).ceil() as i64).clamp(1, n_i);
    let target_lo = rng.gen_range(1..=(n_i - target_w + 1));
    let target = Window::new(target_lo, target_lo + target_w);

    let mut out = Vec::with_capacity(k);
    let mut prev = Window::new(1, n_i + 1);
    for (idx, rho) in contraction.series(k, sigma).into_iter().enumerate() {
        let width = ((rho * n as f64).ceil() as i64).clamp(target_w, n_i);
        // Place a window of `width` containing `target`, inside `prev`.
        let lo_min = prev.lo.max(target.hi - width);
        let lo_max = (prev.hi - width).min(target.lo);
        let lo = if lo_min >= lo_max {
            lo_min.min(lo_max)
        } else {
            rng.gen_range(lo_min..=lo_max)
        };
        let w = Window::new(lo, lo + width);
        debug_assert!(
            prev.contains(&w) && w.contains(&target),
            "step {idx}: nesting violated"
        );
        out.push(w);
        prev = w;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sequence_is_nested_and_hits_target_width() {
        let seq = homerun_sequence(10_000, 20, 0.05, Contraction::Linear, 7);
        assert_eq!(seq.len(), 20);
        for w in seq.windows(2) {
            assert!(w[0].contains(&w[1]), "monotonously reducing answer sets");
        }
        let last = seq.last().unwrap();
        assert_eq!(last.width(), 500, "final step is exactly the target set");
    }

    #[test]
    fn widths_follow_the_contraction_series() {
        let n = 100_000;
        let k = 10;
        let seq = homerun_sequence(n, k, 0.2, Contraction::Exponential, 3);
        let series = Contraction::Exponential.series(k, 0.2);
        for (w, rho) in seq.iter().zip(series) {
            let expected = (rho * n as f64).ceil();
            assert!(
                (w.width() as f64 - expected).abs() <= 1.0,
                "width {} vs rho*N {}",
                w.width(),
                expected
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = homerun_sequence(1000, 8, 0.1, Contraction::Linear, 42);
        let b = homerun_sequence(1000, 8, 0.1, Contraction::Linear, 42);
        assert_eq!(a, b);
        let c = homerun_sequence(1000, 8, 0.1, Contraction::Linear, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn all_windows_stay_in_domain() {
        let seq = homerun_sequence(500, 30, 0.01, Contraction::Logarithmic, 5);
        for w in &seq {
            assert!(w.lo >= 1);
            assert!(w.hi <= 501);
            assert!(w.width() >= 1);
        }
    }

    #[test]
    fn single_step_sequence_is_the_target() {
        let seq = homerun_sequence(100, 1, 0.25, Contraction::Linear, 1);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].width(), 25);
    }

    #[test]
    fn sigma_one_selects_everything_each_step() {
        let seq = homerun_sequence(100, 5, 1.0, Contraction::Linear, 1);
        for w in &seq {
            assert_eq!(w.width(), 100);
        }
    }

    proptest! {
        #[test]
        fn prop_nesting_and_domain_hold(
            n in 10usize..5000,
            k in 1usize..40,
            sigma in 0.001f64..1.0,
            seed in 0u64..1000,
        ) {
            for c in Contraction::all() {
                let seq = homerun_sequence(n, k, sigma, c, seed);
                prop_assert_eq!(seq.len(), k);
                let mut prev = Window::new(1, n as i64 + 1);
                for w in &seq {
                    prop_assert!(prev.contains(w), "{c:?}: nesting");
                    prop_assert!(w.width() >= 1);
                    prev = *w;
                }
            }
        }
    }
}
