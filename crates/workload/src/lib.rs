#![warn(missing_docs)]
//! # workload — the multi-query benchmark kit of §4
//!
//! "For studying database crackers, we step away from application
//! specifics and use a generic, re-usable framework. The space of
//! multi-query sequences is organized around a few dimensions based on
//! idealistic user behavior."
//!
//! * [`tapestry`] — the **DBtapestry** generator: tables of `N` rows and
//!   `α` columns where every column is a permutation of `1..N`, built by
//!   replicating a small seed permutation and shuffling (§4, *Multi-Query
//!   Sequences*);
//! * [`distribution`] — the selectivity distribution functions
//!   `ρ(i, k, σ)`: linear, exponential and logarithmic contraction
//!   (Figure 8);
//! * [`homerun`] — the zooming user: nested range refinements reaching the
//!   target set in exactly `k` steps;
//! * [`hiking`] — the drifting user: fixed-selectivity windows whose
//!   overlap with the predecessor grows to 100%;
//! * [`strolling`] — the clueless user: random walks whose selectivities
//!   are drawn from (or scheduled by) the distribution function;
//! * [`sequential`] — the adversarial patterns (sequential sweeps, zooms)
//!   that defeat plain cracking, used by the robustness experiments;
//! * [`mqs`] — the sequence-space descriptor
//!   `MQS(α, N, k, σ, ρ, δ)` (Definition, §4) tying it all together;
//! * [`scenario`] — the **scenario engine** for workloads whose structure
//!   *moves*: a [`scenario::Scenario`] is a seeded iterator of
//!   [`scenario::Op`] steps (`Select` / `Insert` / `Delete`) over a base
//!   column it also generates, with concrete implementations for
//!   Zipf-skewed query endpoints ([`scenario::ZipfQueries`]), a relocating
//!   hot set ([`scenario::ShiftingHotSet`]) and update-heavy MQS mixes
//!   ([`scenario::UpdateHeavy`]), plus the sorted-vector differential
//!   oracle ([`scenario::SortedOracle`]) and a runner
//!   ([`scenario::ScenarioRunner`]) that replays any scenario against any
//!   executor — optionally in lock-step with the oracle, comparing full
//!   result sets after every step.
//!
//! Everything is deterministic under an explicit RNG seed, so every figure
//! in EXPERIMENTS.md is exactly reproducible. Scenarios extend that into a
//! **seeding contract**: every stream they consume (base data, endpoints,
//! widths, update values, delete victims) is derived from the constructor
//! seed through fixed salts, so rebuilding a scenario with the same
//! parameters replays a bit-identical base column and op stream — that is
//! how one workload is replayed against many executors (single-lock,
//! sharded, engine-level) and the oracle.

pub mod distribution;
pub mod hiking;
pub mod homerun;
pub mod mqs;
pub mod scenario;
pub mod sequential;
pub mod skew;
pub mod strolling;
pub mod tapestry;

pub use distribution::Contraction;
pub use mqs::{Mqs, Profile};
pub use scenario::{
    Op, RunReport, Scenario, ScenarioExecutor, ScenarioRunner, Shift, ShiftingHotSet, SortedOracle,
    UpdateHeavy, ZipfQueries,
};
pub use sequential::{adversarial_sequence, Adversary};
pub use tapestry::Tapestry;

use cracker_core::RangePred;

/// One generated range query: the half-open window `[lo, hi)` over the
/// value domain `1..=N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Exclusive upper bound.
    pub hi: i64,
}

impl Window {
    /// Construct (normalizing an inverted pair).
    pub fn new(lo: i64, hi: i64) -> Self {
        if lo <= hi {
            Window { lo, hi }
        } else {
            Window { lo: hi, hi: lo }
        }
    }

    /// Number of domain values covered.
    pub fn width(&self) -> i64 {
        self.hi - self.lo
    }

    /// The equivalent range predicate.
    pub fn to_pred(self) -> RangePred<i64> {
        RangePred::half_open(self.lo, self.hi)
    }

    /// Does this window fully contain `other`?
    pub fn contains(&self, other: &Window) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Width of the intersection with `other`.
    pub fn overlap(&self, other: &Window) -> i64 {
        (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_normalizes_and_measures() {
        let w = Window::new(10, 3);
        assert_eq!(w.lo, 3);
        assert_eq!(w.hi, 10);
        assert_eq!(w.width(), 7);
    }

    #[test]
    fn window_containment_and_overlap() {
        let outer = Window::new(0, 100);
        let inner = Window::new(20, 30);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert_eq!(outer.overlap(&inner), 10);
        assert_eq!(Window::new(0, 10).overlap(&Window::new(10, 20)), 0);
        assert_eq!(Window::new(0, 10).overlap(&Window::new(5, 15)), 5);
    }

    #[test]
    fn window_to_pred_is_half_open() {
        let p = Window::new(5, 8).to_pred();
        assert!(p.matches(5));
        assert!(p.matches(7));
        assert!(!p.matches(8));
    }
}
