//! The scenario engine: skewed, shifting, and update-heavy workloads.
//!
//! The MQS kit of §4 ([`crate::mqs`]) captures *benign* users — zooming,
//! drifting, strolling. The cracker's argument, however, is that it adapts
//! to *whatever* sequence arrives, and its failure modes only surface when
//! the workload's structure actually moves. This module is the kit for
//! those moving workloads:
//!
//! * [`ZipfQueries`] — query endpoints drawn with the same Zipf skew as
//!   the data ([`crate::skew::zipf_column`]), so the hot head of the
//!   domain is both dense and hammered;
//! * [`ShiftingHotSet`] — all queries land inside a hot window that
//!   relocates every `period` queries, either drifting by a fixed step or
//!   jumping to a random location ([`Shift`]);
//! * [`UpdateHeavy`] — an MQS profile's select sequence interleaved with
//!   insert/delete bursts at a configurable updates-per-select ratio,
//!   stressing `cracker_core::updates` staging and merging.
//!
//! A scenario is a **seeded iterator of [`Op`] steps** over a base column
//! it also generates ([`Scenario::base`]). The seeding contract: every
//! stream a scenario consumes (data, endpoints, widths, update values,
//! victims) is derived from the constructor `seed` through fixed salts, so
//! two scenarios built with identical parameters emit bit-identical base
//! columns *and* op streams — rebuilding a scenario is how a harness
//! replays "the same" workload against many executors.
//!
//! Correctness under these adversarial mixes is the real risk, so the
//! differential oracle is part of the kit, not an afterthought:
//! [`SortedOracle`] is a sorted-vector reference store, and
//! [`ScenarioRunner::run_differential`] replays any scenario against any
//! [`ScenarioExecutor`] *and* the oracle in lock-step, comparing the full
//! result set (not just counts) after every step.

use std::collections::{HashMap, VecDeque};

use cracker_core::{ConcurrentColumn, CrackerColumn, ShardedCrackerColumn, SharedCrackerColumn};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::skew;
use crate::tapestry::Tapestry;
use crate::{Mqs, Window};

/// Salt separating a scenario's query-endpoint stream from its data seed.
const ENDPOINT_SALT: u64 = 0x5CEA_0001_D00D_BEEF;
/// Salt separating the width/placement jitter stream from the data seed.
const JITTER_SALT: u64 = 0x5CEA_0002_CAFE_F00D;
/// Salt separating the update stream (values, victims) from the data seed.
const UPDATE_SALT: u64 = 0x5CEA_0003_FEED_5EED;
/// Salt separating a chaos schedule's action stream from its seed.
const CHAOS_SALT: u64 = 0x5CEA_0004_BAD5_EED5;

/// One step of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Answer a range query over the value domain.
    Select(Window),
    /// Insert a fresh tuple. OIDs are allocated by the scenario, strictly
    /// above the base column's positions, and never reused.
    Insert {
        /// The new tuple's OID.
        oid: u32,
        /// The new tuple's value.
        value: i64,
    },
    /// Delete a live tuple (from the base column or a previous insert).
    Delete {
        /// The victim OID; the scenario only names OIDs it knows live.
        oid: u32,
    },
}

/// A seeded workload: a base column plus an iterator of [`Op`] steps.
///
/// Implementations are deterministic: reconstructing a scenario with the
/// same parameters and seed yields the same [`Scenario::base`] column and
/// the same op stream, which is how runners replay one workload against
/// several executors.
pub trait Scenario: Iterator<Item = Op> {
    /// Stable, human-readable identifier for reports.
    fn name(&self) -> String;

    /// The base column the scenario plays over. Executors must be loaded
    /// with exactly this column (OID `i` = position `i`) before replay.
    fn base(&self) -> &[i64];
}

// ---------------------------------------------------------------------------
// ZipfQueries
// ---------------------------------------------------------------------------

/// Skewed query endpoints over Zipf-skewed data: both the column and the
/// window origins are drawn `∝ 1/v^s`, so the dense head of the domain
/// receives nearly all queries — the regime where a cracker's pieces pile
/// up in one region.
#[derive(Debug)]
pub struct ZipfQueries {
    data: Vec<i64>,
    endpoints: Vec<i64>,
    next: usize,
    jitter: SmallRng,
    max_width: i64,
    name: String,
}

impl ZipfQueries {
    /// `n` data values over `1..=domain` with exponent `s`, and `k`
    /// queries whose origins follow the same skew. Window widths jitter
    /// uniformly in `1..=max(domain/64, 1)` (see [`Self::with_max_width`]).
    pub fn new(n: usize, domain: usize, s: f64, k: usize, seed: u64) -> Self {
        ZipfQueries {
            data: skew::zipf_column(n, domain, s, seed),
            endpoints: skew::zipf_column(k, domain, s, seed ^ ENDPOINT_SALT),
            next: 0,
            jitter: SmallRng::seed_from_u64(seed ^ JITTER_SALT),
            max_width: (domain as i64 / 64).max(1),
            name: format!("zipf(n={n},domain={domain},s={s},k={k})"),
        }
    }

    /// Override the maximum query-window width (clamped to ≥ 1).
    pub fn with_max_width(mut self, max_width: i64) -> Self {
        self.max_width = max_width.max(1);
        self
    }
}

impl Iterator for ZipfQueries {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let lo = *self.endpoints.get(self.next)?;
        self.next += 1;
        let width = self.jitter.gen_range(1..=self.max_width);
        Some(Op::Select(Window::new(lo, lo + width)))
    }
}

impl Scenario for ZipfQueries {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn base(&self) -> &[i64] {
        &self.data
    }
}

// ---------------------------------------------------------------------------
// ShiftingHotSet
// ---------------------------------------------------------------------------

/// How the hot window relocates when its period expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shift {
    /// The window slides by a fixed `step`, wrapping around the domain —
    /// the cracker can partially reuse boundaries from the previous
    /// position.
    Drift {
        /// Domain values the hot window advances per relocation.
        step: i64,
    },
    /// The window jumps to a uniformly random location — every relocation
    /// lands on cold, coarsely cracked territory.
    Jump,
}

/// A hot set of the domain receives every query; the hot set relocates
/// every `period` queries. The base column is a permutation of `1..=n`
/// (a one-column tapestry), so answers are exactly window-width until
/// updates enter the picture.
#[derive(Debug)]
pub struct ShiftingHotSet {
    data: Vec<i64>,
    rng: SmallRng,
    n: i64,
    hot_lo: i64,
    hot_width: i64,
    query_width: i64,
    period: usize,
    shift: Shift,
    issued: usize,
    k: usize,
    name: String,
}

impl ShiftingHotSet {
    /// `k` queries over a permutation of `1..=n`; the hot window (default
    /// width `n/20`) relocates every `period` queries per `shift`; each
    /// query is a window of width `n/200` (default) placed uniformly
    /// inside the current hot set.
    pub fn new(n: usize, k: usize, period: usize, shift: Shift, seed: u64) -> Self {
        assert!(n >= 64, "domain too small for a hot set");
        assert!(period >= 1, "period must be at least 1");
        let hot_width = (n as i64 / 20).max(8);
        let query_width = (n as i64 / 200).max(2);
        let mut rng = SmallRng::seed_from_u64(seed ^ JITTER_SALT);
        let hot_lo = rng.gen_range(1..=(n as i64 - hot_width + 1));
        let shift_name = match shift {
            Shift::Drift { step } => format!("drift:{step}"),
            Shift::Jump => "jump".to_string(),
        };
        ShiftingHotSet {
            data: Tapestry::generate(n, 1, seed).column(0).to_vec(),
            rng,
            n: n as i64,
            hot_lo,
            hot_width,
            query_width,
            period,
            shift,
            issued: 0,
            k,
            name: format!("shifting(n={n},k={k},period={period},shift={shift_name})"),
        }
    }

    /// Override the hot-set and per-query window widths (both clamped so
    /// the query window fits inside the hot set inside the domain).
    pub fn with_widths(mut self, hot_width: i64, query_width: i64) -> Self {
        self.hot_width = hot_width.clamp(2, self.n);
        self.query_width = query_width.clamp(1, self.hot_width - 1);
        self.hot_lo = self.hot_lo.min(self.n - self.hot_width + 1);
        self
    }

    /// The hot window currently receiving all queries.
    pub fn hot_window(&self) -> Window {
        Window::new(self.hot_lo, self.hot_lo + self.hot_width)
    }

    fn relocate(&mut self) {
        let span = self.n - self.hot_width + 1;
        self.hot_lo = match self.shift {
            Shift::Drift { step } => (self.hot_lo - 1 + step).rem_euclid(span) + 1,
            Shift::Jump => self.rng.gen_range(1..=span),
        };
    }
}

impl Iterator for ShiftingHotSet {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.issued >= self.k {
            return None;
        }
        if self.issued > 0 && self.issued.is_multiple_of(self.period) {
            self.relocate();
        }
        self.issued += 1;
        let lo = self
            .rng
            .gen_range(self.hot_lo..=(self.hot_lo + self.hot_width - self.query_width));
        Some(Op::Select(Window::new(lo, lo + self.query_width)))
    }
}

impl Scenario for ShiftingHotSet {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn base(&self) -> &[i64] {
        &self.data
    }
}

// ---------------------------------------------------------------------------
// UpdateHeavy
// ---------------------------------------------------------------------------

/// An MQS profile's select sequence interleaved with insert/delete bursts.
///
/// Before each select the scenario accrues `ratio` owed updates; whenever
/// the debt reaches `burst`, a burst of that many updates is emitted
/// (inserts of fresh values and deletes of random live OIDs, chosen with
/// equal probability while tuples remain). `ratio = 4.0` with `burst = 8`
/// means a burst of eight updates every other select.
#[derive(Debug)]
pub struct UpdateHeavy {
    data: Vec<i64>,
    selects: Vec<Window>,
    sel_idx: usize,
    rng: SmallRng,
    ratio: f64,
    burst: usize,
    owed: f64,
    live: Vec<u32>,
    next_oid: u32,
    domain: i64,
    queue: VecDeque<Op>,
    name: String,
}

impl UpdateHeavy {
    /// Interleave the select sequence of `mqs` (data and windows both
    /// derived from `seed`) with `ratio` updates per select, grouped into
    /// bursts of `burst` (clamped to ≥ 1).
    pub fn new(mqs: Mqs, ratio: f64, burst: usize, seed: u64) -> Self {
        assert!(ratio >= 0.0, "ratio must be non-negative");
        let data = mqs.table(seed).column(0).to_vec();
        let n = data.len();
        UpdateHeavy {
            data,
            selects: mqs.sequence(seed),
            sel_idx: 0,
            rng: SmallRng::seed_from_u64(seed ^ UPDATE_SALT),
            ratio,
            burst: burst.max(1),
            owed: 0.0,
            live: (0..n as u32).collect(),
            next_oid: n as u32,
            domain: n as i64,
            queue: VecDeque::new(),
            name: format!(
                "update_heavy({},ratio={ratio},burst={})",
                mqs.describe(),
                burst.max(1)
            ),
        }
    }

    fn gen_update(&mut self) -> Op {
        if self.live.is_empty() || self.rng.gen_range(0..2) == 0 {
            let oid = self.next_oid;
            self.next_oid += 1;
            self.live.push(oid);
            Op::Insert {
                oid,
                value: self.rng.gen_range(1..=self.domain),
            }
        } else {
            let idx = self.rng.gen_range(0..self.live.len());
            Op::Delete {
                oid: self.live.swap_remove(idx),
            }
        }
    }
}

impl Iterator for UpdateHeavy {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if let Some(op) = self.queue.pop_front() {
            return Some(op);
        }
        let w = *self.selects.get(self.sel_idx)?;
        self.sel_idx += 1;
        self.owed += self.ratio;
        while self.owed >= self.burst as f64 {
            self.owed -= self.burst as f64;
            for _ in 0..self.burst {
                let u = self.gen_update();
                self.queue.push_back(u);
            }
        }
        self.queue.push_back(Op::Select(w));
        self.queue.pop_front()
    }
}

impl Scenario for UpdateHeavy {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn base(&self) -> &[i64] {
        &self.data
    }
}

// ---------------------------------------------------------------------------
// The differential oracle
// ---------------------------------------------------------------------------

/// The reference store of the differential harness: a `(value, OID)`
/// vector kept sorted, answering range selects by binary search and
/// applying updates eagerly. Trivially correct, so any executor that
/// disagrees with it after any step is wrong.
#[derive(Debug, Clone)]
pub struct SortedOracle {
    /// Sorted by `(value, oid)`.
    pairs: Vec<(i64, u32)>,
    /// Live OID → value, so a delete locates its pair by binary search
    /// instead of scanning (the `Vec::remove` shift still costs O(n)).
    by_oid: HashMap<u32, i64>,
}

impl SortedOracle {
    /// Load the oracle with a base column (OID `i` = position `i`).
    pub fn new(base: &[i64]) -> Self {
        let mut pairs: Vec<(i64, u32)> = base
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        pairs.sort_unstable();
        let by_oid = base
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u32, v))
            .collect();
        SortedOracle { pairs, by_oid }
    }

    /// Live tuple count.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no tuples are live.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The OIDs qualifying under `w`, ascending.
    pub fn select_oids(&self, w: Window) -> Vec<u32> {
        let start = self.pairs.partition_point(|&(v, _)| v < w.lo);
        let end = self.pairs.partition_point(|&(v, _)| v < w.hi);
        let mut oids: Vec<u32> = self.pairs[start..end].iter().map(|&(_, o)| o).collect();
        oids.sort_unstable();
        oids
    }

    /// Number of tuples qualifying under `w`.
    pub fn count(&self, w: Window) -> usize {
        let start = self.pairs.partition_point(|&(v, _)| v < w.lo);
        let end = self.pairs.partition_point(|&(v, _)| v < w.hi);
        end - start
    }

    /// Insert `(oid, value)` at its sorted position.
    pub fn insert(&mut self, oid: u32, value: i64) {
        debug_assert!(
            !self.by_oid.contains_key(&oid),
            "scenarios never reuse OIDs"
        );
        let at = self.pairs.partition_point(|&p| p < (value, oid));
        self.pairs.insert(at, (value, oid));
        self.by_oid.insert(oid, value);
    }

    /// Delete `oid`, returning whether it was live.
    pub fn delete(&mut self, oid: u32) -> bool {
        let Some(value) = self.by_oid.remove(&oid) else {
            return false;
        };
        let at = self.pairs.partition_point(|&p| p < (value, oid));
        debug_assert_eq!(self.pairs.get(at), Some(&(value, oid)));
        self.pairs.remove(at);
        true
    }
}

// ---------------------------------------------------------------------------
// Executors and the runner
// ---------------------------------------------------------------------------

/// Anything that can replay a scenario: answer range selects with the
/// qualifying OID set and apply staged updates. Implementations exist for
/// every cracker column flavour and for [`SortedOracle`] itself; the
/// engine crate adds engine-level runners on top.
///
/// `run_select` may return OIDs in any order — the runner canonicalizes
/// before comparing.
pub trait ScenarioExecutor {
    /// Executor label for mismatch reports.
    fn label(&self) -> String;

    /// The OIDs qualifying under `w` (any order).
    fn run_select(&mut self, w: Window) -> Vec<u32>;

    /// Apply an insert.
    fn run_insert(&mut self, oid: u32, value: i64);

    /// Apply a delete, returning whether the OID was found.
    fn run_delete(&mut self, oid: u32) -> bool;
}

impl ScenarioExecutor for SortedOracle {
    fn label(&self) -> String {
        "sorted-oracle".to_string()
    }

    fn run_select(&mut self, w: Window) -> Vec<u32> {
        self.select_oids(w)
    }

    fn run_insert(&mut self, oid: u32, value: i64) {
        self.insert(oid, value);
    }

    fn run_delete(&mut self, oid: u32) -> bool {
        self.delete(oid)
    }
}

impl ScenarioExecutor for CrackerColumn<i64> {
    fn label(&self) -> String {
        "cracker-column".to_string()
    }

    fn run_select(&mut self, w: Window) -> Vec<u32> {
        self.select_oids(w.to_pred())
    }

    fn run_insert(&mut self, oid: u32, value: i64) {
        self.insert(oid, value);
    }

    fn run_delete(&mut self, oid: u32) -> bool {
        self.delete(oid)
    }
}

impl ScenarioExecutor for SharedCrackerColumn<i64> {
    fn label(&self) -> String {
        "shared-single-lock".to_string()
    }

    fn run_select(&mut self, w: Window) -> Vec<u32> {
        SharedCrackerColumn::select_oids(self, w.to_pred())
    }

    fn run_insert(&mut self, oid: u32, value: i64) {
        SharedCrackerColumn::insert(self, oid, value);
    }

    fn run_delete(&mut self, oid: u32) -> bool {
        SharedCrackerColumn::delete(self, oid)
    }
}

impl ScenarioExecutor for ShardedCrackerColumn<i64> {
    fn label(&self) -> String {
        format!("sharded({})", self.shard_count())
    }

    fn run_select(&mut self, w: Window) -> Vec<u32> {
        ShardedCrackerColumn::select_oids(self, w.to_pred())
    }

    fn run_insert(&mut self, oid: u32, value: i64) {
        ShardedCrackerColumn::insert(self, oid, value);
    }

    fn run_delete(&mut self, oid: u32) -> bool {
        ShardedCrackerColumn::delete(self, oid)
    }
}

impl ScenarioExecutor for ConcurrentColumn<i64> {
    fn label(&self) -> String {
        format!("concurrent({:?})", self.mode())
    }

    fn run_select(&mut self, w: Window) -> Vec<u32> {
        ConcurrentColumn::select_oids(self, w.to_pred())
    }

    fn run_insert(&mut self, oid: u32, value: i64) {
        ConcurrentColumn::insert(self, oid, value);
    }

    fn run_delete(&mut self, oid: u32) -> bool {
        ConcurrentColumn::delete(self, oid)
    }
}

/// Tallies of one scenario replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Select ops replayed.
    pub selects: usize,
    /// Insert ops replayed.
    pub inserts: usize,
    /// Delete ops replayed.
    pub deletes: usize,
    /// Total qualifying tuples across all selects.
    pub result_tuples: u64,
}

impl RunReport {
    /// Total ops replayed.
    pub fn ops(&self) -> usize {
        self.selects + self.inserts + self.deletes
    }
}

/// Drives any [`Scenario`] against any [`ScenarioExecutor`], plainly or
/// differentially against the [`SortedOracle`].
pub struct ScenarioRunner;

impl ScenarioRunner {
    /// Replay `scenario` against `exec` (which must already hold the
    /// scenario's base column), returning tallies.
    pub fn run<S, E>(scenario: &mut S, exec: &mut E) -> RunReport
    where
        S: Scenario + ?Sized,
        E: ScenarioExecutor + ?Sized,
    {
        let mut report = RunReport::default();
        for op in scenario {
            match op {
                Op::Select(w) => {
                    report.selects += 1;
                    report.result_tuples += exec.run_select(w).len() as u64;
                }
                Op::Insert { oid, value } => {
                    report.inserts += 1;
                    exec.run_insert(oid, value);
                }
                Op::Delete { oid } => {
                    report.deletes += 1;
                    exec.run_delete(oid);
                }
            }
        }
        report
    }

    /// Replay `scenario` against `exec` *and* a fresh [`SortedOracle`]
    /// over the scenario's base column, in lock-step. After every select
    /// the full (sorted) OID result sets must be identical, and every
    /// delete must agree on whether the victim was found; the first
    /// divergence aborts the replay with a description.
    pub fn run_differential<S, E>(scenario: &mut S, exec: &mut E) -> Result<RunReport, String>
    where
        S: Scenario + ?Sized,
        E: ScenarioExecutor + ?Sized,
    {
        let name = scenario.name();
        let mut oracle = SortedOracle::new(scenario.base());
        let mut report = RunReport::default();
        for (step, op) in scenario.enumerate() {
            match op {
                Op::Select(w) => {
                    report.selects += 1;
                    let mut got = exec.run_select(w);
                    got.sort_unstable();
                    let want = oracle.select_oids(w);
                    if got != want {
                        return Err(format!(
                            "{name} step {step}: {} diverged from the oracle on \
                             Select([{}, {})): got {} oids, want {} \
                             (first difference at {:?})",
                            exec.label(),
                            w.lo,
                            w.hi,
                            got.len(),
                            want.len(),
                            got.iter()
                                .zip(&want)
                                .position(|(a, b)| a != b)
                                .or(Some(got.len().min(want.len())))
                        ));
                    }
                    report.result_tuples += want.len() as u64;
                }
                Op::Insert { oid, value } => {
                    report.inserts += 1;
                    exec.run_insert(oid, value);
                    oracle.insert(oid, value);
                }
                Op::Delete { oid } => {
                    report.deletes += 1;
                    let got = exec.run_delete(oid);
                    let want = oracle.delete(oid);
                    if got != want {
                        return Err(format!(
                            "{name} step {step}: {} Delete({oid}) found={got}, oracle \
                             found={want}",
                            exec.label()
                        ));
                    }
                }
            }
        }
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// Chaos schedules
// ---------------------------------------------------------------------------

/// One disturbance a chaos harness injects between scenario steps.
///
/// The schedule is storage-agnostic on purpose — this crate knows nothing
/// about checkpoint stores, redo logs, or admission gates. Fault points
/// and kinds are therefore raw indices; the interpreting runner (the
/// engine crate's chaos replay) maps them onto its own injection-point
/// and fault-kind tables by modulo, so every drawn value is meaningful
/// regardless of how many points the runner exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Arm a deterministic I/O fault: `point`/`kind` index the runner's
    /// injection-point and fault-kind tables (modulo their lengths),
    /// `fires` bounds how many times the fault triggers before healing.
    ArmFault {
        /// Raw injection-point index (runner maps modulo its table).
        point: u32,
        /// Raw fault-kind index (runner maps modulo its table).
        kind: u32,
        /// How many times the armed fault fires before healing.
        fires: u32,
    },
    /// Run the next query pre-cancelled: it must fail typed and change
    /// no later observable answer.
    CancelNext,
    /// Run the next query with an already-expired deadline.
    DeadlineNext,
    /// Saturate admission so the next query is shed at the gate.
    ShedNext,
    /// Arm a panic on the next crack: the query fails loudly, the column
    /// heals (degrades to cold), answers stay exact.
    PanicNext,
    /// Take a checkpoint (rotates the redo log, clearing any poison).
    Checkpoint,
    /// Simulate a process restart: recover from the durability directory
    /// and continue the replay warm.
    Restart,
}

/// A seeded list of `(step, action)` pairs, sorted by step: before
/// replaying scenario step `i`, the harness performs every action
/// scheduled at `i`. Two schedules built with the same `(steps, seed,
/// intensity)` are identical — chaos runs replay bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    actions: Vec<(usize, ChaosAction)>,
}

impl ChaosSchedule {
    /// Draw a schedule over `steps` scenario steps: each step receives an
    /// action with probability `intensity` (clamped to `[0, 1]`), the
    /// action mix weighted toward I/O faults — the failure class with the
    /// most distinct points to cover.
    pub fn seeded(steps: usize, seed: u64, intensity: f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ CHAOS_SALT);
        let intensity = intensity.clamp(0.0, 1.0);
        let mut actions = Vec::new();
        for step in 0..steps {
            if !rng.gen_bool(intensity) {
                continue;
            }
            let action = match rng.gen_range(0..100u32) {
                0..=39 => ChaosAction::ArmFault {
                    point: rng.gen::<u32>(),
                    kind: rng.gen::<u32>(),
                    fires: rng.gen_range(1..4u32),
                },
                40..=51 => ChaosAction::CancelNext,
                52..=61 => ChaosAction::DeadlineNext,
                62..=71 => ChaosAction::ShedNext,
                72..=79 => ChaosAction::PanicNext,
                80..=89 => ChaosAction::Checkpoint,
                _ => ChaosAction::Restart,
            };
            actions.push((step, action));
        }
        ChaosSchedule { actions }
    }

    /// Build a schedule from explicit `(step, action)` pairs — for tests
    /// that want a hand-crafted disturbance pattern rather than a seeded
    /// draw.
    pub fn from_actions(actions: Vec<(usize, ChaosAction)>) -> Self {
        ChaosSchedule { actions }
    }

    /// The scheduled `(step, action)` pairs, ascending by step.
    pub fn actions(&self) -> &[(usize, ChaosAction)] {
        &self.actions
    }

    /// Actions scheduled before step `step`, in schedule order.
    pub fn at(&self, step: usize) -> impl Iterator<Item = ChaosAction> + '_ {
        self.actions
            .iter()
            .filter(move |(s, _)| *s == step)
            .map(|&(_, a)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_schedules_are_deterministic_and_scale_with_intensity() {
        let a = ChaosSchedule::seeded(500, 42, 0.3);
        let b = ChaosSchedule::seeded(500, 42, 0.3);
        assert_eq!(a, b, "same parameters, same schedule");
        assert!(!a.actions().is_empty(), "intensity 0.3 over 500 steps");
        assert!(ChaosSchedule::seeded(500, 42, 0.0).actions().is_empty());
        assert_eq!(ChaosSchedule::seeded(200, 7, 1.0).actions().len(), 200);
        let (step, action) = a.actions()[0];
        assert!(a.at(step).any(|x| x == action), "at() surfaces its step");
        assert_eq!(a.at(usize::MAX).count(), 0);
    }

    fn collect_ops<S: Scenario>(mut s: S) -> (Vec<i64>, Vec<Op>) {
        let base = s.base().to_vec();
        let ops: Vec<Op> = s.by_ref().collect();
        (base, ops)
    }

    #[test]
    fn zipf_queries_hammer_the_head() {
        let (base, ops) = collect_ops(ZipfQueries::new(10_000, 2_000, 1.2, 400, 7));
        assert_eq!(base.len(), 10_000);
        assert_eq!(ops.len(), 400);
        let head = ops
            .iter()
            .filter(|op| matches!(op, Op::Select(w) if w.lo <= 20))
            .count();
        let tail = ops
            .iter()
            .filter(|op| matches!(op, Op::Select(w) if w.lo > 1_800))
            .count();
        assert!(
            head > 5 * tail.max(1),
            "skewed endpoints: head {head} vs tail {tail}"
        );
    }

    #[test]
    fn shifting_hot_set_relocates_on_schedule() {
        let mut s = ShiftingHotSet::new(10_000, 64, 16, Shift::Jump, 3);
        let mut hots = vec![s.hot_window()];
        let ops: Vec<Op> = s.by_ref().collect();
        hots.push(s.hot_window());
        assert_eq!(ops.len(), 64);
        // 64 queries at period 16: three relocations happened.
        assert_ne!(hots[0], hots[1], "the hot window moved");
        // Every query inside some epoch's hot window width.
        for op in &ops {
            let Op::Select(w) = op else {
                panic!("shifting hot set emits only selects")
            };
            assert!(w.width() >= 1);
        }
    }

    #[test]
    fn drift_wraps_around_the_domain() {
        let n = 1_000;
        let mut s =
            ShiftingHotSet::new(n, 200, 1, Shift::Drift { step: 400 }, 9).with_widths(100, 10);
        let mut lows = Vec::new();
        for _ in 0..200 {
            s.next();
            lows.push(s.hot_window().lo);
        }
        assert!(lows
            .iter()
            .all(|&l| (1..=(n as i64 - 100 + 1)).contains(&l)));
        // With step 400 over span 901 the window must wrap at least once.
        assert!(lows.windows(2).any(|p| p[1] < p[0]), "drift wrapped");
    }

    #[test]
    fn update_heavy_mixes_to_the_requested_ratio() {
        let mqs = Mqs::paper_default(5_000, 64, 0.05);
        let (base, ops) = collect_ops(UpdateHeavy::new(mqs, 3.0, 4, 11));
        assert_eq!(base.len(), 5_000);
        let selects = ops.iter().filter(|o| matches!(o, Op::Select(_))).count();
        let updates = ops.len() - selects;
        assert_eq!(selects, 64);
        // 3 updates per select, bursts of 4: within one burst of exact.
        assert!(
            (updates as i64 - 3 * 64).abs() <= 4,
            "updates {updates} ≈ 192"
        );
        // Bursts really are grouped: somewhere 4 consecutive non-selects.
        assert!(ops
            .windows(4)
            .any(|w| w.iter().all(|o| !matches!(o, Op::Select(_)))));
    }

    #[test]
    fn update_heavy_only_deletes_live_oids() {
        let mqs = Mqs::paper_default(1_000, 32, 0.1);
        let (_, ops) = collect_ops(UpdateHeavy::new(mqs, 8.0, 8, 5));
        let mut live: std::collections::HashSet<u32> = (0..1_000).collect();
        for op in ops {
            match op {
                Op::Insert { oid, .. } => assert!(live.insert(oid), "fresh OID {oid}"),
                Op::Delete { oid } => assert!(live.remove(&oid), "live OID {oid}"),
                Op::Select(_) => {}
            }
        }
    }

    #[test]
    fn seeding_contract_rebuild_replays_identically() {
        let a = collect_ops(ZipfQueries::new(2_000, 500, 1.0, 80, 42));
        let b = collect_ops(ZipfQueries::new(2_000, 500, 1.0, 80, 42));
        assert_eq!(a, b);
        let c = collect_ops(ShiftingHotSet::new(2_000, 80, 8, Shift::Jump, 42));
        let d = collect_ops(ShiftingHotSet::new(2_000, 80, 8, Shift::Jump, 42));
        assert_eq!(c, d);
        let mqs = Mqs::paper_default(2_000, 40, 0.05);
        let e = collect_ops(UpdateHeavy::new(mqs, 2.0, 4, 42));
        let f = collect_ops(UpdateHeavy::new(mqs, 2.0, 4, 42));
        assert_eq!(e, f);
        // And a different seed diverges.
        let g = collect_ops(ZipfQueries::new(2_000, 500, 1.0, 80, 43));
        assert_ne!(a.1, g.1);
    }

    #[test]
    fn oracle_select_insert_delete_roundtrip() {
        let mut o = SortedOracle::new(&[5, 3, 9, 3, 7]);
        assert_eq!(o.len(), 5);
        assert_eq!(o.select_oids(Window::new(3, 6)), vec![0, 1, 3]);
        assert_eq!(o.count(Window::new(3, 6)), 3);
        o.insert(10, 4);
        assert_eq!(o.select_oids(Window::new(3, 6)), vec![0, 1, 3, 10]);
        assert!(o.delete(1));
        assert!(!o.delete(1), "already gone");
        assert_eq!(o.select_oids(Window::new(3, 6)), vec![0, 3, 10]);
        assert!(!o.is_empty());
    }

    #[test]
    fn runner_differential_passes_on_real_columns() {
        let mut scenario = ZipfQueries::new(3_000, 800, 1.1, 60, 13);
        let mut col = CrackerColumn::new(scenario.base().to_vec());
        let report = ScenarioRunner::run_differential(&mut scenario, &mut col)
            .expect("cracker agrees with the oracle");
        assert_eq!(report.selects, 60);
        assert_eq!(report.ops(), 60);
        assert!(report.result_tuples > 0);
    }

    #[test]
    fn runner_differential_catches_a_lying_executor() {
        struct Liar;
        impl ScenarioExecutor for Liar {
            fn label(&self) -> String {
                "liar".into()
            }
            fn run_select(&mut self, _w: Window) -> Vec<u32> {
                vec![0xDEAD]
            }
            fn run_insert(&mut self, _oid: u32, _value: i64) {}
            fn run_delete(&mut self, _oid: u32) -> bool {
                true
            }
        }
        let mut scenario = ZipfQueries::new(500, 100, 1.0, 5, 1);
        let err = ScenarioRunner::run_differential(&mut scenario, &mut Liar)
            .expect_err("the liar must be caught");
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn runner_plain_tallies_ops() {
        let mqs = Mqs::paper_default(1_000, 16, 0.1);
        let mut scenario = UpdateHeavy::new(mqs, 2.0, 2, 3);
        let mut oracle = SortedOracle::new(scenario.base());
        let report = ScenarioRunner::run(&mut scenario, &mut oracle);
        assert_eq!(report.selects, 16);
        assert_eq!(report.inserts + report.deletes, report.ops() - 16);
        assert!(report.ops() >= 16 + 30, "ratio 2 owed ~32 updates");
    }
}
