//! Skewed data distributions.
//!
//! §4: "SQL updates can be used to mold the tapestry table to create one
//! with the data distributions required for detailed experimentation."
//! These generators are that molding step, done directly: Zipf-like
//! value frequencies (data-warehouse dimensions), clustered values
//! (sensor readings flocking around physical phenomena — "the readings
//! from multiple scientific devices for a star in our galaxy", §6), and a
//! monotone power remap that skews a permutation's *value density* while
//! preserving distinctness.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A column of `n` values drawn Zipf-like over the domain `1..=domain`:
/// value `v` has probability ∝ `1/v^s`. Not a permutation — duplicates
/// are the point.
pub fn zipf_column(n: usize, domain: usize, s: f64, seed: u64) -> Vec<i64> {
    assert!(domain >= 1, "domain must be non-empty");
    assert!(s >= 0.0, "exponent must be non-negative");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Inverse-CDF sampling over the (normalized) truncated zeta weights.
    let weights: Vec<f64> = (1..=domain).map(|v| 1.0 / (v as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(domain);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let idx = cdf.partition_point(|&c| c < u).min(domain - 1);
            (idx + 1) as i64
        })
        .collect()
}

/// A column of `n` values clustered around `centers` random hot spots in
/// `1..=domain`, with triangular spread `±spread` (clipped to the domain).
pub fn clustered_column(
    n: usize,
    domain: usize,
    centers: usize,
    spread: i64,
    seed: u64,
) -> Vec<i64> {
    assert!(domain >= 1 && centers >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let hot: Vec<i64> = (0..centers)
        .map(|_| rng.gen_range(1..=domain as i64))
        .collect();
    (0..n)
        .map(|_| {
            let c = hot[rng.gen_range(0..hot.len())];
            // Triangular noise: sum of two uniforms, centered.
            let noise = rng.gen_range(-spread..=spread) + rng.gen_range(-spread..=spread);
            (c + noise / 2).clamp(1, domain as i64)
        })
        .collect()
}

/// Monotone power remap of a permutation of `1..=n`: value `v` becomes
/// `round(n · (v/n)^gamma)`, then ties are broken by rank so the result
/// is again a permutation of `1..=n`, with value *density* compressed
/// toward 1 (`gamma > 1`) or toward `n` (`gamma < 1`). This is the
/// "molding" that keeps every tapestry invariant while making equal-width
/// query windows hit very different tuple counts.
pub fn power_remap(perm: &[i64], gamma: f64) -> Vec<i64> {
    assert!(gamma > 0.0, "gamma must be positive");
    let n = perm.len();
    if n == 0 {
        return Vec::new();
    }
    // Rank values by their transformed key; assign 1..=n by that order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ka = (perm[a] as f64 / n as f64).powf(gamma);
        let kb = (perm[b] as f64 / n as f64).powf(gamma);
        ka.total_cmp(&kb).then(perm[a].cmp(&perm[b]))
    });
    let mut out = vec![0i64; n];
    for (rank, &idx) in order.iter().enumerate() {
        out[idx] = rank as i64 + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(col: &[i64], n: usize) -> bool {
        let mut seen = vec![false; n + 1];
        for &v in col {
            if v < 1 || v > n as i64 || seen[v as usize] {
                return false;
            }
            seen[v as usize] = true;
        }
        col.len() == n
    }

    #[test]
    fn zipf_is_head_heavy() {
        let col = zipf_column(100_000, 1000, 1.2, 7);
        let head = col.iter().filter(|&&v| v <= 10).count();
        let tail = col.iter().filter(|&&v| v > 900).count();
        assert!(
            head > 10 * tail.max(1),
            "Zipf head ({head}) must dwarf tail ({tail})"
        );
        assert!(col.iter().all(|&v| (1..=1000).contains(&v)));
    }

    #[test]
    fn zipf_s_zero_is_roughly_uniform() {
        let col = zipf_column(100_000, 100, 0.0, 3);
        let head = col.iter().filter(|&&v| v <= 50).count();
        let frac = head as f64 / col.len() as f64;
        assert!(
            (0.45..0.55).contains(&frac),
            "uniform half-split, got {frac}"
        );
    }

    #[test]
    fn clustered_values_concentrate() {
        let col = clustered_column(50_000, 1_000_000, 3, 500, 9);
        // At most 3 clusters of width ~1000 cover everything: the number
        // of distinct kilobuckets touched is tiny.
        let mut buckets: Vec<i64> = col.iter().map(|v| v / 1000).collect();
        buckets.sort_unstable();
        buckets.dedup();
        assert!(
            buckets.len() <= 12,
            "values should concentrate, got {} kilobuckets",
            buckets.len()
        );
    }

    #[test]
    fn power_remap_preserves_permutation() {
        let perm: Vec<i64> = (1..=500).rev().collect();
        for gamma in [0.3, 1.0, 2.5] {
            let out = power_remap(&perm, gamma);
            assert!(is_permutation(&out, 500), "gamma {gamma}");
        }
    }

    #[test]
    fn power_remap_gamma_one_is_identity() {
        let perm: Vec<i64> = vec![3, 1, 4, 2, 5];
        assert_eq!(power_remap(&perm, 1.0), perm);
    }

    #[test]
    fn power_remap_is_monotone() {
        // Order of values is preserved (the remap is a monotone function
        // of the value).
        let perm: Vec<i64> = vec![5, 2, 8, 1, 9, 3];
        let out = power_remap(&perm, 2.0);
        for i in 0..perm.len() {
            for j in 0..perm.len() {
                assert_eq!(perm[i] < perm[j], out[i] < out[j]);
            }
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(power_remap(&[], 2.0).is_empty());
        assert_eq!(zipf_column(0, 10, 1.0, 1).len(), 0);
    }
}
