//! The strolling user profile.
//!
//! "The base line for a multi-query sequence is when the user has no clue
//! where to look for specifically. He samples the database in various
//! directions using more or less random steps. ... A convergence sequence
//! can be generated using the i-th selectivity factor to select a random
//! portion of the database. Alternatively, we can use the function as a
//! selectivity distribution function. At each step we draw a random step
//! number to find a selectivity factor. Picking may be with or without
//! replacement. In all cases, the query bounds of the value range are
//! determined at random" (§4).

use crate::distribution::Contraction;
use crate::Window;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How strolling selectivities are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrollMode {
    /// Use `ρ(i, k, σ)` in step order: a "convergence sequence" with
    /// random positions — the workload of Figure 11.
    Converge,
    /// Draw a random step number per query, **with** replacement.
    RandomWithReplacement,
    /// Draw each step number exactly once, in random order (**without**
    /// replacement).
    RandomWithoutReplacement,
}

/// Generate a strolling sequence of `k` random windows over `1..=n`.
pub fn strolling_sequence(
    n: usize,
    k: usize,
    sigma: f64,
    contraction: Contraction,
    mode: StrollMode,
    seed: u64,
) -> Vec<Window> {
    assert!(n >= 1, "domain must be non-empty");
    assert!(k >= 1, "at least one step");
    let mut rng = SmallRng::seed_from_u64(seed);
    let series = contraction.series(k, sigma);
    let selectivities: Vec<f64> = match mode {
        StrollMode::Converge => series,
        StrollMode::RandomWithReplacement => (0..k)
            .map(|_| series[rng.gen_range(0..series.len())])
            .collect(),
        StrollMode::RandomWithoutReplacement => {
            let mut s = series;
            s.shuffle(&mut rng);
            s
        }
    };
    selectivities
        .into_iter()
        .map(|rho| {
            let n_i = n as i64;
            let width = ((rho * n as f64).ceil() as i64).clamp(1, n_i);
            let lo = rng.gen_range(1..=(n_i - width + 1));
            Window::new(lo, lo + width)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converge_mode_width_follows_series() {
        let n = 10_000;
        let seq = strolling_sequence(n, 10, 0.05, Contraction::Linear, StrollMode::Converge, 7);
        let series = Contraction::Linear.series(10, 0.05);
        for (w, rho) in seq.iter().zip(series) {
            let expected = (rho * n as f64).ceil() as i64;
            assert_eq!(w.width(), expected);
        }
    }

    #[test]
    fn positions_are_random_not_nested() {
        // Unlike homeruns, consecutive strolling windows are generally not
        // nested; with 30 steps the probability of full nesting is nil.
        let seq = strolling_sequence(
            100_000,
            30,
            0.05,
            Contraction::Linear,
            StrollMode::Converge,
            21,
        );
        let nested = seq.windows(2).filter(|w| w[0].contains(&w[1])).count();
        assert!(nested < seq.len() - 1, "strolling must wander");
    }

    #[test]
    fn without_replacement_uses_each_selectivity_once() {
        let n = 100_000;
        let k = 12;
        let seq = strolling_sequence(
            n,
            k,
            0.1,
            Contraction::Linear,
            StrollMode::RandomWithoutReplacement,
            3,
        );
        let mut got: Vec<i64> = seq.iter().map(|w| w.width()).collect();
        got.sort_unstable();
        let mut want: Vec<i64> = Contraction::Linear
            .series(k, 0.1)
            .into_iter()
            .map(|r| (r * n as f64).ceil() as i64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "a permutation of the series widths");
    }

    #[test]
    fn with_replacement_draws_from_series_values() {
        let n = 10_000;
        let k = 25;
        let seq = strolling_sequence(
            n,
            k,
            0.2,
            Contraction::Exponential,
            StrollMode::RandomWithReplacement,
            5,
        );
        let allowed: std::collections::HashSet<i64> = Contraction::Exponential
            .series(k, 0.2)
            .into_iter()
            .map(|r| (r * n as f64).ceil() as i64)
            .collect();
        for w in &seq {
            assert!(
                allowed.contains(&w.width()),
                "width {} not in series",
                w.width()
            );
        }
    }

    #[test]
    fn windows_stay_in_domain() {
        for seed in 0..10 {
            let seq = strolling_sequence(
                333,
                20,
                0.3,
                Contraction::Logarithmic,
                StrollMode::RandomWithReplacement,
                seed,
            );
            for w in &seq {
                assert!(w.lo >= 1 && w.hi <= 334);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = strolling_sequence(500, 8, 0.1, Contraction::Linear, StrollMode::Converge, 9);
        let b = strolling_sequence(500, 8, 0.1, Contraction::Linear, StrollMode::Converge, 9);
        assert_eq!(a, b);
    }
}
