//! The hiking user profile.
//!
//! "In the hiking profile, we assume that such shifts in focus are not
//! random. Instead, the answer sets of two consecutive queries partly
//! overlap. They steer the search process to the final goal. We assume
//! that our ideal user is able to identify at each step precisely σN
//! tuples ... The overlap between answer sets reaches 100% at the end of
//! the sequence. The selectivity distribution functions can be used to
//! define overlap by δ(i, k, σ) = ρ(i, k, 0)" (§4).
//!
//! Generation: all windows have the fixed width `σN`. The *step size*
//! between consecutive windows is `(1 − overlap) · width` where the
//! overlap fraction grows as `1 − ρ(i, k, 0)` — early steps stride across
//! the domain, late steps creep, and the final step lands exactly on the
//! target window (100% overlap with its successor-to-be).

use crate::distribution::Contraction;
use crate::Window;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate a hiking sequence: `k` windows of fixed width `⌈σ·n⌉` drifting
/// toward a random target, with the pairwise-overlap schedule derived from
/// `contraction`.
pub fn hiking_sequence(
    n: usize,
    k: usize,
    sigma: f64,
    contraction: Contraction,
    seed: u64,
) -> Vec<Window> {
    assert!(n >= 1, "domain must be non-empty");
    assert!(k >= 1, "at least one step");
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_i = n as i64;
    let width = ((sigma * n as f64).ceil() as i64).clamp(1, n_i);
    let max_lo = n_i - width + 1;
    let target_lo = rng.gen_range(1..=max_lo);
    let start_lo = rng.gen_range(1..=max_lo);

    let mut out = Vec::with_capacity(k);
    let mut lo = start_lo;
    for i in 1..=k {
        if i == k {
            lo = target_lo;
        } else {
            // Overlap with the *next* window grows toward 1; stride is the
            // complement. δ(i,k,σ) = ρ(i,k,0) shrinks 1→0, so overlap
            // fraction = 1 − δ would start at 0; we want early strides
            // large, late strides tiny, i.e. stride ∝ δ(i).
            let delta = contraction.rho(i, k, 0.0);
            let stride = ((delta * width as f64).round() as i64).max(0);
            let towards = (target_lo - lo).signum();
            lo = (lo + towards * stride.min((target_lo - lo).abs())).clamp(1, max_lo);
        }
        out.push(Window::new(lo, lo + width));
    }
    out
}

/// The realized overlap fractions `|wᵢ ∩ wᵢ₊₁| / width` of a sequence
/// (diagnostic used by tests and the benchmark report).
pub fn overlap_profile(seq: &[Window]) -> Vec<f64> {
    seq.windows(2)
        .map(|w| w[0].overlap(&w[1]) as f64 / w[0].width().max(1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_windows_have_fixed_width() {
        let seq = hiking_sequence(10_000, 15, 0.05, Contraction::Linear, 11);
        assert_eq!(seq.len(), 15);
        for w in &seq {
            assert_eq!(w.width(), 500, "precisely sigma*N tuples each step");
        }
    }

    #[test]
    fn final_steps_fully_overlap() {
        let seq = hiking_sequence(10_000, 20, 0.1, Contraction::Linear, 3);
        let prof = overlap_profile(&seq);
        // "The overlap between answer sets reaches 100% at the end".
        assert!(
            *prof.last().unwrap() > 0.95,
            "final overlap ~100%, got {prof:?}"
        );
    }

    #[test]
    fn overlap_grows_towards_the_end() {
        let seq = hiking_sequence(100_000, 30, 0.05, Contraction::Linear, 9);
        let prof = overlap_profile(&seq);
        let early: f64 = prof[..5].iter().sum::<f64>() / 5.0;
        let late: f64 = prof[prof.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(
            late >= early,
            "late overlap {late} should exceed early {early}"
        );
    }

    #[test]
    fn windows_stay_in_domain() {
        for seed in 0..20 {
            let seq = hiking_sequence(777, 12, 0.2, Contraction::Exponential, seed);
            for w in &seq {
                assert!(w.lo >= 1 && w.hi <= 778, "window {w:?} out of domain");
            }
        }
    }

    #[test]
    fn last_window_is_the_target_deterministically() {
        let a = hiking_sequence(1000, 10, 0.1, Contraction::Logarithmic, 5);
        let b = hiking_sequence(1000, 10, 0.1, Contraction::Logarithmic, 5);
        assert_eq!(a, b);
        assert_eq!(a.last(), b.last());
    }

    #[test]
    fn sigma_one_covers_whole_domain() {
        let seq = hiking_sequence(50, 4, 1.0, Contraction::Linear, 2);
        for w in &seq {
            assert_eq!(w.width(), 50);
            assert_eq!(w.lo, 1);
        }
    }
}
