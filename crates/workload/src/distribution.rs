//! Selectivity distribution functions ρ(i, k, σ) — Figure 8.
//!
//! The paper models how a zooming user's intermediate selectivity shrinks
//! from 1.0 (everything) at step 0 to the target σ at step k, in three
//! extreme shapes:
//!
//! * **linear** — "a user is consistently able to remove a constant number
//!   of tuples": `ρ(i) = 1 − i·(1−σ)/k`;
//! * **exponential** — "in the initial phase, the candidate set is quickly
//!   trimmed and ... in the tail of the sequence, the hard work takes
//!   place": decay driven by `e^{−(1−σ)·i²/(2k)}`;
//! * **logarithmic** — "the quick reduction to the desired target takes
//!   place in the tail": the mirror image,
//!   `1 − (1−σ)·e^{−(1−σ)·(k−i)²/(2k)}`.
//!
//! The exponential/logarithmic exponents in the source report are
//! OCR-damaged (`e^(1−σ)2ki2`); the forms above are the calibration that
//! reproduces every property Figure 8 displays: both curves are monotone
//! from 1.0 towards σ, the exponential contracts early, the logarithmic
//! late, and the two are mirror images about the sequence midpoint. The
//! tests pin down those properties rather than opaque constants.

use serde::{Deserialize, Serialize};

/// The three convergence models of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Contraction {
    /// Constant-rate shrinking.
    Linear,
    /// Quick trim early, fine-tuning late.
    Exponential,
    /// Slow start, quick reduction in the tail.
    Logarithmic,
}

impl Contraction {
    /// The selectivity at step `i` of a `k`-step sequence converging to
    /// target selectivity `sigma`. Clamped to `[sigma, 1]`; `ρ(0) = 1`
    /// and `ρ(k) = σ` (up to the exponential tail for the non-linear
    /// shapes).
    pub fn rho(&self, i: usize, k: usize, sigma: f64) -> f64 {
        assert!(k >= 1, "sequence length must be at least 1");
        assert!((0.0..=1.0).contains(&sigma), "selectivity in [0,1]");
        let i = i.min(k) as f64;
        let k = k as f64;
        let raw = match self {
            Contraction::Linear => 1.0 - i * (1.0 - sigma) / k,
            Contraction::Exponential => {
                sigma + (1.0 - sigma) * (-(1.0 - sigma) * i * i / (2.0 * k)).exp()
            }
            Contraction::Logarithmic => {
                let j = k - i;
                1.0 - (1.0 - sigma) * (-(1.0 - sigma) * j * j / (2.0 * k)).exp()
            }
        };
        raw.clamp(sigma, 1.0)
    }

    /// The whole series `ρ(1), ..., ρ(k)` (step 0 — the full table — is
    /// not a query and is omitted, matching Figure 8's x-axis starting at
    /// step 1). The final entry is forced to exactly `sigma`: the homerun
    /// user "reaches his final destination in precisely k steps".
    pub fn series(&self, k: usize, sigma: f64) -> Vec<f64> {
        let mut s: Vec<f64> = (1..=k).map(|i| self.rho(i, k, sigma)).collect();
        if let Some(last) = s.last_mut() {
            *last = sigma;
        }
        s
    }

    /// Display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Contraction::Linear => "linear",
            Contraction::Exponential => "exponential",
            Contraction::Logarithmic => "logarithmic",
        }
    }

    /// All three models.
    pub fn all() -> [Contraction; 3] {
        [
            Contraction::Linear,
            Contraction::Exponential,
            Contraction::Logarithmic,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const K: usize = 20;
    const SIGMA: f64 = 0.2;

    #[test]
    fn endpoints_are_one_and_sigma() {
        for c in Contraction::all() {
            assert!(
                (c.rho(0, K, SIGMA) - 1.0).abs() < 0.05,
                "{c:?} starts near 1"
            );
            assert!(
                (c.rho(K, K, SIGMA) - SIGMA).abs() < 0.05,
                "{c:?} ends near sigma"
            );
            let series = c.series(K, SIGMA);
            assert_eq!(series.len(), K);
            assert_eq!(*series.last().unwrap(), SIGMA);
        }
    }

    #[test]
    fn all_series_are_monotone_nonincreasing() {
        for c in Contraction::all() {
            let s = c.series(K, SIGMA);
            for w in s.windows(2) {
                assert!(w[0] >= w[1] - 1e-12, "{c:?} must not grow: {w:?}");
            }
        }
    }

    #[test]
    fn exponential_contracts_early_logarithmic_late() {
        // At the midpoint the exponential is already close to sigma while
        // the logarithmic is still close to 1 — the defining asymmetry of
        // Figure 8.
        let e_mid = Contraction::Exponential.rho(K / 2, K, SIGMA);
        let l_mid = Contraction::Logarithmic.rho(K / 2, K, SIGMA);
        let lin_mid = Contraction::Linear.rho(K / 2, K, SIGMA);
        assert!(e_mid < lin_mid, "exp below linear at midpoint");
        assert!(l_mid > lin_mid, "log above linear at midpoint");
    }

    #[test]
    fn exponential_and_logarithmic_are_mirror_images() {
        for i in 0..=K {
            let e = Contraction::Exponential.rho(i, K, SIGMA);
            let l = Contraction::Logarithmic.rho(K - i, K, SIGMA);
            // Mirrored: ρ_exp(i) + ρ_log(k−i) ≈ 1 + σ.
            assert!(
                (e + l - (1.0 + SIGMA)).abs() < 1e-9,
                "mirror property at i={i}: {e} + {l}"
            );
        }
    }

    #[test]
    fn linear_removes_constant_fraction() {
        let s = Contraction::Linear.series(K, SIGMA);
        let d0 = 1.0 - s[0];
        for w in s.windows(2) {
            assert!((w[0] - w[1] - d0).abs() < 1e-9, "constant decrement");
        }
    }

    #[test]
    fn sigma_one_is_constant() {
        for c in Contraction::all() {
            for i in 0..=K {
                assert_eq!(c.rho(i, K, 1.0), 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn invalid_sigma_panics() {
        Contraction::Linear.rho(1, 10, 1.5);
    }

    #[test]
    #[should_panic(expected = "sequence length")]
    fn zero_length_sequence_panics() {
        Contraction::Linear.rho(0, 0, 0.5);
    }

    proptest! {
        #[test]
        fn prop_rho_always_within_bounds(
            i in 0usize..200,
            k in 1usize..200,
            sigma in 0.0f64..1.0,
        ) {
            for c in Contraction::all() {
                let r = c.rho(i, k, sigma);
                prop_assert!(r >= sigma - 1e-12);
                prop_assert!(r <= 1.0 + 1e-12);
            }
        }

        #[test]
        fn prop_series_monotone_for_arbitrary_parameters(
            k in 1usize..100,
            sigma in 0.0f64..0.99,
        ) {
            for c in Contraction::all() {
                let s = c.series(k, sigma);
                for w in s.windows(2) {
                    prop_assert!(w[0] >= w[1] - 1e-9);
                }
            }
        }
    }
}
