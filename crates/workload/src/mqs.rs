//! The multi-query sequence space descriptor.
//!
//! "DEFINITION The query sequence space can be characterised by the tuple
//! `MQS(α, N, k, σ, ρ, δ)` where α denotes the table arity, N the
//! cardinality of the table, k the length of the sequence to reach the
//! target set, σ the selectivity factor of the target set, ρ the
//! selectivity distribution function ρ(i,k,σ), \[and\] δ the pair-wise
//! overlap as a selectivity factor over N" (§4).
//!
//! [`Mqs`] bundles those dimensions with a user [`Profile`] and generates
//! both the tapestry table and the query sequence.

use crate::distribution::Contraction;
use crate::strolling::StrollMode;
use crate::tapestry::Tapestry;
use crate::{hiking, homerun, strolling, Window};

/// The idealized user behaviour driving the sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Zooming via nested refinements (§4, *Homeruns*).
    Homerun,
    /// Drifting fixed-σ windows with growing overlap (§4, *Hiking*).
    Hiking,
    /// Random sampling (§4, *Strolling*), with the given scheduling mode.
    Strolling(StrollMode),
}

/// The MQS(α, N, k, σ, ρ, δ) tuple plus the user profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mqs {
    /// Table arity α.
    pub alpha: usize,
    /// Table cardinality N.
    pub n: usize,
    /// Sequence length k.
    pub k: usize,
    /// Target selectivity σ.
    pub sigma: f64,
    /// Selectivity distribution function ρ.
    pub rho: Contraction,
    /// Pair-wise overlap schedule δ (used by the hiking profile).
    pub delta: Contraction,
    /// User behaviour.
    pub profile: Profile,
}

impl Mqs {
    /// A 2-column homerun space with linear contraction — the shape of the
    /// paper's preliminary experiments ("a tapestry table of various
    /// sizes, but with only two columns", §5).
    pub fn paper_default(n: usize, k: usize, sigma: f64) -> Self {
        Mqs {
            alpha: 2,
            n,
            k,
            sigma,
            rho: Contraction::Linear,
            delta: Contraction::Linear,
            profile: Profile::Homerun,
        }
    }

    /// Generate the tapestry table for this space.
    pub fn table(&self, seed: u64) -> Tapestry {
        Tapestry::generate(self.n, self.alpha, seed)
    }

    /// Generate the query sequence for this space.
    pub fn sequence(&self, seed: u64) -> Vec<Window> {
        match self.profile {
            Profile::Homerun => {
                homerun::homerun_sequence(self.n, self.k, self.sigma, self.rho, seed)
            }
            Profile::Hiking => {
                hiking::hiking_sequence(self.n, self.k, self.sigma, self.delta, seed)
            }
            Profile::Strolling(mode) => {
                strolling::strolling_sequence(self.n, self.k, self.sigma, self.rho, mode, seed)
            }
        }
    }

    /// Human-readable identifier for experiment output, e.g.
    /// `MQS(a=2,N=1000000,k=128,s=0.05,rho=linear,profile=homerun)`.
    pub fn describe(&self) -> String {
        let profile = match self.profile {
            Profile::Homerun => "homerun".to_string(),
            Profile::Hiking => "hiking".to_string(),
            Profile::Strolling(StrollMode::Converge) => "strolling/converge".to_string(),
            Profile::Strolling(StrollMode::RandomWithReplacement) => {
                "strolling/random+repl".to_string()
            }
            Profile::Strolling(StrollMode::RandomWithoutReplacement) => {
                "strolling/random-repl".to_string()
            }
        };
        format!(
            "MQS(a={},N={},k={},s={},rho={},profile={})",
            self.alpha,
            self.n,
            self.k,
            self.sigma,
            self.rho.name(),
            profile
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_experiment_setup() {
        let m = Mqs::paper_default(1_000_000, 128, 0.05);
        assert_eq!(m.alpha, 2);
        assert_eq!(m.n, 1_000_000);
        assert_eq!(m.profile, Profile::Homerun);
    }

    #[test]
    fn table_and_sequence_generation_dispatch() {
        let m = Mqs {
            alpha: 2,
            n: 1000,
            k: 10,
            sigma: 0.1,
            rho: Contraction::Linear,
            delta: Contraction::Linear,
            profile: Profile::Homerun,
        };
        let t = m.table(1);
        assert_eq!(t.n, 1000);
        assert_eq!(t.arity(), 2);
        let seq = m.sequence(1);
        assert_eq!(seq.len(), 10);
        // Homerun: nested.
        assert!(seq[0].contains(&seq[9]));
    }

    #[test]
    fn profiles_generate_distinct_shapes() {
        let base = Mqs::paper_default(10_000, 12, 0.05);
        let home = base.sequence(5);
        let hike = Mqs {
            profile: Profile::Hiking,
            ..base
        }
        .sequence(5);
        let stroll = Mqs {
            profile: Profile::Strolling(StrollMode::Converge),
            ..base
        }
        .sequence(5);
        assert_ne!(home, hike);
        assert_ne!(home, stroll);
        // Hiking: constant width; homerun: shrinking width.
        assert!(hike.windows(2).all(|w| w[0].width() == w[1].width()));
        assert!(home[0].width() > home[11].width());
    }

    #[test]
    fn describe_is_stable() {
        let m = Mqs::paper_default(100, 5, 0.5);
        assert_eq!(
            m.describe(),
            "MQS(a=2,N=100,k=5,s=0.5,rho=linear,profile=homerun)"
        );
        let s = Mqs {
            profile: Profile::Strolling(StrollMode::RandomWithoutReplacement),
            ..m
        };
        assert!(s.describe().ends_with("profile=strolling/random-repl)"));
    }
}
