//! Adversarial query patterns for robustness studies.
//!
//! The benchmark kit of §4 models *idealistic* users; real query streams
//! also contain the patterns that defeat plain cracking (the follow-on
//! stochastic-cracking literature catalogues them). The generators here
//! are those canonical adversaries, in the kit's `Window` vocabulary, all
//! deterministic:
//!
//! * **Sequential** — fixed-width windows sweeping the domain in order
//!   (a batch export, a time-ordered scan). Every query boundary lands in
//!   the one uncracked tail piece: the worst case for plain cracking.
//! * **ZoomIn** — nested windows shrinking toward the domain center from
//!   both sides; boundaries always fall in the still-large middle piece.
//! * **ZoomOutAlt** — windows alternating between the two domain ends,
//!   moving outward; defeats locality assumptions.
//! * **Periodic** — a sequential sweep repeated `rounds` times; after the
//!   first round plain cracking has boundaries everywhere, so this is the
//!   *recovered* case the robustness experiments contrast with.

use crate::Window;

/// The adversarial patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adversary {
    /// Left-to-right fixed-width sweep.
    SequentialAsc,
    /// Right-to-left fixed-width sweep.
    SequentialDesc,
    /// Nested windows converging on the domain center.
    ZoomIn,
    /// Windows alternating between the domain ends, moving inward.
    ZoomOutAlt,
    /// `SequentialAsc` repeated until `k` queries are emitted.
    Periodic {
        /// Number of windows per sweep round.
        round_len: usize,
    },
}

impl Adversary {
    /// Short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Adversary::SequentialAsc => "seq-asc",
            Adversary::SequentialDesc => "seq-desc",
            Adversary::ZoomIn => "zoom-in",
            Adversary::ZoomOutAlt => "zoom-out-alt",
            Adversary::Periodic { .. } => "periodic",
        }
    }
}

/// Generate `k` windows over the value domain `0..n` following `pattern`.
///
/// Window widths are `n / k` for the sweeps (tiling the domain) and
/// `n / (2k)` for the zoom patterns (so `k` steps fit).
pub fn adversarial_sequence(n: usize, k: usize, pattern: Adversary) -> Vec<Window> {
    assert!(n >= 1, "domain must be non-empty");
    assert!(k >= 1, "at least one step");
    let n = n as i64;
    let k_i = k as i64;
    match pattern {
        Adversary::SequentialAsc => {
            let w = (n / k_i).max(1);
            (0..k_i)
                .map(|i| Window::new((i * w).min(n - 1), ((i + 1) * w).min(n)))
                .collect()
        }
        Adversary::SequentialDesc => {
            let mut v = adversarial_sequence(n as usize, k, Adversary::SequentialAsc);
            v.reverse();
            v
        }
        Adversary::ZoomIn => {
            // Step i selects [i·w, n - i·w): both boundaries advance
            // toward the center, always splitting the big middle piece.
            let w = (n / (2 * k_i)).max(1);
            (0..k_i)
                .map(|i| {
                    let lo = i * w;
                    let hi = (n - i * w).max(lo + 1);
                    Window::new(lo, hi)
                })
                .collect()
        }
        Adversary::ZoomOutAlt => {
            // Odd steps near the left end, even steps near the right end,
            // each a fresh window further out.
            let w = (n / (2 * k_i)).max(1);
            (0..k_i)
                .map(|i| {
                    let j = i / 2;
                    if i % 2 == 0 {
                        Window::new(j * w, (j + 1) * w)
                    } else {
                        Window::new(n - (j + 1) * w, n - j * w)
                    }
                })
                .collect()
        }
        Adversary::Periodic { round_len } => {
            let round_len = round_len.clamp(1, k);
            let round = adversarial_sequence(n as usize, round_len, Adversary::SequentialAsc);
            round.iter().cycle().take(k).copied().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_asc_tiles_the_domain() {
        let ws = adversarial_sequence(1000, 10, Adversary::SequentialAsc);
        assert_eq!(ws.len(), 10);
        assert_eq!(ws[0], Window::new(0, 100));
        assert_eq!(ws[9], Window::new(900, 1000));
        for pair in ws.windows(2) {
            assert_eq!(pair[0].hi, pair[1].lo, "windows abut");
        }
        let covered: i64 = ws.iter().map(Window::width).sum();
        assert_eq!(covered, 1000);
    }

    #[test]
    fn sequential_desc_is_the_reverse() {
        let asc = adversarial_sequence(1000, 10, Adversary::SequentialAsc);
        let mut desc = adversarial_sequence(1000, 10, Adversary::SequentialDesc);
        desc.reverse();
        assert_eq!(asc, desc);
    }

    #[test]
    fn zoom_in_nests_strictly() {
        let ws = adversarial_sequence(1000, 8, Adversary::ZoomIn);
        for pair in ws.windows(2) {
            assert!(pair[0].contains(&pair[1]), "{pair:?}");
            assert!(pair[0].width() > pair[1].width());
        }
    }

    #[test]
    fn zoom_out_alt_alternates_ends() {
        let ws = adversarial_sequence(1000, 6, Adversary::ZoomOutAlt);
        assert!(ws[0].hi <= 500, "even steps on the left");
        assert!(ws[1].lo >= 500, "odd steps on the right");
        assert!(ws[2].lo >= ws[0].lo, "left windows move rightward outward");
        // All windows stay inside the domain.
        assert!(ws.iter().all(|w| w.lo >= 0 && w.hi <= 1000));
    }

    #[test]
    fn periodic_repeats_the_round() {
        let ws = adversarial_sequence(1000, 25, Adversary::Periodic { round_len: 10 });
        assert_eq!(ws.len(), 25);
        assert_eq!(ws[0], ws[10]);
        assert_eq!(ws[4], ws[14]);
        assert_eq!(ws[0], ws[20]);
    }

    #[test]
    fn degenerate_domains_and_lengths() {
        // One-element domain.
        let ws = adversarial_sequence(1, 3, Adversary::SequentialAsc);
        assert_eq!(ws.len(), 3);
        assert!(ws.iter().all(|w| w.width() >= 1));
        // k > n: widths clamp to 1.
        let ws = adversarial_sequence(5, 10, Adversary::ZoomIn);
        assert_eq!(ws.len(), 10);
        assert!(ws.iter().all(|w| w.width() >= 1));
        // Round length larger than k clamps.
        let ws = adversarial_sequence(100, 3, Adversary::Periodic { round_len: 50 });
        assert_eq!(ws.len(), 3);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Adversary::SequentialAsc.label(), "seq-asc");
        assert_eq!(Adversary::Periodic { round_len: 4 }.label(), "periodic");
    }
}
