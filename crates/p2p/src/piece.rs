//! Pieces: the unit of storage, cracking and migration in the overlay.
//!
//! A [`Piece`] is a horizontal fragment of the global table covering a
//! half-open *value* range `[lo, hi)` — exactly what the Ξ cracker
//! produces, except that here the pieces live on different machines.
//! Each piece records which peer keeps asking for it; the migration
//! policy reads that affinity.

use std::collections::BTreeMap;

/// Identifier of a node in the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// One horizontal fragment: the tuples whose value falls in `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct Piece {
    /// Inclusive lower value bound.
    pub lo: i64,
    /// Exclusive upper value bound.
    pub hi: i64,
    /// The tuples (values) of the fragment, in arbitrary physical order.
    pub tuples: Vec<i64>,
    /// Per-peer access counts since the piece last moved.
    accesses: BTreeMap<NodeId, u32>,
}

impl Piece {
    /// A piece covering `[lo, hi)` holding `tuples`.
    ///
    /// # Panics
    /// Panics (debug) if a tuple falls outside the declared range.
    pub fn new(lo: i64, hi: i64, tuples: Vec<i64>) -> Self {
        debug_assert!(
            tuples.iter().all(|&t| (lo..hi).contains(&t)),
            "tuples must lie within the piece bounds"
        );
        Piece {
            lo,
            hi,
            tuples,
            accesses: BTreeMap::new(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the piece holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Does the piece's value range overlap `[lo, hi)`?
    pub fn overlaps(&self, lo: i64, hi: i64) -> bool {
        self.lo < hi && lo < self.hi
    }

    /// Is the piece fully inside `[lo, hi)`?
    pub fn within(&self, lo: i64, hi: i64) -> bool {
        lo <= self.lo && self.hi <= hi
    }

    /// Ξ-crack this piece at the bounds of `[lo, hi)`, in place: returns
    /// `(below, inside, above)` where pieces outside the query range are
    /// `None` when empty-ranged. Tuple partitioning preserves the
    /// multiset.
    pub fn crack(self, lo: i64, hi: i64) -> (Option<Piece>, Option<Piece>, Option<Piece>) {
        let cut_lo = lo.clamp(self.lo, self.hi);
        let cut_hi = hi.clamp(cut_lo, self.hi);
        let (mut below, mut inside, mut above) = (Vec::new(), Vec::new(), Vec::new());
        for t in self.tuples {
            if t < cut_lo {
                below.push(t);
            } else if t < cut_hi {
                inside.push(t);
            } else {
                above.push(t);
            }
        }
        let mk = |lo: i64, hi: i64, tuples: Vec<i64>| (lo < hi).then(|| Piece::new(lo, hi, tuples));
        (
            mk(self.lo, cut_lo, below),
            mk(cut_lo, cut_hi, inside),
            mk(cut_hi, self.hi, above),
        )
    }

    /// Record an access by `peer`; returns that peer's new count.
    pub fn record_access(&mut self, peer: NodeId) -> u32 {
        let c = self.accesses.entry(peer).or_insert(0);
        *c += 1;
        *c
    }

    /// Reset the affinity counters (done when the piece migrates).
    pub fn reset_accesses(&mut self) {
        self.accesses.clear();
    }

    /// The peer with the highest access count, if any access happened.
    pub fn hottest_peer(&self) -> Option<(NodeId, u32)> {
        self.accesses
            .iter()
            .max_by_key(|(id, c)| (**c, std::cmp::Reverse(**id)))
            .map(|(&id, &c)| (id, c))
    }

    /// Merge an adjacent piece into this one (fusion — the inverse of
    /// cracking, used to respect per-node piece budgets).
    ///
    /// # Panics
    /// Panics if the pieces are not adjacent in the value domain.
    pub fn fuse(&mut self, other: Piece) {
        assert!(
            self.hi == other.lo || other.hi == self.lo,
            "only adjacent pieces fuse"
        );
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        self.tuples.extend(other.tuples);
        // Affinity of the fused region is stale on both sides.
        self.accesses.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn piece(lo: i64, hi: i64) -> Piece {
        Piece::new(lo, hi, (lo..hi).collect())
    }

    #[test]
    fn crack_splits_in_three_and_preserves_tuples() {
        let p = piece(0, 100);
        let (b, i, a) = p.crack(30, 70);
        let (b, i, a) = (b.unwrap(), i.unwrap(), a.unwrap());
        assert_eq!((b.lo, b.hi, b.len()), (0, 30, 30));
        assert_eq!((i.lo, i.hi, i.len()), (30, 70, 40));
        assert_eq!((a.lo, a.hi, a.len()), (70, 100, 30));
        let mut all: Vec<i64> = b
            .tuples
            .iter()
            .chain(&i.tuples)
            .chain(&a.tuples)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn crack_at_the_edges_yields_fewer_pieces() {
        let (b, i, a) = piece(0, 100).crack(0, 50);
        assert!(b.is_none(), "nothing below lo=0");
        assert_eq!(i.unwrap().len(), 50);
        assert_eq!(a.unwrap().len(), 50);

        let (b, i, a) = piece(0, 100).crack(-10, 200);
        assert!(b.is_none() && a.is_none());
        assert_eq!(i.unwrap().len(), 100, "query covers the piece entirely");

        // Disjoint query above the piece: the whole piece is "below" the
        // query range and stays as one piece.
        let (b, i, a) = piece(0, 100).crack(200, 300);
        assert!(i.is_none() && a.is_none());
        assert_eq!(b.unwrap().len(), 100);
    }

    #[test]
    fn overlap_and_containment() {
        let p = piece(10, 20);
        assert!(p.overlaps(15, 30));
        assert!(p.overlaps(0, 11));
        assert!(!p.overlaps(20, 30), "half-open: hi is exclusive");
        assert!(!p.overlaps(0, 10));
        assert!(p.within(10, 20));
        assert!(p.within(0, 100));
        assert!(!p.within(11, 100));
    }

    #[test]
    fn affinity_tracking_finds_the_hottest_peer() {
        let mut p = piece(0, 10);
        assert!(p.hottest_peer().is_none());
        p.record_access(NodeId(1));
        p.record_access(NodeId(2));
        assert_eq!(p.record_access(NodeId(2)), 2);
        assert_eq!(p.hottest_peer(), Some((NodeId(2), 2)));
        p.reset_accesses();
        assert!(p.hottest_peer().is_none());
    }

    #[test]
    fn fusion_of_adjacent_pieces() {
        let mut a = piece(0, 10);
        let b = piece(10, 25);
        a.fuse(b);
        assert_eq!((a.lo, a.hi), (0, 25));
        assert_eq!(a.len(), 25);
        // Fusing from the other side works too.
        let mut c = piece(30, 40);
        c.fuse(piece(25, 30));
        assert_eq!((c.lo, c.hi), (25, 40));
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn non_adjacent_fusion_panics() {
        piece(0, 10).fuse(piece(20, 30));
    }

    #[test]
    fn empty_value_ranges_produce_no_pieces() {
        let (b, i, a) = Piece::new(5, 5, vec![]).crack(0, 10);
        assert!(b.is_none() && i.is_none() && a.is_none());
    }
}
