//! The overlay: nodes, query execution, and self-organization.
//!
//! Queries enter at an arbitrary node and are answered by the nodes
//! owning the overlapping pieces. Execution is exactly the cracker
//! recipe of §3 applied across machines:
//!
//! 1. **route** — the entry node locates the owners of the overlapping
//!    pieces (one hop per remote owner);
//! 2. **crack** — each owner Ξ-cracks its border pieces at the query
//!    bounds, so the requested range becomes whole pieces;
//! 3. **transfer** — matching tuples stream back to the entry node
//!    (counted per tuple);
//! 4. **migrate** — a piece whose recent accesses are dominated by one
//!    remote peer moves there. Cracking makes this cheap and precise:
//!    migration moves exactly the hot value range, nothing else.
//!
//! Over a workload with per-node affinity the store redistributes itself
//! until queries are answered locally — the "self-organizing database in
//! a P2P environment" of §7, with cracking as the partitioning engine.

use crate::piece::{NodeId, Piece};
use std::collections::BTreeMap;

/// Tuning knobs of the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P2pConfig {
    /// A piece migrates to a peer once that peer's access count since
    /// the last move reaches this threshold. `0` disables migration.
    pub migrate_after: u32,
    /// Per-node piece budget; exceeding it fuses the node's smallest
    /// adjacent pair (`usize::MAX` disables fusion).
    pub max_pieces_per_node: usize,
}

impl Default for P2pConfig {
    fn default() -> Self {
        P2pConfig {
            migrate_after: 3,
            max_pieces_per_node: usize::MAX,
        }
    }
}

/// One peer: its owned pieces, keyed by range start.
#[derive(Debug, Default)]
struct Node {
    pieces: BTreeMap<i64, Piece>,
}

impl Node {
    fn piece_count(&self) -> usize {
        self.pieces.len()
    }

    fn tuple_count(&self) -> usize {
        self.pieces.values().map(Piece::len).sum()
    }

    /// Fuse the adjacent (in the value domain) pair of this node's
    /// pieces with the smallest combined tuple count. Returns `true`
    /// when a fusion happened.
    fn fuse_smallest_adjacent(&mut self) -> bool {
        let keys: Vec<i64> = self.pieces.keys().copied().collect();
        let mut best: Option<(i64, i64, usize)> = None;
        for pair in keys.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            // Only value-adjacent pieces may fuse (a gap means some other
            // node owns the range between).
            if self.pieces[&a].hi != self.pieces[&b].lo {
                continue;
            }
            let cost = self.pieces[&a].len() + self.pieces[&b].len();
            if best.is_none_or(|(_, _, c)| cost < c) {
                best = Some((a, b, cost));
            }
        }
        let Some((a, b, _)) = best else {
            return false;
        };
        // lint: allow(unwrap) — `best` was chosen from this map's own keys
        let right = self.pieces.remove(&b).expect("key listed");
        self.pieces.get_mut(&a).expect("key listed").fuse(right); // lint: allow(unwrap) — same

        true
    }
}

/// Per-query execution record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Qualifying tuples.
    pub result: u64,
    /// Tuples answered from the entry node's own pieces.
    pub local: u64,
    /// Tuples shipped from remote owners.
    pub transferred: u64,
    /// Remote owners contacted.
    pub hops: u64,
    /// Pieces that migrated to the entry node as a consequence.
    pub migrations: u64,
    /// Tuples moved by those migrations.
    pub migrated_tuples: u64,
}

impl QueryTrace {
    /// Fraction of the answer served locally (1.0 for an empty answer).
    pub fn locality(&self) -> f64 {
        if self.result == 0 {
            1.0
        } else {
            self.local as f64 / self.result as f64
        }
    }
}

/// Aggregate counters over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Queries executed.
    pub queries: u64,
    /// Total remote owners contacted.
    pub hops: u64,
    /// Total tuples shipped for answers.
    pub transferred: u64,
    /// Total piece migrations.
    pub migrations: u64,
    /// Total tuples moved by migrations.
    pub migrated_tuples: u64,
    /// Total piece cracks.
    pub cracks: u64,
    /// Total piece fusions (budget enforcement).
    pub fusions: u64,
}

/// The simulated overlay network.
#[derive(Debug)]
pub struct Network {
    nodes: Vec<Node>,
    config: P2pConfig,
    stats: NetStats,
    domain: (i64, i64),
}

impl Network {
    /// An overlay of `n_nodes` peers over `values`, whose value domain is
    /// `[domain_lo, domain_hi)`. The initial placement splits the domain
    /// into `n_nodes` equal value stripes, one per node — a conventional
    /// static range partitioning for the self-organization to improve on.
    ///
    /// # Panics
    /// Panics if `n_nodes` is zero or a value lies outside the domain.
    pub fn new(
        n_nodes: usize,
        values: &[i64],
        domain_lo: i64,
        domain_hi: i64,
        config: P2pConfig,
    ) -> Self {
        assert!(n_nodes >= 1, "an overlay needs at least one node");
        assert!(domain_lo < domain_hi, "empty value domain");
        let width = ((domain_hi - domain_lo) as usize).div_ceil(n_nodes) as i64;
        let mut buckets: Vec<Vec<i64>> = vec![Vec::new(); n_nodes];
        for &v in values {
            assert!(
                (domain_lo..domain_hi).contains(&v),
                "value {v} outside the domain"
            );
            let b = ((v - domain_lo) / width) as usize;
            buckets[b.min(n_nodes - 1)].push(v);
        }
        let nodes = buckets
            .into_iter()
            .enumerate()
            .map(|(i, tuples)| {
                let lo = domain_lo + i as i64 * width;
                let hi = (lo + width).min(domain_hi);
                let mut node = Node::default();
                if lo < hi {
                    node.pieces.insert(lo, Piece::new(lo, hi, tuples));
                }
                node
            })
            .collect();
        Network {
            nodes,
            config,
            stats: NetStats::default(),
            domain: (domain_lo, domain_hi),
        }
    }

    /// Number of peers.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Piece count per node.
    pub fn piece_counts(&self) -> Vec<usize> {
        self.nodes.iter().map(Node::piece_count).collect()
    }

    /// Tuple count per node.
    pub fn tuple_counts(&self) -> Vec<usize> {
        self.nodes.iter().map(Node::tuple_count).collect()
    }

    /// Execute `SELECT count(*) WHERE value IN [lo, hi)` entering at
    /// `entry`.
    pub fn query(&mut self, entry: NodeId, lo: i64, hi: i64) -> QueryTrace {
        self.stats.queries += 1;
        let mut trace = QueryTrace::default();
        if lo >= hi {
            return trace;
        }

        // Every node cracks its overlapping pieces first, so the answer
        // is made of whole pieces.
        for owner in 0..self.nodes.len() {
            self.crack_overlapping(NodeId(owner), lo, hi);
        }

        // Collect whole in-range pieces; record affinity; count hops.
        let mut migrate: Vec<(NodeId, i64)> = Vec::new();
        for owner in 0..self.nodes.len() {
            let owner_id = NodeId(owner);
            let mut contributed = false;
            for piece in self.nodes[owner].pieces.values_mut() {
                // Whole in-range pieces answer for free; partial overlaps
                // (which only exist where budget fusion coarsened the
                // partitioning back) are residual-filtered by scanning.
                let whole = piece.within(lo, hi);
                let matching = if whole {
                    piece.len() as u64
                } else if piece.overlaps(lo, hi) {
                    piece
                        .tuples
                        .iter()
                        .filter(|&&t| (lo..hi).contains(&t))
                        .count() as u64
                } else {
                    continue;
                };
                trace.result += matching;
                if owner_id == entry {
                    trace.local += matching;
                    continue;
                }
                if matching == 0 {
                    continue;
                }
                contributed = true;
                trace.transferred += matching;
                // Only whole pieces build migration affinity: moving a
                // partially relevant piece would ship cold tuples.
                if whole {
                    let count = piece.record_access(entry);
                    if self.config.migrate_after > 0 && count >= self.config.migrate_after {
                        migrate.push((owner_id, piece.lo));
                    }
                }
            }
            if contributed {
                trace.hops += 1;
            }
        }

        // Apply migrations: the hot piece moves to the entry node.
        for (from, key) in migrate {
            let mut piece = self.nodes[from.0]
                .pieces
                .remove(&key)
                .expect("migration key collected above"); // lint: allow(unwrap) — see message
            trace.migrations += 1;
            trace.migrated_tuples += piece.len() as u64;
            piece.reset_accesses();
            self.nodes[entry.0].pieces.insert(piece.lo, piece);
            self.enforce_budget(entry);
        }

        self.stats.hops += trace.hops;
        self.stats.transferred += trace.transferred;
        self.stats.migrations += trace.migrations;
        self.stats.migrated_tuples += trace.migrated_tuples;
        trace
    }

    /// Insert a tuple: it lands in whichever peer currently owns the
    /// piece covering its value — updates follow the adaptive placement
    /// instead of a static shard function. Returns the owner.
    ///
    /// # Panics
    /// Panics if the value lies outside the domain.
    pub fn insert(&mut self, value: i64) -> NodeId {
        assert!(
            (self.domain.0..self.domain.1).contains(&value),
            "value {value} outside the domain"
        );
        let owner = self
            .owner_of(value)
            .expect("pieces tile the domain, so every value has an owner"); // lint: allow(unwrap) — tiling invariant
        let node = &mut self.nodes[owner.0];
        let piece = node
            .pieces
            .values_mut()
            .find(|p| (p.lo..p.hi).contains(&value))
            .expect("owner_of found this piece"); // lint: allow(unwrap) — owner_of just matched it
        piece.tuples.push(value);
        owner
    }

    /// Delete one tuple with this value, if present anywhere. Returns the
    /// peer it was removed from.
    pub fn delete(&mut self, value: i64) -> Option<NodeId> {
        let owner = self.owner_of(value)?;
        let node = &mut self.nodes[owner.0];
        let piece = node
            .pieces
            .values_mut()
            .find(|p| (p.lo..p.hi).contains(&value))?;
        let idx = piece.tuples.iter().position(|&t| t == value)?;
        piece.tuples.swap_remove(idx);
        Some(owner)
    }

    /// The peer owning the piece covering `value`, if any.
    pub fn owner_of(&self, value: i64) -> Option<NodeId> {
        for (i, node) in self.nodes.iter().enumerate() {
            if node.pieces.values().any(|p| (p.lo..p.hi).contains(&value)) {
                return Some(NodeId(i));
            }
        }
        None
    }

    /// Ξ-crack every piece of `owner` that partially overlaps `[lo, hi)`.
    fn crack_overlapping(&mut self, owner: NodeId, lo: i64, hi: i64) {
        let node = &mut self.nodes[owner.0];
        let keys: Vec<i64> = node
            .pieces
            .values()
            .filter(|p| p.overlaps(lo, hi) && !p.within(lo, hi))
            .map(|p| p.lo)
            .collect();
        for key in keys {
            // lint: allow(unwrap) — keys were collected from this node's map
            let piece = node.pieces.remove(&key).expect("key collected above");
            let (below, inside, above) = piece.crack(lo, hi);
            for np in [below, inside, above].into_iter().flatten() {
                node.pieces.insert(np.lo, np);
            }
            self.stats.cracks += 1;
        }
        self.enforce_budget(owner);
    }

    /// Fuse pieces while the node exceeds its budget.
    fn enforce_budget(&mut self, owner: NodeId) {
        while self.nodes[owner.0].piece_count() > self.config.max_pieces_per_node {
            if !self.nodes[owner.0].fuse_smallest_adjacent() {
                break; // nothing adjacent left to fuse
            }
            self.stats.fusions += 1;
        }
    }

    /// Check global invariants: pieces tile disjoint value ranges across
    /// the whole overlay, and every tuple sits in a piece covering it.
    pub fn validate(&self) -> Result<(), String> {
        let mut ranges: Vec<(i64, i64)> = Vec::new();
        for node in &self.nodes {
            for (key, p) in &node.pieces {
                if *key != p.lo {
                    return Err(format!("piece keyed {key} but starts at {}", p.lo));
                }
                if p.lo >= p.hi {
                    return Err(format!("empty value range [{}, {})", p.lo, p.hi));
                }
                if !p.tuples.iter().all(|&t| (p.lo..p.hi).contains(&t)) {
                    return Err(format!("tuple outside piece [{}, {})", p.lo, p.hi));
                }
                ranges.push((p.lo, p.hi));
            }
        }
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            if pair[0].1 > pair[1].0 {
                return Err(format!(
                    "overlapping pieces: [{}, {}) and [{}, {})",
                    pair[0].0, pair[0].1, pair[1].0, pair[1].1
                ));
            }
        }
        if let (Some(first), Some(last)) = (ranges.first(), ranges.last()) {
            if first.0 != self.domain.0 || last.1 != self.domain.1 {
                return Err("pieces do not tile the domain".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node overlay over the permutation 0..1000 (value == tuple).
    fn net(config: P2pConfig) -> Network {
        let values: Vec<i64> = (0..1000).collect();
        Network::new(4, &values, 0, 1000, config)
    }

    #[test]
    fn initial_placement_stripes_the_domain() {
        let n = net(P2pConfig::default());
        assert_eq!(n.node_count(), 4);
        assert_eq!(n.piece_counts(), vec![1, 1, 1, 1]);
        assert_eq!(n.tuple_counts(), vec![250, 250, 250, 250]);
        n.validate().unwrap();
    }

    #[test]
    fn queries_count_correctly_wherever_data_lives() {
        let mut n = net(P2pConfig::default());
        for (lo, hi, want) in [
            (0, 1000, 1000),
            (100, 200, 100),
            (240, 260, 20), // straddles a node boundary
            (999, 1000, 1),
            (500, 500, 0),
            (1200, 1300, 0),
        ] {
            let t = n.query(NodeId(0), lo, hi);
            assert_eq!(t.result, want, "[{lo},{hi})");
            n.validate().unwrap();
        }
    }

    #[test]
    fn local_answers_cost_no_hops() {
        let mut n = net(P2pConfig::default());
        // Node 1 owns values 250..500.
        let t = n.query(NodeId(1), 300, 350);
        assert_eq!(t.result, 50);
        assert_eq!(t.local, 50);
        assert_eq!(t.hops, 0);
        assert_eq!(t.transferred, 0);
        assert!((t.locality() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remote_answers_cost_hops_and_transfers() {
        let mut n = net(P2pConfig {
            migrate_after: 0,
            ..Default::default()
        });
        let t = n.query(NodeId(0), 300, 350);
        assert_eq!(t.result, 50);
        assert_eq!(t.local, 0);
        assert_eq!(t.hops, 1);
        assert_eq!(t.transferred, 50);
        // A query spanning three owners costs three hops.
        let t = n.query(NodeId(0), 260, 760);
        assert_eq!(t.hops, 3);
    }

    #[test]
    fn cracking_splits_only_border_pieces() {
        let mut n = net(P2pConfig {
            migrate_after: 0,
            ..Default::default()
        });
        n.query(NodeId(0), 300, 350);
        // Node 1 (250..500) cracked into three; others untouched.
        assert_eq!(n.piece_counts(), vec![1, 3, 1, 1]);
        assert_eq!(n.stats().cracks, 1);
        n.validate().unwrap();
    }

    #[test]
    fn hot_pieces_migrate_to_their_consumer() {
        let mut n = net(P2pConfig {
            migrate_after: 3,
            ..Default::default()
        });
        // Node 0 keeps asking for node 1's range.
        let mut migrated_at = None;
        for step in 1..=5 {
            let t = n.query(NodeId(0), 300, 350);
            if t.migrations > 0 {
                migrated_at = Some(step);
                break;
            }
        }
        assert_eq!(migrated_at, Some(3), "third access triggers the move");
        // The next identical query is fully local.
        let t = n.query(NodeId(0), 300, 350);
        assert_eq!(t.local, 50);
        assert_eq!(t.hops, 0);
        n.validate().unwrap();
        // Tuples conserved globally.
        assert_eq!(n.tuple_counts().iter().sum::<usize>(), 1000);
    }

    #[test]
    fn migration_disabled_means_hops_forever() {
        let mut n = net(P2pConfig {
            migrate_after: 0,
            ..Default::default()
        });
        for _ in 0..10 {
            let t = n.query(NodeId(0), 300, 350);
            assert_eq!(t.hops, 1, "without migration the hop never goes away");
        }
        assert_eq!(n.stats().migrations, 0);
    }

    #[test]
    fn piece_budget_forces_fusion() {
        let mut n = net(P2pConfig {
            migrate_after: 0,
            max_pieces_per_node: 4,
        });
        // Many disjoint narrow queries into node 0's stripe (0..250).
        for lo in (0..240).step_by(20) {
            n.query(NodeId(1), lo, lo + 10);
        }
        assert!(n.piece_counts()[0] <= 4, "budget enforced");
        assert!(n.stats().fusions > 0);
        n.validate().unwrap();
        // Answers remain correct after fusions.
        let t = n.query(NodeId(1), 0, 250);
        assert_eq!(t.result, 250);
    }

    #[test]
    fn affinity_workload_self_organizes() {
        // 4 nodes; node i's clients query inside stripe ((i+1) % 4) — all
        // data starts one stripe "away" from its consumers.
        let mut n = net(P2pConfig {
            migrate_after: 2,
            ..Default::default()
        });
        let mut early_hops = 0;
        let mut late_hops = 0;
        for round in 0..20 {
            for node in 0..4 {
                let target = (node + 1) % 4;
                let base = target as i64 * 250;
                let lo = base + (round % 5) * 50;
                let t = n.query(NodeId(node), lo, lo + 50);
                if round < 5 {
                    early_hops += t.hops;
                } else if round >= 15 {
                    late_hops += t.hops;
                }
            }
        }
        assert!(
            late_hops * 4 <= early_hops,
            "self-organization must collapse remote traffic \
             (early {early_hops}, late {late_hops})"
        );
        n.validate().unwrap();
        assert_eq!(n.tuple_counts().iter().sum::<usize>(), 1000);
    }

    #[test]
    fn updates_follow_the_adaptive_placement() {
        let mut n = net(P2pConfig {
            migrate_after: 2,
            ..Default::default()
        });
        // Node 0 pulls the range 300..350 over from node 1.
        for _ in 0..2 {
            n.query(NodeId(0), 300, 350);
        }
        assert_eq!(n.owner_of(320), Some(NodeId(0)), "hot range migrated");
        // A new tuple in that range lands on the *new* owner.
        assert_eq!(n.insert(320), NodeId(0));
        let t = n.query(NodeId(0), 300, 350);
        assert_eq!(t.result, 51, "insert is visible");
        assert_eq!(t.hops, 0, "and local to its consumer");
        // Deleting removes exactly one copy.
        assert_eq!(n.delete(320), Some(NodeId(0)));
        let t = n.query(NodeId(0), 300, 350);
        assert_eq!(t.result, 50);
        // The original is still there (value 320 existed once before).
        assert_eq!(n.delete(320), Some(NodeId(0)));
        assert_eq!(n.query(NodeId(0), 320, 321).result, 0);
        assert_eq!(n.delete(320), None, "nothing left to delete");
        n.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "outside the domain")]
    fn inserting_outside_the_domain_panics() {
        let mut n = net(P2pConfig::default());
        n.insert(5_000);
    }

    #[test]
    fn single_node_overlay_is_always_local() {
        let values: Vec<i64> = (0..100).collect();
        let mut n = Network::new(1, &values, 0, 100, P2pConfig::default());
        let t = n.query(NodeId(0), 10, 90);
        assert_eq!(t.result, 80);
        assert_eq!(t.hops, 0);
        assert!((t.locality() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside the domain")]
    fn out_of_domain_values_are_rejected() {
        Network::new(2, &[5, 500], 0, 100, P2pConfig::default());
    }

    proptest::proptest! {
        /// Any query sequence conserves tuples and preserves tiling.
        #[test]
        fn prop_invariants_hold_under_random_traffic(
            queries in proptest::collection::vec(
                (0usize..4, 0i64..1000, 0i64..1000), 1..40),
            migrate_after in 0u32..4,
            budget in 2usize..20,
        ) {
            let values: Vec<i64> = (0..1000).collect();
            let mut n = Network::new(
                4,
                &values,
                0,
                1000,
                P2pConfig { migrate_after, max_pieces_per_node: budget },
            );
            for (entry, a, b) in queries {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let t = n.query(NodeId(entry), lo, hi);
                proptest::prop_assert_eq!(t.result, (hi - lo) as u64);
                n.validate().map_err(proptest::test_runner::TestCaseError::fail)?;
            }
            proptest::prop_assert_eq!(n.tuple_counts().iter().sum::<usize>(), 1000);
        }
    }
}
