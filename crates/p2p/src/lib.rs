#![warn(missing_docs)]
//! # p2p — cracking as the engine of a self-organizing distributed store
//!
//! The paper closes with the conjecture that "database cracking may
//! proof a sound basis to realize self-organizing databases in a P2P
//! environment" (§7). This crate is a laboratory-scale simulation of
//! that conjecture:
//!
//! * a global table is range-partitioned over an overlay of peers
//!   ([`Network`]);
//! * every query Ξ-cracks the border pieces of the owners it touches —
//!   the same in-place selection cracking as the single-node store, but
//!   the pieces now live on machines;
//! * pieces track *which peer keeps asking for them* and migrate to
//!   their dominant consumer ([`P2pConfig::migrate_after`]) — the
//!   distributed counterpart of "the portion of the database that
//!   matters ... is coarsely indexed" (§7);
//! * per-node piece budgets are enforced by fusing adjacent pieces, the
//!   same resource-management pressure valve as the single-node cracker
//!   index.
//!
//! Because cracking aligns piece boundaries with query boundaries,
//! migration ships *exactly the hot value range* — no static sharding
//! scheme to re-tune, no full-partition rebalancing. The `ext_p2p`
//! experiment shows remote traffic collapsing as the overlay adapts.
//!
//! ## Example
//!
//! ```
//! use p2p::{Network, NodeId, P2pConfig};
//!
//! // Ten values striped over two peers; node 0 owns 0..5.
//! let values: Vec<i64> = (0..10).collect();
//! let mut net = Network::new(2, &values, 0, 10, P2pConfig::default());
//!
//! // Node 0 repeatedly asks for node 1's range ...
//! for _ in 0..3 {
//!     net.query(NodeId(0), 7, 9);
//! }
//! // ... so that range has migrated: the next query is fully local.
//! let trace = net.query(NodeId(0), 7, 9);
//! assert_eq!(trace.hops, 0);
//! assert_eq!(trace.local, 2);
//! ```

pub mod network;
pub mod piece;

pub use network::{NetStats, Network, P2pConfig, QueryTrace};
pub use piece::{NodeId, Piece};
