//! Regression: a conjunction naming the same attribute twice must merge
//! both predicates instead of diverging on a duplicate cracker key.

use cracker_core::RangePred;
use engine::{AdaptiveDb, Table};

#[test]
fn duplicate_attr_conjunction() {
    let mut db = AdaptiveDb::new();
    let n = 1000i64;
    db.register(Table::from_int_columns("r", vec![("a", (0..n).rev().collect())]).unwrap())
        .unwrap();
    let got = db
        .select_conjunctive("r", &[("a", RangePred::lt(500)), ("a", RangePred::ge(100))])
        .unwrap();
    let want: Vec<u32> = (0..n as u32)
        .filter(|&o| (100..500).contains(&(n - 1 - o as i64)))
        .collect();
    let mut got_sorted = got.clone();
    got_sorted.sort_unstable();
    assert_eq!(got_sorted, want);
}
