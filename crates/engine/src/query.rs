//! Query representation.
//!
//! §3.1 normalizes queries to disjunctive normal form with terms of shape
//! `π_{a0..ak} γ_grp σ_pred (R1 ⋈ ... ⋈ Rm)` where the selection
//! predicates are simple range conditions. [`QueryTerm`] is that shape;
//! [`RangeQuery`] is the single-table select the multi-query benchmark
//! fires; [`OutputMode`] distinguishes the three delivery costs of
//! Figure 1.

use cracker_core::RangePred;
use serde::{Deserialize, Serialize};

/// How the result is delivered — the three panels of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputMode {
    /// (a) `INSERT INTO newR SELECT ...`: the result is written back to a
    /// new table in the store.
    Materialize,
    /// (b) the result is streamed to the front-end.
    Stream,
    /// (c) only the count of qualifying tuples is returned.
    Count,
}

impl OutputMode {
    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            OutputMode::Materialize => "materialize",
            OutputMode::Stream => "print",
            OutputMode::Count => "count",
        }
    }
}

/// A single-attribute range selection: the query the multi-query benchmark
/// fires ("`SELECT * FROM R WHERE R.A >= low AND R.A < high`", §2.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeQuery {
    /// Target table.
    pub table: String,
    /// Filtered attribute.
    pub attr: String,
    /// The range predicate.
    pub pred: RangePred<i64>,
}

impl RangeQuery {
    /// Shorthand constructor.
    pub fn new(table: impl Into<String>, attr: impl Into<String>, pred: RangePred<i64>) -> Self {
        RangeQuery {
            table: table.into(),
            attr: attr.into(),
            pred,
        }
    }

    /// Render as the SQL the paper's benchmark would issue.
    pub fn to_sql(&self) -> String {
        let mut conds = Vec::new();
        if let Some(lo) = self.pred.low {
            conds.push(format!(
                "{} >{} {}",
                self.attr,
                if lo.inclusive { "=" } else { "" },
                lo.value
            ));
        }
        if let Some(hi) = self.pred.high {
            conds.push(format!(
                "{} <{} {}",
                self.attr,
                if hi.inclusive { "=" } else { "" },
                hi.value
            ));
        }
        if conds.is_empty() {
            format!("SELECT * FROM {}", self.table)
        } else {
            format!("SELECT * FROM {} WHERE {}", self.table, conds.join(" AND "))
        }
    }
}

/// One equi-join step along a join path: `left.attr = right.attr`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinStep {
    /// Left table name.
    pub left: String,
    /// Left join attribute.
    pub left_attr: String,
    /// Right table name.
    pub right: String,
    /// Right join attribute.
    pub right_attr: String,
}

/// An aggregate function over a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// Row count per group.
    Count,
    /// Sum of an attribute per group.
    Sum,
    /// Minimum of an attribute per group.
    Min,
    /// Maximum of an attribute per group.
    Max,
}

/// A DNF query term: `π_attrs γ_grp σ_pred (R1 ⋈ ... ⋈ Rm)` (§3.1, eq. 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTerm {
    /// Projection list (empty means `*`).
    pub projection: Vec<String>,
    /// Optional grouping attribute with its aggregate.
    pub group_by: Option<(String, AggFunc, Option<String>)>,
    /// Range selections (conjunctive within the term).
    pub selections: Vec<RangeQuery>,
    /// The (natural) join path through the schema.
    pub joins: Vec<JoinStep>,
    /// Base tables touched, in join-path order.
    pub tables: Vec<String>,
}

impl QueryTerm {
    /// A term selecting from a single table.
    pub fn single(selection: RangeQuery) -> Self {
        QueryTerm {
            projection: Vec::new(),
            group_by: None,
            tables: vec![selection.table.clone()],
            selections: vec![selection],
            joins: Vec::new(),
        }
    }

    /// Number of crackable handles this term offers: each selection is a
    /// Ξ opportunity, each join a ^, each grouping an Ω, a non-`*`
    /// projection a Ψ. (Used by tests to sanity-check the cracker-count
    /// arithmetic of §3.3.)
    pub fn cracker_opportunities(&self) -> usize {
        self.selections.len()
            + self.joins.len()
            + usize::from(self.group_by.is_some())
            + usize::from(!self.projection.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_rendering() {
        let q = RangeQuery::new("r", "a", RangePred::half_open(3, 10));
        assert_eq!(q.to_sql(), "SELECT * FROM r WHERE a >= 3 AND a < 10");
        let q = RangeQuery::new("r", "a", RangePred::lt(5));
        assert_eq!(q.to_sql(), "SELECT * FROM r WHERE a < 5");
        let q = RangeQuery::new("r", "a", RangePred::with_bounds(None, None));
        assert_eq!(q.to_sql(), "SELECT * FROM r");
    }

    #[test]
    fn output_mode_labels() {
        assert_eq!(OutputMode::Materialize.label(), "materialize");
        assert_eq!(OutputMode::Stream.label(), "print");
        assert_eq!(OutputMode::Count.label(), "count");
    }

    #[test]
    fn term_opportunity_count() {
        let term = QueryTerm {
            projection: vec!["a".into()],
            group_by: Some(("g".into(), AggFunc::Count, None)),
            selections: vec![
                RangeQuery::new("r", "a", RangePred::lt(10)),
                RangeQuery::new("s", "b", RangePred::gt(5)),
            ],
            joins: vec![JoinStep {
                left: "r".into(),
                left_attr: "k".into(),
                right: "s".into(),
                right_attr: "k".into(),
            }],
            tables: vec!["r".into(), "s".into()],
        };
        // 2 Ξ + 1 ^ + 1 Ω + 1 Ψ.
        assert_eq!(term.cracker_opportunities(), 5);
    }

    #[test]
    fn single_term() {
        let t = QueryTerm::single(RangeQuery::new("r", "a", RangePred::lt(1)));
        assert_eq!(t.tables, vec!["r"]);
        assert_eq!(t.cracker_opportunities(), 1);
    }
}
