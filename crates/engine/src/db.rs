//! The adaptive database: cracking wired into a full query surface.
//!
//! §3 positions the cracker "between the semantic analyzer and the query
//! optimizer" so that it "could be integrated easily into existing
//! systems". [`AdaptiveDb`] is that integration for this engine: it owns a
//! [`DbCatalog`] of base tables, lazily creates a cracked copy of each
//! column the first time a predicate touches it (MonetDB's cracker module
//! does the same on first use), routes selections/joins/group-bys through
//! the Ξ/^/Ω operators, and records every crack in a lineage graph.

use crate::admission::{AdmissionGate, AdmissionPermit};
use crate::catalog::DbCatalog;
use crate::cost::RunStats;
use crate::durability::{
    cracker_key, not_attached, shared_key, table_key, DbMeta, Durability, TableMeta,
    DB_META_VERSION, META_KEY,
};
use crate::error::{EngineError, EngineResult};
use crate::exec::batch::{refine_conjunct, BlockScratch};
use crate::governor::Governor;
use crate::query::{AggFunc, OutputMode, RangeQuery};
use crate::table::Table;
use cracker_core::group::{aggregate_groups, omega_crack};
use cracker_core::join::{join_matched, wedge_crack, PairColumn};
use cracker_core::lineage::{CrackOp, LineageGraph, PieceId};
use cracker_core::sideways::CrackerMap;
use cracker_core::{
    ColumnSnapshot, ConcurrencyMode, ConcurrentColumn, ConcurrentSnapshot, CrackerColumn,
    CrackerConfig, KernelPolicy, RangePred,
};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use storage::fault::{FaultKind, RetryPolicy};
use storage::wal::{RedoLog, WalRecord};
use storage::{CheckpointStore, Manifest, StorageError};

/// A database whose physical organization adapts to the queries it
/// receives.
pub struct AdaptiveDb {
    catalog: DbCatalog,
    config: CrackerConfig,
    /// How concurrently shared cracked columns are latched.
    concurrency: ConcurrencyMode,
    /// Cracked copies, keyed by `(table, column)`; created on first use.
    crackers: HashMap<(String, String), CrackerColumn<i64>>,
    /// Latched cracked copies for multi-threaded readers, keyed the same
    /// way and created on first use under the configured
    /// [`ConcurrencyMode`]. Independent of `crackers`: the single-threaded
    /// operator paths never pay for latching.
    shared: HashMap<(String, String), ConcurrentColumn<i64>>,
    /// Sideways cracker maps, keyed by `(table, head, tail)`; created on
    /// first `select_project` over that attribute pair.
    maps: HashMap<(String, String, String), CrackerMap<i64>>,
    /// Lineage roots per table, created on registration.
    lineage: LineageGraph,
    roots: HashMap<String, PieceId>,
    /// Reusable block buffers for the vectorized conjunctive path.
    scratch: BlockScratch,
    /// Optional admission gate bounding in-flight operations (shared with
    /// worker threads via [`admission`](Self::admission)).
    admission: Option<Arc<AdmissionGate>>,
    /// Optional durability handle: checkpoint store + current redo log
    /// (see [`crate::durability`] and `PERSISTENCE.md`).
    durability: Option<Durability>,
}

impl AdaptiveDb {
    /// An empty adaptive database with the default cracker configuration.
    pub fn new() -> Self {
        Self::with_config(CrackerConfig::default())
    }

    /// An empty adaptive database with an explicit cracker configuration
    /// (applied to every column cracked from now on).
    pub fn with_config(config: CrackerConfig) -> Self {
        AdaptiveDb {
            catalog: DbCatalog::new(),
            config,
            concurrency: ConcurrencyMode::default(),
            crackers: HashMap::new(),
            shared: HashMap::new(),
            maps: HashMap::new(),
            lineage: LineageGraph::new(),
            roots: HashMap::new(),
            scratch: BlockScratch::new(),
            admission: None,
            durability: None,
        }
    }

    /// Builder: set the latching scheme used for columns handed out by
    /// [`shared_cracker`](Self::shared_cracker). Applies to columns shared
    /// from now on; already-shared columns keep their mode.
    pub fn with_concurrency(mut self, mode: ConcurrencyMode) -> Self {
        self.concurrency = mode;
        self
    }

    /// The concurrency mode in force for newly shared columns.
    pub fn concurrency(&self) -> ConcurrencyMode {
        self.concurrency
    }

    /// Builder: choose the crack kernel (scalar / branch-free / SIMD /
    /// banded / auto) for every column cracked from now on — the
    /// engine-level face of [`cracker_core::kernel`]'s runtime selection
    /// (env override → CPU detection → per-piece-size-band calibration →
    /// skew guard). Combined with
    /// [`with_concurrency`](Self::with_concurrency), this puts the same
    /// kernels under the plain, single-lock, and sharded paths alike.
    pub fn with_kernel(mut self, kernel: KernelPolicy) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// The kernel policy applied to newly cracked columns.
    pub fn kernel_policy(&self) -> KernelPolicy {
        self.config.kernel
    }

    /// Builder: install an [`AdmissionGate`] bounding in-flight operations
    /// with per-session fairness (see [`crate::admission`] for the
    /// policy). Callers take a permit via [`admit`](Self::admit) around
    /// each gated operation.
    pub fn with_admission(mut self, gate: AdmissionGate) -> Self {
        self.set_admission(gate);
        self
    }

    /// Install (or replace) the admission gate on an already-built
    /// database — for harnesses that construct or recover the db first.
    pub fn set_admission(&mut self, gate: AdmissionGate) {
        self.admission = Some(Arc::new(gate));
    }

    /// The installed admission gate, if any. The `Arc` can be cloned into
    /// worker threads alongside a [`shared_cracker`](Self::shared_cracker)
    /// handle.
    pub fn admission(&self) -> Option<&Arc<AdmissionGate>> {
        self.admission.as_ref()
    }

    /// Take an execution permit for `session`, blocking while the gate is
    /// saturated (or while this session is at its fairness cap). Returns
    /// `None` when no gate is installed — callers hold the result for the
    /// duration of one operation either way:
    ///
    /// ```ignore
    /// let _permit = db.admit(session_id);
    /// // ...gated work...
    /// ```
    pub fn admit(&self, session: u64) -> Option<AdmissionPermit<'_>> {
        self.admission.as_deref().map(|g| g.admit(session))
    }

    /// Register a base table.
    pub fn register(&mut self, table: Table) -> EngineResult<()> {
        let name = table.name().to_owned();
        self.catalog.register(table)?;
        let root = self.lineage.add_root(&name);
        self.roots.insert(name, root);
        Ok(())
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &DbCatalog {
        &self.catalog
    }

    /// The lineage graph accumulated so far.
    pub fn lineage(&self) -> &LineageGraph {
        &self.lineage
    }

    /// Number of columns that have been cracked so far.
    pub fn cracked_columns(&self) -> usize {
        self.crackers.len()
    }

    /// Fetch (creating on first use) the cracked copy of a column.
    fn cracker(&mut self, table: &str, column: &str) -> EngineResult<&mut CrackerColumn<i64>> {
        let key = (table.to_owned(), column.to_owned());
        if !self.crackers.contains_key(&key) {
            let t = self.catalog.table(table)?;
            let vals = t.ints(column)?.to_vec();
            self.crackers
                .insert(key.clone(), CrackerColumn::with_config(vals, self.config));
        }
        // lint: allow(unwrap) — the miss branch above just inserted the key
        Ok(self.crackers.get_mut(&key).expect("inserted above"))
    }

    /// Fetch (creating on first use, under the configured
    /// [`ConcurrencyMode`]) the latched cracked copy of a column. The
    /// returned handle answers queries through `&self`, so callers can fan
    /// it out across threads (e.g. `std::thread::scope`) and let
    /// concurrent crackers proceed under the column's latching protocol.
    ///
    /// Like every cracked copy here, the shared copy snapshots the base
    /// table's values at first touch; updates staged *earlier* through
    /// [`stage_insert`](Self::stage_insert) /
    /// [`stage_delete`](Self::stage_delete) live in the single-threaded
    /// cracker copy and are not replayed into it. Updates staged *after*
    /// both copies exist are forwarded to both, so the two query paths
    /// agree from then on.
    pub fn shared_cracker(
        &mut self,
        table: &str,
        column: &str,
    ) -> EngineResult<&ConcurrentColumn<i64>> {
        let key = (table.to_owned(), column.to_owned());
        if !self.shared.contains_key(&key) {
            let t = self.catalog.table(table)?;
            let vals = t.ints(column)?.to_vec();
            self.shared.insert(
                key.clone(),
                ConcurrentColumn::build(vals, self.config, self.concurrency),
            );
        }
        // lint: allow(unwrap) — the miss branch above just inserted the key
        Ok(self.shared.get(&key).expect("inserted above"))
    }

    /// Number of columns shared for concurrent access so far.
    pub fn shared_columns(&self) -> usize {
        self.shared.len()
    }

    /// Answer a single-attribute range query, cracking as a side effect.
    /// Returns the qualifying OIDs together with run statistics.
    pub fn select(
        &mut self,
        q: &RangeQuery,
        mode: OutputMode,
    ) -> EngineResult<(Vec<u32>, RunStats)> {
        let start = Instant::now();
        let col = self.cracker(&q.table, &q.attr)?;
        let before = *col.stats();
        let sel = col.select(q.pred);
        let delta = col.stats().delta_since(&before);
        let oids = match mode {
            OutputMode::Count => Vec::new(),
            _ => col.selection_oids(&sel),
        };
        let mut stats = RunStats {
            tuples_read: delta.tuples_touched + delta.edge_scanned,
            tuples_written: delta.tuples_moved,
            result_count: sel.count() as u64,
            ..Default::default()
        };
        if mode == OutputMode::Materialize {
            stats.tables_created = 1;
            stats.tuples_written += stats.result_count;
        }
        stats.elapsed = start.elapsed();
        Ok((oids, stats))
    }

    /// Answer a conjunction of range predicates over one table — the
    /// multi-attribute case the paper's strolling profile explores ("a
    /// user will ... try out different attributes").
    ///
    /// Every referenced column is still cracked (each query remains an
    /// index builder), but the intersection is block-at-a-time instead of
    /// per-tuple hash probes: the most selective predicate's OIDs are
    /// materialized once through the scratch-buffer API, then each
    /// residual predicate is evaluated over [`BLOCK_OIDS`]-sized gathers
    /// of its base column through the configured
    /// [`cracker_core::kernel`], so SIMD sees full blocks
    /// ([`refine_conjunct`]). A residual column with staged updates falls
    /// back to intersecting its overlay-aware materialized answer.
    ///
    /// [`BLOCK_OIDS`]: crate::exec::batch::BLOCK_OIDS
    pub fn select_conjunctive(
        &mut self,
        table: &str,
        preds: &[(&str, RangePred<i64>)],
    ) -> EngineResult<Vec<u32>> {
        if preds.is_empty() {
            let n = self.catalog.table(table)?.len() as u32;
            return Ok((0..n).collect());
        }
        // Crack every column, keeping only the layout snapshots (counts
        // come free from the selections — no materialization yet).
        let mut sels = Vec::with_capacity(preds.len());
        for (attr, pred) in preds {
            let col = self.cracker(table, attr)?;
            sels.push(col.select(*pred));
        }
        let driver = (0..preds.len())
            .min_by_key(|&i| sels[i].count())
            .expect("preds is non-empty"); // lint: allow(unwrap) — empty preds returned early
        let key = |attr: &str| (table.to_owned(), attr.to_owned());
        let mut out = Vec::new();
        self.crackers[&key(preds[driver].0)].selection_oids_into(&sels[driver], &mut out);
        let kernel = self.config.kernel.resolve();
        for (i, (attr, pred)) in preds.iter().enumerate() {
            if i == driver {
                continue;
            }
            let col = &self.crackers[&key(attr)];
            if col.has_pending_updates() {
                // Overlay-aware fallback: this column's answer can differ
                // from its base values, so intersect the materialized
                // (pending-corrected) OID set instead.
                let mut other = Vec::new();
                col.selection_oids_into(&sels[i], &mut other);
                other.sort_unstable();
                out.retain(|o| other.binary_search(o).is_ok());
            } else {
                let base = self.catalog.table(table)?.ints(attr)?;
                refine_conjunct(kernel, base, pred, &mut out, &mut self.scratch);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Answer a batch of range predicates over one column through the
    /// single-threaded cracked copy — the plain-column leg of the batch
    /// executor (no latches to amortize here; the saving is the shared
    /// plan and scratch reuse in the layers above).
    pub fn select_batch(
        &mut self,
        table: &str,
        attr: &str,
        preds: &[RangePred<i64>],
    ) -> EngineResult<Vec<Vec<u32>>> {
        let col = self.cracker(table, attr)?;
        Ok(preds
            .iter()
            .map(|p| {
                let mut out = Vec::new();
                col.select_oids_into(*p, &mut out);
                out
            })
            .collect())
    }

    /// Answer a batch of range predicates through the latched shared copy
    /// under amortized locking: one lock acquisition per batch
    /// (single-lock mode) or one latch acquisition per touched shard per
    /// batch (sharded mode) — see
    /// [`ConcurrentColumn::select_oids_batch`].
    pub fn shared_select_batch(
        &mut self,
        table: &str,
        attr: &str,
        preds: &[RangePred<i64>],
    ) -> EngineResult<Vec<Vec<u32>>> {
        Ok(self.shared_cracker(table, attr)?.select_oids_batch(preds))
    }

    /// Take an admission permit for a *governed* operation: the wait is
    /// bounded by the governor's remaining deadline budget (queue time is
    /// query time), surfacing [`EngineError::Overloaded`] instead of
    /// blocking past it. An unbounded governor waits like
    /// [`admit`](Self::admit). Returns `None` when no gate is installed.
    fn admit_governed<'g>(
        gate: Option<&'g AdmissionGate>,
        governor: &Governor,
        session: u64,
    ) -> EngineResult<Option<AdmissionPermit<'g>>> {
        match gate {
            Some(g) => Ok(Some(match governor.remaining() {
                Some(rem) => g.try_acquire_for(session, rem)?,
                None => g.admit(session),
            })),
            None => Ok(None),
        }
    }

    /// [`select`](Self::select) under a [`Governor`]: the query first
    /// passes the admission gate (waiting at most its remaining deadline
    /// budget), then polls the governor at every safe crack-step boundary.
    /// A query stopped mid-flight surfaces the governor's typed error
    /// ([`EngineError::Cancelled`] / [`EngineError::DeadlineExceeded`] /
    /// [`EngineError::Overloaded`]) and leaves every piece either
    /// untouched or fully cracked — later queries answer exactly as if the
    /// stopped one had never run. See `ROBUSTNESS.md`.
    pub fn select_governed(
        &mut self,
        q: &RangeQuery,
        mode: OutputMode,
        governor: &Governor,
        session: u64,
    ) -> EngineResult<(Vec<u32>, RunStats)> {
        governor.check()?;
        let gate = self.admission.clone();
        let _permit = Self::admit_governed(gate.as_deref(), governor, session)?;
        // The wait may have consumed the rest of the budget: re-check
        // before paying for any cracking.
        governor.check()?;
        let start = Instant::now();
        let col = self.cracker(&q.table, &q.attr)?;
        let before = *col.stats();
        let guard = governor.as_guard();
        let Some(sel) = col.select_guarded(q.pred, &guard) else {
            governor.check()?;
            unreachable!("the guard failed but the governor reports no violation");
        };
        let delta = col.stats().delta_since(&before);
        let oids = match mode {
            OutputMode::Count => Vec::new(),
            _ => col.selection_oids(&sel),
        };
        let mut stats = RunStats {
            tuples_read: delta.tuples_touched + delta.edge_scanned,
            tuples_written: delta.tuples_moved,
            result_count: sel.count() as u64,
            ..Default::default()
        };
        if mode == OutputMode::Materialize {
            stats.tables_created = 1;
            stats.tuples_written += stats.result_count;
        }
        stats.elapsed = start.elapsed();
        Ok((oids, stats))
    }

    /// [`shared_select_batch`](Self::shared_select_batch) under a
    /// [`Governor`]: admission is bounded by the remaining deadline
    /// budget and the governor is polled between predicates (and, in
    /// single-lock mode, between crack steps). A batch stopped mid-flight
    /// surfaces the governor's typed error; completed work is kept but
    /// nothing partial is returned.
    pub fn shared_select_batch_governed(
        &mut self,
        table: &str,
        attr: &str,
        preds: &[RangePred<i64>],
        governor: &Governor,
        session: u64,
    ) -> EngineResult<Vec<Vec<u32>>> {
        governor.check()?;
        let gate = self.admission.clone();
        let _permit = Self::admit_governed(gate.as_deref(), governor, session)?;
        governor.check()?;
        let col = self.shared_cracker(table, attr)?;
        let guard = governor.as_guard();
        let mut outs: Vec<Vec<u32>> = preds.iter().map(|_| Vec::new()).collect();
        let done = col.select_oids_batch_guarded(preds, &mut outs, &guard);
        if done < preds.len() {
            governor.check()?;
            unreachable!("the guard failed but the governor reports no violation");
        }
        Ok(outs)
    }

    /// Equi-join two tables on integer attributes via the ^ cracker:
    /// both join columns are wedge-cracked (the non-matching tuples are
    /// clustered away) and only the matching areas are joined.
    pub fn join(
        &mut self,
        left: &str,
        left_attr: &str,
        right: &str,
        right_attr: &str,
    ) -> EngineResult<Vec<(u32, u32)>> {
        let l_vals = self.catalog.table(left)?.ints(left_attr)?.to_vec();
        let r_vals = self.catalog.table(right)?.ints(right_attr)?.to_vec();
        let mut l = PairColumn::new(l_vals);
        let mut r = PairColumn::new(r_vals);
        let (ln, rn) = (l.len(), r.len());
        let res = wedge_crack(&mut l, &mut r, 0..ln, 0..rn);
        // Record the four pieces in the lineage graph.
        let (lr, rr) = (
            self.roots.get(left).copied(),
            self.roots.get(right).copied(),
        );
        if let (Some(lr), Some(rr)) = (lr, rr) {
            let op = CrackOp::Wedge(format!("{left}.{left_attr}={right}.{right_attr}"));
            // Roots may already be consumed by earlier ops; only record
            // when both sides are still live leaves.
            if self.lineage.reconstruction_set(left).contains(&lr)
                && self.lineage.reconstruction_set(right).contains(&rr)
            {
                self.lineage.apply(op, &[lr, rr], &[2, 2]);
            }
        }
        Ok(join_matched(&l, &r, &res))
    }

    /// Group one integer column and aggregate another via the Ω cracker.
    /// Returns `(group value, aggregate)` pairs in ascending group order.
    pub fn group_aggregate(
        &mut self,
        table: &str,
        group_attr: &str,
        agg: AggFunc,
        agg_attr: Option<&str>,
    ) -> EngineResult<Vec<(i64, i64)>> {
        let t = self.catalog.table(table)?;
        let groups = t.ints(group_attr)?.to_vec();
        let agg_vals: Option<Vec<i64>> = match agg_attr {
            Some(a) => Some(t.ints(a)?.to_vec()),
            None => None,
        };
        let mut col = PairColumn::new(groups);
        let len = col.len();
        let res = omega_crack(&mut col, 0..len);
        let out = aggregate_groups(&col, &res, |_, vals, oids| match (&agg, &agg_vals) {
            (AggFunc::Count, _) => vals.len() as i64,
            (AggFunc::Sum, Some(av)) => oids.iter().map(|&o| av[o as usize]).sum(),
            (AggFunc::Min, Some(av)) => oids.iter().map(|&o| av[o as usize]).min().unwrap_or(0),
            (AggFunc::Max, Some(av)) => oids.iter().map(|&o| av[o as usize]).max().unwrap_or(0),
            // Sum/min/max without a target column degrade to count.
            _ => vals.len() as i64,
        });
        Ok(out)
    }

    /// Ψ-crack a table on a projection list: vertically split it into the
    /// projected fragment and its complement, both carrying the surrogate
    /// OIDs for loss-less reconstruction. Records the Ψ in the lineage.
    pub fn project(
        &mut self,
        table: &str,
        attrs: &[&str],
    ) -> EngineResult<cracker_core::project::PsiResult> {
        let t = self.catalog.table(table)?;
        let mut cols = std::collections::BTreeMap::new();
        for name in t.schema().names() {
            cols.insert(
                name.to_string(),
                // lint: allow(unwrap) — iterating the schema's own names
                std::sync::Arc::clone(t.column(name).expect("schema names resolve")),
            );
        }
        let relation = cracker_core::project::VerticalFragment::new(cols)?;
        let result = cracker_core::project::psi_crack(&relation, attrs)?;
        if let Some(&root) = self.roots.get(table) {
            if self.lineage.reconstruction_set(table).contains(&root) {
                self.lineage.apply(
                    CrackOp::Psi(attrs.iter().map(|s| s.to_string()).collect()),
                    &[root],
                    &[2],
                );
            }
        }
        Ok(result)
    }

    /// `SELECT tail FROM table WHERE head IN pred`, answered sideways: a
    /// cracker map keeps the `tail` values physically aligned with the
    /// cracked order of `head`, so the projection comes back as one
    /// contiguous copy instead of a random access per qualifying OID (the
    /// Ψ surrogate join's hidden cost). The map is created on first use,
    /// copying both columns once — the same lazy-first-touch convention
    /// as every other cracker here.
    pub fn select_project(
        &mut self,
        table: &str,
        head: &str,
        tail: &str,
        pred: RangePred<i64>,
    ) -> EngineResult<Vec<i64>> {
        let key = (table.to_owned(), head.to_owned(), tail.to_owned());
        if !self.maps.contains_key(&key) {
            let t = self.catalog.table(table)?;
            let head_vals = t.ints(head)?.to_vec();
            let tail_vals = t.ints(tail)?.to_vec();
            self.maps
                .insert(key.clone(), CrackerMap::new(head_vals, tail_vals));
        }
        // lint: allow(unwrap) — the miss branch above just inserted the key
        let map = self.maps.get_mut(&key).expect("inserted above");
        let r = map.select(pred);
        Ok(map.project(r).to_vec())
    }

    /// Number of sideways cracker maps materialized so far.
    pub fn map_count(&self) -> usize {
        self.maps.len()
    }

    /// Stage a row insertion: the new value is appended to every cracked
    /// copy of the column — the single-threaded one and, if already built,
    /// the shared latched one — and the base table is left untouched
    /// (append-only experiment surface).
    /// With durability attached, the update is appended to the redo log
    /// *before* it is applied (write-ahead): a failed append stages
    /// nothing, so the in-memory state never runs ahead of what recovery
    /// can reproduce. The target is resolved *before* the append: a
    /// rejected update (unknown table/column, non-int column) must error
    /// without logging, or the poison record would make every future
    /// replay of the log fail at recovery time.
    pub fn stage_insert(
        &mut self,
        table: &str,
        column: &str,
        oid: u32,
        value: i64,
    ) -> EngineResult<()> {
        self.cracker(table, column)?;
        if let Some(dur) = self.durability.as_mut() {
            dur.log.append(&WalRecord::Insert {
                table: table.to_owned(),
                column: column.to_owned(),
                oid,
                value,
            })?;
        }
        self.cracker(table, column)?.insert(oid, value);
        let key = (table.to_owned(), column.to_owned());
        if let Some(shared) = self.shared.get(&key) {
            shared.insert(oid, value);
        }
        Ok(())
    }

    /// Stage a row deletion in every cracked copy of the column. Returns
    /// whether the single-threaded copy knew the OID. Logged write-ahead
    /// like [`stage_insert`](Self::stage_insert) — and, like it, only
    /// after the target column resolves; deletes of unknown OIDs in a
    /// *valid* column are logged too — replaying one is a harmless no-op.
    pub fn stage_delete(&mut self, table: &str, column: &str, oid: u32) -> EngineResult<bool> {
        self.cracker(table, column)?;
        if let Some(dur) = self.durability.as_mut() {
            dur.log.append(&WalRecord::Delete {
                table: table.to_owned(),
                column: column.to_owned(),
                oid,
            })?;
        }
        let found = self.cracker(table, column)?.delete(oid);
        let key = (table.to_owned(), column.to_owned());
        if let Some(shared) = self.shared.get(&key) {
            shared.delete(oid);
        }
        Ok(found)
    }

    /// Stage a batch of row insertions into one column, amortizing the
    /// per-update overheads of [`stage_insert`](Self::stage_insert):
    /// with durability attached the whole batch becomes **one** redo-log
    /// group append (one buffered write, one group-commit decision), and
    /// the shared latched copy absorbs it through
    /// `ConcurrentColumn::insert_batch` — one lock acquisition
    /// (single-lock mode) or one write latch per touched shard (sharded
    /// mode) instead of one per row.
    ///
    /// The write-ahead contract is preserved batch-wide: the target
    /// column is resolved *before* anything is logged (a rejected batch
    /// must error without poisoning the log), and the group append is
    /// all-or-nothing — a failed append stages **nothing**, so the
    /// in-memory state never runs ahead of what recovery can reproduce.
    pub fn stage_insert_batch(
        &mut self,
        table: &str,
        column: &str,
        rows: &[(u32, i64)],
    ) -> EngineResult<()> {
        if rows.is_empty() {
            return Ok(());
        }
        self.cracker(table, column)?;
        if let Some(dur) = self.durability.as_mut() {
            let recs: Vec<WalRecord> = rows
                .iter()
                .map(|&(oid, value)| WalRecord::Insert {
                    table: table.to_owned(),
                    column: column.to_owned(),
                    oid,
                    value,
                })
                .collect();
            dur.log.append_batch(&recs)?;
        }
        let col = self.cracker(table, column)?;
        for &(oid, value) in rows {
            col.insert(oid, value);
        }
        let key = (table.to_owned(), column.to_owned());
        if let Some(shared) = self.shared.get(&key) {
            shared.insert_batch(rows);
        }
        Ok(())
    }

    /// Append whole rows to a base table: the catalog gains a grown
    /// incarnation of the table (new rows take the next dense OIDs), and
    /// every *already-cracked* copy of each column — single-threaded and
    /// shared — absorbs its slice of the new rows through the staged
    /// overlay via [`stage_insert_batch`](Self::stage_insert_batch), so
    /// cracked state survives the append instead of being rebuilt.
    /// Returns the OID of the first appended row.
    ///
    /// Rows are validated against the schema (arity, all-int) before
    /// anything is staged or logged. Sideways cracker maps over the table
    /// are invalidated — they snapshot two columns at once and cannot
    /// absorb a one-column overlay; the next `select_project` rebuilds
    /// them over the grown base.
    pub fn append_rows(&mut self, table: &str, rows: &[Vec<i64>]) -> EngineResult<u32> {
        let t = self.catalog.table(table)?;
        let names: Vec<String> = t.schema().names().iter().map(|s| s.to_string()).collect();
        let start = t.len() as u32;
        if rows.iter().any(|r| r.len() != names.len()) {
            return Err(EngineError::RaggedColumns(table.to_owned()));
        }
        if rows.is_empty() {
            return Ok(start);
        }
        // Build the grown incarnation first (also proves every column is
        // an int column before anything is staged or logged).
        let mut cols: Vec<(&str, Vec<i64>)> = Vec::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            let mut vals = t.ints(name)?.to_vec();
            vals.extend(rows.iter().map(|r| r[i]));
            cols.push((name.as_str(), vals));
        }
        let grown = Table::from_int_columns(table, cols)?;
        // Stage each column's slice into its cracked copies *before*
        // swapping the catalog: cracked copies snapshot the base at
        // first touch, so they must absorb the new rows as overlay
        // entries (the grown base is what *future* first touches see).
        // Only columns with live cracked state (or a WAL to feed) need
        // staging.
        for (i, name) in names.iter().enumerate() {
            let key = (table.to_owned(), name.clone());
            if self.crackers.contains_key(&key)
                || self.shared.contains_key(&key)
                || self.durability.is_some()
            {
                let batch: Vec<(u32, i64)> = rows
                    .iter()
                    .enumerate()
                    .map(|(j, r)| (start + j as u32, r[i]))
                    .collect();
                self.stage_insert_batch(table, name, &batch)?;
            }
        }
        self.catalog.replace(grown);
        // Sideways maps snapshot (head, tail) pairs; invalidate rather
        // than serve answers missing the appended rows.
        self.maps.retain(|(t, _, _), _| t != table);
        Ok(start)
    }

    /// Morsel-parallel OID selection over the shared cracked copy of a
    /// column — the engine face of [`crate::exec::morsel`]. On a sharded
    /// column the predicate's touched shards are claimed by up to
    /// `workers` threads (extra workers ride non-blocking admission
    /// permits when a gate is installed); on a single-lock column the
    /// query runs sequentially under the governor's guard — one big latch
    /// has no morsels to hand out. Either way the governor is polled at
    /// safe boundaries and a tripped guard surfaces its typed error with
    /// no partial answer.
    pub fn select_morsel(
        &mut self,
        table: &str,
        attr: &str,
        pred: RangePred<i64>,
        workers: usize,
        governor: &Governor,
        session: u64,
    ) -> EngineResult<Vec<u32>> {
        governor.check()?;
        let gate = self.admission.clone();
        self.shared_cracker(table, attr)?;
        let key = (table.to_owned(), attr.to_owned());
        // lint: allow(unwrap) — shared_cracker above created the entry
        let col = self.shared.get(&key).expect("created above");
        match col.as_sharded() {
            Some(sharded) => crate::exec::morsel::morsel_select_oids(
                sharded,
                pred,
                workers,
                gate.as_deref().map(|g| (g, session)),
                governor,
            ),
            None => {
                let guard = governor.as_guard();
                let mut outs = vec![Vec::new()];
                let done = col.select_oids_batch_guarded(&[pred], &mut outs, &guard);
                if done < 1 {
                    governor.check()?;
                    unreachable!("the guard failed but the governor reports no violation");
                }
                Ok(outs.pop().unwrap_or_default())
            }
        }
    }

    /// Attach a durability directory: take an initial checkpoint of the
    /// current state into `dir` and start redo-logging staged updates with
    /// the given group-commit interval (`1` = every update fsync'd before
    /// it applies). Returns the committed epoch. See `PERSISTENCE.md`.
    pub fn attach_durability(
        &mut self,
        dir: impl AsRef<Path>,
        group_commit: usize,
    ) -> EngineResult<u64> {
        let mut store = CheckpointStore::open(dir.as_ref())?;
        let manifest = self.write_checkpoint(&mut store)?;
        let epoch = manifest.epoch;
        self.durability = Some(Durability::from_manifest(
            store,
            &manifest,
            group_commit,
            RetryPolicy::default(),
        )?);
        Ok(epoch)
    }

    /// Epoch of the last committed checkpoint, if durability is attached.
    pub fn checkpoint_epoch(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.epoch)
    }

    /// Take an incremental checkpoint: base tables, every cracked copy's
    /// piece map, and the pending overlay become durable atomically, and
    /// the redo log rotates to the new epoch. Payloads whose content
    /// fingerprint is unchanged since the previous epoch are carried
    /// forward without rewriting. Returns the committed epoch.
    ///
    /// On error the previous epoch (and its log) normally stays
    /// authoritative — updates keep appending to the old log, so nothing
    /// is lost. One error is *ambiguous*: a failure after the manifest
    /// rename (the directory fsync) may leave the new manifest already
    /// committed on disk. The manifest is therefore re-read on every
    /// failure; if a newer epoch landed, the handle adopts it — logging
    /// must follow the manifest recovery would load, or post-checkpoint
    /// updates would replay against the wrong epoch. The error is still
    /// surfaced (it is the commit's *durability* that is in doubt);
    /// retrying `checkpoint()` produces an unambiguous epoch.
    pub fn checkpoint(&mut self) -> EngineResult<u64> {
        let mut dur = self.durability.take().ok_or_else(not_attached)?;
        match self.write_checkpoint(&mut dur.store) {
            Ok(manifest) => {
                let epoch = manifest.epoch;
                // Rotate the live log handle in place: its injector,
                // retry policy, and group-commit carry over. On rotation
                // failure the handle is poisoned (see
                // `Durability::rotate_to`) — surfaced, not swallowed.
                let rotated = dur.rotate_to(&manifest);
                self.durability = Some(dur);
                rotated?;
                Ok(epoch)
            }
            Err(e) => {
                if let Ok(Some(m)) = dur.store.manifest() {
                    if m.epoch > dur.epoch {
                        // Ambiguous commit that actually landed: adopt it.
                        // A rotation failure here poisons the log; the
                        // original error below is the one surfaced.
                        let _ = dur.rotate_to(&m);
                    }
                }
                self.durability = Some(dur);
                Err(e)
            }
        }
    }

    /// Serialize the whole database into one checkpoint epoch. Only
    /// integer columns are supported — a non-int base column is a loud
    /// [`EngineError::WrongColumnType`], never a silently partial
    /// checkpoint.
    fn write_checkpoint(&self, store: &mut CheckpointStore) -> EngineResult<Manifest> {
        let shards = match self.concurrency {
            ConcurrencyMode::SingleLock => 0,
            ConcurrencyMode::Sharded { shards } => shards as u64,
        };
        let mut tables = Vec::new();
        for name in self.catalog.names() {
            let t = self.catalog.table(name)?;
            tables.push(TableMeta {
                name: name.to_string(),
                columns: t.schema().names().iter().map(|s| s.to_string()).collect(),
            });
        }
        let mut crackers: Vec<(String, String)> = self.crackers.keys().cloned().collect();
        crackers.sort();
        let mut shared: Vec<(String, String)> = self.shared.keys().cloned().collect();
        shared.sort();
        let meta = DbMeta {
            version: DB_META_VERSION,
            concurrency_shards: shards,
            tables,
            crackers,
            shared,
        };
        let mut w = store.begin()?;
        w.put(META_KEY, &format!("{meta:?}"), &meta)?;
        // Base tables are immutable after registration (updates live in
        // the overlay), so cardinality is a sufficient fingerprint: the
        // values are serialized once, then carried forward forever.
        for tm in &meta.tables {
            let t = self.catalog.table(&tm.name)?;
            for c in &tm.columns {
                let vals = t.ints(c)?.to_vec();
                w.put(&table_key(&tm.name, c), &format!("n{}", vals.len()), &vals)?;
            }
        }
        for (t, c) in &meta.crackers {
            let col = &self.crackers[&(t.clone(), c.clone())];
            w.put(
                &cracker_key(t, c),
                &ColumnSnapshot::fingerprint(col),
                &ColumnSnapshot::capture(col),
            )?;
        }
        for (t, c) in &meta.shared {
            let col = &self.shared[&(t.clone(), c.clone())];
            w.put(
                &shared_key(t, c),
                &ConcurrentSnapshot::fingerprint(col),
                &ConcurrentSnapshot::capture(col),
            )?;
        }
        Ok(w.commit()?)
    }

    /// Rebuild a database from the durability directory at `dir`: load the
    /// last committed checkpoint, restore every piece map with full
    /// validation, replay the redo log on top, and resume logging (with
    /// `group_commit`) where the crash left off.
    ///
    /// The recovered database answers **warm**: every crack boundary the
    /// pre-crash workload paid for is back in place (the crash-recovery
    /// suite pins this via touched-tuple counts). Anything that fails
    /// validation is a loud [`StorageError::PersistFormat`] — recovery
    /// never silently degrades to a cold or wrong state.
    pub fn recover(
        dir: impl AsRef<Path>,
        config: CrackerConfig,
        group_commit: usize,
    ) -> EngineResult<AdaptiveDb> {
        let store = CheckpointStore::open(dir.as_ref())?;
        let manifest = store.manifest()?.ok_or_else(|| {
            EngineError::Storage(StorageError::PersistIo(format!(
                "no checkpoint manifest in {:?} — nothing to recover",
                dir.as_ref()
            )))
        })?;
        let format_err = |msg: String| EngineError::Storage(StorageError::PersistFormat(msg));
        let entry = |key: &str| {
            manifest
                .entry(key)
                .ok_or_else(|| format_err(format!("manifest lacks payload {key:?}")))
        };
        let meta: DbMeta = store.read_payload(entry(META_KEY)?)?;
        if meta.version != DB_META_VERSION {
            return Err(format_err(format!(
                "unsupported db meta version {}",
                meta.version
            )));
        }
        let mode = match meta.concurrency_shards {
            0 => ConcurrencyMode::SingleLock,
            n => ConcurrencyMode::Sharded { shards: n as usize },
        };
        let mut db = AdaptiveDb::with_config(config).with_concurrency(mode);
        for tm in &meta.tables {
            let mut cols = Vec::with_capacity(tm.columns.len());
            for c in &tm.columns {
                let vals: Vec<i64> = store.read_payload(entry(&table_key(&tm.name, c))?)?;
                cols.push((c.as_str(), vals));
            }
            db.register(Table::from_int_columns(&tm.name, cols)?)?;
        }
        for (t, c) in &meta.crackers {
            let snap: ColumnSnapshot = store.read_payload(entry(&cracker_key(t, c))?)?;
            let col = snap
                .restore(config)
                .map_err(|e| format_err(format!("cracker {t}.{c}: {e}")))?;
            db.crackers.insert((t.clone(), c.clone()), col);
        }
        for (t, c) in &meta.shared {
            let snap: ConcurrentSnapshot = store.read_payload(entry(&shared_key(t, c))?)?;
            let col = snap
                .restore(config)
                .map_err(|e| format_err(format!("shared {t}.{c}: {e}")))?;
            db.shared.insert((t.clone(), c.clone()), col);
        }
        // Replay the overlay log on top of the checkpoint, truncating any
        // torn tail so the reopened log can keep appending safely.
        // Durability is not attached yet, so replay does not re-log.
        for rec in RedoLog::replay_and_repair(store.log_path(&manifest))? {
            match rec {
                WalRecord::Insert {
                    table,
                    column,
                    oid,
                    value,
                } => db.stage_insert(&table, &column, oid, value)?,
                WalRecord::Delete { table, column, oid } => {
                    db.stage_delete(&table, &column, oid)?;
                }
            }
        }
        db.durability = Some(Durability::from_manifest(
            store,
            &manifest,
            group_commit,
            RetryPolicy::default(),
        )?);
        Ok(db)
    }

    /// Arm crash injection on the checkpoint store: the `n`-th next
    /// durable checkpoint operation dies mid-write. Returns `false` when
    /// no durability is attached. Test hook for the crash-recovery suite.
    pub fn arm_checkpoint_crash(&mut self, n: u32) -> bool {
        match self.durability.as_mut() {
            Some(d) => {
                d.store.set_crash_after(n);
                true
            }
            None => false,
        }
    }

    /// Arm crash injection on the redo log: the `n`-th next append dies
    /// mid-write, leaving a torn final record. Returns `false` when no
    /// durability is attached. Test hook for the crash-recovery suite.
    pub fn arm_log_crash(&mut self, n: u32) -> bool {
        match self.durability.as_mut() {
            Some(d) => {
                d.log.set_crash_after(n);
                true
            }
            None => false,
        }
    }

    /// Arm a deterministic I/O fault at one of the named injection points
    /// of [`storage::fault`] (see `ALL_POINTS` there): `"wal."`-prefixed
    /// points are armed on the current redo log's injector, checkpoint
    /// points on the store's. After `after` clean passes the point fails
    /// `fires` times with `kind`, then heals. Returns `false` when no
    /// durability is attached. Chaos-suite hook — see `ROBUSTNESS.md`.
    ///
    /// The redo-log handle is rotated *in place* by checkpoints, so armed
    /// WAL faults survive rotation — `"wal.open"` in particular fires at
    /// the next rotation itself.
    pub fn arm_io_fault(&mut self, point: &str, after: u32, kind: FaultKind, fires: u32) -> bool {
        match self.durability.as_mut() {
            Some(d) => {
                if point.starts_with("wal.") {
                    d.log.injector_mut().arm(point, after, kind, fires);
                } else {
                    d.store.injector_mut().arm(point, after, kind, fires);
                }
                true
            }
            None => false,
        }
    }

    /// Total I/O faults the durability layer has injected so far
    /// (checkpoint store + current redo log).
    pub fn io_faults_injected(&self) -> u64 {
        self.durability
            .as_ref()
            .map(|d| d.store.faults_injected() + d.log.faults_injected())
            .unwrap_or(0)
    }

    /// Install the retry policy the durability layer applies to transient
    /// I/O faults — on the checkpoint store, the current redo log, and
    /// (via the durability handle) every log the next rotations open.
    /// Returns `false` when no durability is attached.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) -> bool {
        match self.durability.as_mut() {
            Some(d) => {
                d.store.set_retry_policy(retry);
                d.log.set_retry_policy(retry);
                d.retry = retry;
                true
            }
            None => false,
        }
    }

    /// The redo log's poison reason, if a failed group-commit fsync has
    /// poisoned it (updates fail typed until a checkpoint rotates the
    /// log). `None` when healthy or when no durability is attached.
    pub fn wal_poisoned(&self) -> Option<&str> {
        self.durability.as_ref().and_then(|d| d.log.poisoned())
    }

    /// Aggregate crack statistics across all cracked columns, including
    /// the concurrently shared ones.
    pub fn total_crack_stats(&self) -> cracker_core::CrackStats {
        let mut acc = cracker_core::CrackStats::default();
        for c in self.crackers.values() {
            acc.absorb(c.stats());
        }
        for c in self.shared.values() {
            acc.absorb(&c.stats());
        }
        acc
    }
}

impl Default for AdaptiveDb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EngineError;

    fn db() -> AdaptiveDb {
        let mut db = AdaptiveDb::new();
        db.register(
            Table::from_int_columns(
                "r",
                vec![
                    ("k", (0..100).map(|i| i % 10).collect()),
                    ("a", (0..100).rev().collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.register(
            Table::from_int_columns("s", vec![("k", (0..20).map(|i| i % 5).collect())]).unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn select_cracks_lazily_and_answers() {
        let mut db = db();
        assert_eq!(db.cracked_columns(), 0);
        let q = RangeQuery::new("r", "a", RangePred::between(10, 19));
        let (oids, stats) = db.select(&q, OutputMode::Stream).unwrap();
        assert_eq!(stats.result_count, 10);
        assert_eq!(oids.len(), 10);
        assert_eq!(db.cracked_columns(), 1);
        // Values a are reversed positions: a = 99 - oid.
        for o in oids {
            let a = 99 - o as i64;
            assert!((10..=19).contains(&a));
        }
        // Repeat is index-only.
        let (_, stats) = db.select(&q, OutputMode::Count).unwrap();
        assert_eq!(stats.tuples_read, 0);
    }

    #[test]
    fn unknown_table_or_column_errors() {
        let mut db = db();
        let q = RangeQuery::new("zzz", "a", RangePred::lt(5));
        assert!(matches!(
            db.select(&q, OutputMode::Count),
            Err(EngineError::UnknownTable(_))
        ));
        let q = RangeQuery::new("r", "zzz", RangePred::lt(5));
        assert!(matches!(
            db.select(&q, OutputMode::Count),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn conjunctive_selection_intersects_columns() {
        let mut db = db();
        // a >= 50 (oids 0..=49) AND k < 3 (oids where oid%10 < 3).
        let got = db
            .select_conjunctive("r", &[("a", RangePred::ge(50)), ("k", RangePred::lt(3))])
            .unwrap();
        let want: Vec<u32> = (0..100u32)
            .filter(|&o| (99 - o as i64) >= 50 && (o as i64 % 10) < 3)
            .collect();
        assert_eq!(got, want);
        assert_eq!(db.cracked_columns(), 2, "both columns cracked");
    }

    #[test]
    fn conjunctive_selection_survives_staged_updates() {
        let mut db = db();
        // Driver column `a` gains a staged insert; residual column `k`
        // gains a staged delete — the refine path must drop the unknown
        // OID and the fallback path must honor the overlay.
        db.stage_insert("r", "a", 500, 75).unwrap();
        let got = db
            .select_conjunctive(
                "r",
                &[("a", RangePred::between(70, 80)), ("k", RangePred::lt(5))],
            )
            .unwrap();
        let want: Vec<u32> = (0..100u32)
            .filter(|&o| (70..=80).contains(&(99 - o as i64)) && (o as i64 % 10) < 5)
            .collect();
        assert_eq!(got, want, "staged insert unknown to k must not qualify");
        assert!(db.stage_delete("r", "k", *want.first().unwrap()).unwrap());
        let got = db
            .select_conjunctive(
                "r",
                &[("a", RangePred::between(70, 80)), ("k", RangePred::lt(5))],
            )
            .unwrap();
        assert_eq!(got, want[1..], "k's staged delete must be honored");
    }

    #[test]
    fn batch_selects_match_statement_at_a_time_in_every_mode() {
        let vals: Vec<i64> = (0..8_000).map(|i| (i * 23) % 8_000).collect();
        let preds: Vec<RangePred<i64>> = (0..16)
            .map(|i| RangePred::between(i * 450, i * 450 + 900))
            .collect();
        for mode in [
            ConcurrencyMode::SingleLock,
            ConcurrencyMode::Sharded { shards: 8 },
        ] {
            let mut db = AdaptiveDb::new().with_concurrency(mode);
            db.register(Table::from_int_columns("t", vec![("v", vals.clone())]).unwrap())
                .unwrap();
            let batch = db.shared_select_batch("t", "v", &preds).unwrap();
            let plain = db.select_batch("t", "v", &preds).unwrap();
            for ((pred, shared), plain) in preds.iter().zip(batch).zip(plain) {
                let mut shared = shared;
                let mut plain = plain;
                shared.sort_unstable();
                plain.sort_unstable();
                assert_eq!(shared, plain, "{mode:?} pred {pred:?}");
                let mut stmt = db.shared_cracker("t", "v").unwrap().select_oids(*pred);
                stmt.sort_unstable();
                assert_eq!(shared, stmt, "{mode:?} pred {pred:?}");
            }
        }
    }

    #[test]
    fn admission_gate_is_optional_and_shareable() {
        let db = db();
        assert!(db.admission().is_none());
        assert!(db.admit(1).is_none());
        let db = db.with_admission(AdmissionGate::new(2, 1));
        let gate = Arc::clone(db.admission().unwrap());
        let permit = db.admit(1).expect("gate installed");
        assert_eq!(gate.in_flight(), 1);
        assert!(gate.try_admit(1).is_none(), "session cap is 1");
        let _other = gate.try_admit(2).expect("second session admitted");
        drop(permit);
        assert_eq!(gate.in_flight(), 1);
    }

    #[test]
    fn empty_conjunction_returns_all() {
        let mut db = db();
        assert_eq!(db.select_conjunctive("r", &[]).unwrap().len(), 100);
    }

    #[test]
    fn join_via_wedge_agrees_with_nested_loop() {
        let mut db = db();
        let mut got = db.join("r", "k", "s", "k").unwrap();
        got.sort_unstable();
        let r_k: Vec<i64> = (0..100).map(|i| i % 10).collect();
        let s_k: Vec<i64> = (0..20).map(|i| i % 5).collect();
        let mut want = Vec::new();
        for (i, &rv) in r_k.iter().enumerate() {
            for (j, &sv) in s_k.iter().enumerate() {
                if rv == sv {
                    want.push((i as u32, j as u32));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
        // The wedge was recorded in the lineage.
        assert_eq!(db.lineage().reconstruction_set("r").len(), 2);
        assert_eq!(db.lineage().reconstruction_set("s").len(), 2);
    }

    #[test]
    fn group_aggregate_via_omega() {
        let mut db = db();
        let counts = db.group_aggregate("r", "k", AggFunc::Count, None).unwrap();
        assert_eq!(counts.len(), 10);
        assert!(counts.iter().all(|&(_, c)| c == 10));
        let sums = db
            .group_aggregate("r", "k", AggFunc::Sum, Some("a"))
            .unwrap();
        // Group g holds oids g, g+10, ..., g+90 with a = 99-oid.
        let expect: i64 = (0..10).map(|j| 99 - (10 * j)).sum();
        assert_eq!(sums[0], (0, expect));
        let maxs = db
            .group_aggregate("r", "k", AggFunc::Max, Some("a"))
            .unwrap();
        assert_eq!(maxs[0], (0, 99));
        let mins = db
            .group_aggregate("r", "k", AggFunc::Min, Some("a"))
            .unwrap();
        assert_eq!(mins[9], (9, 0));
    }

    #[test]
    fn staged_updates_flow_through_selects() {
        let mut db = db();
        let q = RangeQuery::new("r", "a", RangePred::ge(1000));
        let (oids, _) = db.select(&q, OutputMode::Stream).unwrap();
        assert!(oids.is_empty());
        db.stage_insert("r", "a", 500, 2000).unwrap();
        let (oids, stats) = db.select(&q, OutputMode::Stream).unwrap();
        assert_eq!(oids, vec![500]);
        assert_eq!(stats.result_count, 1);
        assert!(db.stage_delete("r", "a", 500).unwrap());
        let (oids, _) = db.select(&q, OutputMode::Stream).unwrap();
        assert!(oids.is_empty());
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut db = db();
        let err = db
            .register(Table::from_int_columns("r", vec![("x", vec![])]).unwrap())
            .unwrap_err();
        assert!(matches!(err, EngineError::DuplicateTable(_)));
    }

    #[test]
    fn psi_projection_splits_and_records_lineage() {
        let mut db = db();
        let res = db.project("r", &["a"]).unwrap();
        assert_eq!(res.projected.attrs(), vec!["a"]);
        assert_eq!(res.rest.attrs(), vec!["k"]);
        // Loss-less reconstruction via the surrogate join.
        let back = cracker_core::project::psi_reconstruct(&res).unwrap();
        assert_eq!(back.attrs(), vec!["a", "k"]);
        // The Ψ is in the lineage: r is now two pieces.
        assert_eq!(db.lineage().reconstruction_set("r").len(), 2);
        // Unknown attribute errors.
        assert!(db.project("r", &["zzz"]).is_err());
        assert!(db.project("zzz", &["a"]).is_err());
    }

    #[test]
    fn sideways_select_project_agrees_with_oid_path() {
        let mut db = db();
        // Sideways: b-values (column k) of tuples with a in [10, 19].
        let pred = RangePred::between(10, 19);
        let mut sideways = db.select_project("r", "a", "k", pred).unwrap();
        sideways.sort_unstable();
        // OID path through the plain cracker.
        let q = RangeQuery::new("r", "a", pred);
        let (oids, _) = db.select(&q, OutputMode::Stream).unwrap();
        let k_col: Vec<i64> = (0..100).map(|i| i % 10).collect();
        let mut via_oids: Vec<i64> = oids.iter().map(|&o| k_col[o as usize]).collect();
        via_oids.sort_unstable();
        assert_eq!(sideways, via_oids);
        assert_eq!(db.map_count(), 1);
        // A second pair creates a second map; a repeat reuses the first.
        db.select_project("r", "k", "a", RangePred::lt(3)).unwrap();
        db.select_project("r", "a", "k", RangePred::lt(3)).unwrap();
        assert_eq!(db.map_count(), 2);
        // Unknown names error.
        assert!(db.select_project("zzz", "a", "k", pred).is_err());
        assert!(db.select_project("r", "zzz", "k", pred).is_err());
        assert!(db.select_project("r", "a", "zzz", pred).is_err());
    }

    #[test]
    fn shared_cracker_modes_agree_and_fan_out_across_threads() {
        let vals: Vec<i64> = (0..10_000).map(|i| (i * 17) % 10_000).collect();
        for mode in [
            ConcurrencyMode::SingleLock,
            ConcurrencyMode::Sharded { shards: 8 },
        ] {
            let mut db = AdaptiveDb::new().with_concurrency(mode);
            assert_eq!(db.concurrency(), mode);
            db.register(Table::from_int_columns("t", vec![("v", vals.clone())]).unwrap())
                .unwrap();
            assert_eq!(db.shared_columns(), 0);
            {
                let col = db.shared_cracker("t", "v").unwrap();
                let vals = &vals;
                std::thread::scope(|s| {
                    for t in 0..4i64 {
                        let col = &*col;
                        s.spawn(move || {
                            for q in 0..25i64 {
                                let lo = (t * 2_311 + q * 97) % 9_000;
                                let pred = RangePred::between(lo, lo + 500);
                                let want = vals.iter().filter(|&&v| pred.matches(v)).count();
                                assert_eq!(col.count(pred), want);
                            }
                        });
                    }
                });
                col.validate().unwrap();
            }
            assert_eq!(db.shared_columns(), 1);
            assert!(db.total_crack_stats().queries > 0, "shared stats flow in");
            assert!(db.shared_cracker("t", "zzz").is_err());
            assert!(db.shared_cracker("zzz", "v").is_err());
        }
    }

    #[test]
    fn kernel_choice_reaches_every_concurrency_mode() {
        // The same query stream through plain, single-lock, and sharded
        // columns with every member of the kernel family forced: all
        // paths agree, and the plain cracker really runs the requested
        // kernel (SIMD degrades to branch-free where the CPU lacks a
        // vector tier — still the same answers).
        let vals: Vec<i64> = (0..5_000).map(|i| (i * 131) % 5_000).collect();
        let mut answers = Vec::new();
        for kernel in [
            KernelPolicy::Scalar,
            KernelPolicy::BranchFree,
            KernelPolicy::Simd,
            KernelPolicy::Banded,
        ] {
            for mode in [
                ConcurrencyMode::SingleLock,
                ConcurrencyMode::Sharded { shards: 4 },
            ] {
                let mut db = AdaptiveDb::new().with_kernel(kernel).with_concurrency(mode);
                assert_eq!(db.kernel_policy(), kernel);
                db.register(Table::from_int_columns("t", vec![("v", vals.clone())]).unwrap())
                    .unwrap();
                // Plain path.
                let q = RangeQuery::new("t", "v", RangePred::between(1_000, 2_000));
                let (mut plain, _) = db.select(&q, OutputMode::Stream).unwrap();
                plain.sort_unstable();
                // Latched path under `mode`.
                let mut shared = db
                    .shared_cracker("t", "v")
                    .unwrap()
                    .select_oids(RangePred::between(1_000, 2_000));
                shared.sort_unstable();
                assert_eq!(plain, shared, "{kernel:?}/{mode:?}");
                answers.push(plain);
            }
        }
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn staged_updates_forward_to_the_shared_copy() {
        let mut db = AdaptiveDb::new().with_concurrency(ConcurrencyMode::Sharded { shards: 4 });
        db.register(Table::from_int_columns("t", vec![("v", (0..100).collect())]).unwrap())
            .unwrap();
        let band = RangePred::between(10, 20);
        // Build both copies, then stage updates through the db surface.
        assert_eq!(db.shared_cracker("t", "v").unwrap().count(band), 11);
        db.stage_insert("t", "v", 500, 15).unwrap();
        assert_eq!(
            db.shared_cracker("t", "v").unwrap().count(band),
            12,
            "insert staged after the shared copy exists must reach it"
        );
        assert!(db.stage_delete("t", "v", 500).unwrap());
        assert!(db.stage_delete("t", "v", 15).unwrap());
        assert_eq!(db.shared_cracker("t", "v").unwrap().count(band), 10);
        // The single-threaded path agrees.
        let q = RangeQuery::new("t", "v", band);
        let (_, stats) = db.select(&q, OutputMode::Count).unwrap();
        assert_eq!(stats.result_count, 10);
    }

    #[test]
    fn governed_select_surfaces_typed_errors_and_changes_no_answers() {
        let mut db = db();
        let q = RangeQuery::new("r", "a", RangePred::between(10, 40));
        let (want, _) = db.select(&q, OutputMode::Stream).unwrap();

        // Pre-cancelled: typed, and nothing observable moved.
        let g = crate::governor::Governor::unbounded();
        g.token().cancel();
        let q2 = RangeQuery::new("r", "a", RangePred::between(50, 80));
        assert!(matches!(
            db.select_governed(&q2, OutputMode::Stream, &g, 1),
            Err(EngineError::Cancelled)
        ));

        // Expired deadline: typed with the original budget.
        let g = crate::governor::Governor::with_deadline(std::time::Duration::ZERO);
        match db.select_governed(&q2, OutputMode::Stream, &g, 1) {
            Err(EngineError::DeadlineExceeded { budget }) => {
                assert_eq!(budget, std::time::Duration::ZERO)
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }

        // A healthy governor answers exactly like the ungoverned path.
        let g = crate::governor::Governor::unbounded();
        let (got, _) = db.select_governed(&q, OutputMode::Stream, &g, 1).unwrap();
        assert_eq!(got, want);

        // The governed batch path agrees with the ungoverned batch.
        let preds = vec![RangePred::between(10, 40), RangePred::between(50, 80)];
        let governed = db
            .shared_select_batch_governed("r", "a", &preds, &g, 1)
            .unwrap();
        let plain = db.shared_select_batch("r", "a", &preds).unwrap();
        assert_eq!(governed, plain);
    }

    #[test]
    fn governed_select_sheds_on_a_saturated_gate_within_its_budget() {
        let mut db = db().with_admission(AdmissionGate::new(1, 1));
        let gate = Arc::clone(db.admission().unwrap());
        let _held = gate.try_admit(99).expect("slot free");
        let g = crate::governor::Governor::with_deadline(std::time::Duration::from_millis(20));
        let q = RangeQuery::new("r", "a", RangePred::between(10, 40));
        match db.select_governed(&q, OutputMode::Stream, &g, 1) {
            Err(EngineError::Overloaded { capacity, .. }) => assert_eq!(capacity, 1),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // The shed query cracked nothing.
        assert_eq!(db.cracked_columns(), 0);
    }

    #[test]
    fn batch_staging_matches_per_row_staging() {
        let mut db = AdaptiveDb::new().with_concurrency(ConcurrencyMode::Sharded { shards: 4 });
        db.register(Table::from_int_columns("t", vec![("v", (0..1000).collect())]).unwrap())
            .unwrap();
        // Build both copies so the batch must reach each of them.
        db.shared_cracker("t", "v").unwrap();
        db.select(
            &RangeQuery::new("t", "v", RangePred::lt(100)),
            OutputMode::Count,
        )
        .unwrap();
        let rows: Vec<(u32, i64)> = (0..50).map(|i| (2000 + i as u32, i * 13 % 997)).collect();
        db.stage_insert_batch("t", "v", &rows).unwrap();
        db.stage_insert_batch("t", "v", &[]).unwrap();
        let band = RangePred::between(0, 996);
        let want = 1000 - 3 + rows.len(); // base 997..=999 excluded
        assert_eq!(db.shared_cracker("t", "v").unwrap().count(band), want);
        let (_, stats) = db
            .select(&RangeQuery::new("t", "v", band), OutputMode::Count)
            .unwrap();
        assert_eq!(stats.result_count as usize, want);
        // Unknown targets error without staging anything.
        assert!(db.stage_insert_batch("t", "zzz", &[(1, 1)]).is_err());
        assert!(db.stage_insert_batch("zzz", "v", &[(1, 1)]).is_err());
    }

    #[test]
    fn append_rows_grows_base_and_cracked_copies() {
        let mut db = db();
        // Crack `a`, build a sideways map, then append whole rows.
        db.select(
            &RangeQuery::new("r", "a", RangePred::ge(50)),
            OutputMode::Count,
        )
        .unwrap();
        db.select_project("r", "a", "k", RangePred::lt(10)).unwrap();
        assert_eq!(db.map_count(), 1);
        let start = db.append_rows("r", &[vec![3, 200], vec![7, 201]]).unwrap();
        assert_eq!(start, 100);
        assert_eq!(db.catalog().table("r").unwrap().len(), 102);
        assert_eq!(
            db.catalog().table("r").unwrap().ints("a").unwrap()[100],
            200
        );
        // The cracked copy of `a` saw the new rows via the overlay.
        let (oids, _) = db
            .select(
                &RangeQuery::new("r", "a", RangePred::ge(200)),
                OutputMode::Stream,
            )
            .unwrap();
        assert_eq!(oids, vec![100, 101]);
        // `k` was never cracked: its first touch snapshots the grown base.
        let (oids, _) = db
            .select(
                &RangeQuery::new("r", "k", RangePred::eq(7)),
                OutputMode::Stream,
            )
            .unwrap();
        assert!(oids.contains(&101), "appended k=7 row visible: {oids:?}");
        // Sideways maps were invalidated; the rebuilt one sees the rows.
        assert_eq!(db.map_count(), 0);
        let tails = db
            .select_project("r", "a", "k", RangePred::ge(200))
            .unwrap();
        assert_eq!(tails.len(), 2);
        // Ragged rows are rejected before anything is staged.
        assert!(db.append_rows("r", &[vec![1]]).is_err());
        assert_eq!(db.append_rows("r", &[]).unwrap(), 102);
    }

    #[test]
    fn select_morsel_agrees_with_sequential_in_both_modes() {
        let vals: Vec<i64> = (0..20_000).map(|i| (i * 7919) % 20_000).collect();
        for mode in [
            ConcurrencyMode::SingleLock,
            ConcurrencyMode::Sharded { shards: 8 },
        ] {
            let mut db = AdaptiveDb::new()
                .with_concurrency(mode)
                .with_admission(AdmissionGate::new(8, 8));
            db.register(Table::from_int_columns("t", vec![("v", vals.clone())]).unwrap())
                .unwrap();
            let pred = RangePred::between(500, 15_000);
            let g = Governor::unbounded();
            let mut par = db.select_morsel("t", "v", pred, 8, &g, 1).unwrap();
            par.sort_unstable();
            let mut seq = db.shared_cracker("t", "v").unwrap().select_oids(pred);
            seq.sort_unstable();
            assert_eq!(par, seq, "{mode:?}");
            // A cancelled governor surfaces typed, with no partial answer.
            let g = Governor::unbounded();
            g.token().cancel();
            assert!(matches!(
                db.select_morsel("t", "v", pred, 8, &g, 1),
                Err(EngineError::Cancelled)
            ));
        }
    }

    #[test]
    fn total_stats_accumulate_across_columns() {
        let mut db = db();
        db.select(
            &RangeQuery::new("r", "a", RangePred::lt(50)),
            OutputMode::Count,
        )
        .unwrap();
        db.select(
            &RangeQuery::new("r", "k", RangePred::lt(5)),
            OutputMode::Count,
        )
        .unwrap();
        let s = db.total_crack_stats();
        assert_eq!(s.queries, 2);
        assert!(s.cracks >= 2);
        assert!(s.tuples_touched >= 200);
    }
}
