//! Admission control: a semaphore-style gate with per-session fairness.
//!
//! Cracking turns reads into writes, so an update-heavy burst is doubly
//! hostile to readers: it competes for execution slots *and* for the
//! column's write latches. [`AdmissionGate`] bounds both by capping the
//! number of in-flight operations, and keeps the cap fair by limiting how
//! many of those slots any single session may hold at once.
//!
//! # Fairness policy
//!
//! The gate has `total` permits and a `session_cap` (≤ `total`). An
//! operation is admitted when both hold:
//!
//! 1. fewer than `total` operations are in flight overall, and
//! 2. the requesting session holds fewer than `session_cap` permits.
//!
//! Because no session can occupy more than `session_cap` slots, a bursty
//! session (an `UpdateHeavy` writer fanned out over many threads) leaves
//! at least `total - session_cap` slots that only *other* sessions can
//! fill — a reader arriving during the burst waits for one permit release
//! at most, never for the whole burst to drain.
//!
//! # Wakeup policy
//!
//! A single permit release admits at most one extra operation, so waking
//! every waiter (the previous `notify_all` herd) buys nothing: all but
//! one loser re-check the counters and go back to sleep. The gate instead
//! tracks *which sessions are waiting* and, on release:
//!
//! * wakes **nobody** when no one is waiting (the common uncontended
//!   case — no syscall at all);
//! * wakes **one** waiter when every waiting session is below its cap
//!   (then any waiter the OS picks can take the freed slot, so one wakeup
//!   is both sufficient and non-stalling);
//! * **broadcasts** only in the mixed case — some waiting session is
//!   still at its cap. A single wakeup could then land on a cap-blocked
//!   waiter, which would re-sleep and leave the freed slot idle until the
//!   capped session's next release, stalling eligible waiters for
//!   arbitrarily long (this is a latency hazard, not a deadlock: a session
//!   at cap implies outstanding permits whose releases re-notify). The
//!   broadcast is the price of precision without per-session condvars,
//!   and it only fires while a session is saturating its cap.
//!
//! The same reasoning is model-checked: `analysis::models::gate` explores
//! every bounded interleaving of this protocol (and of a seeded
//! lost-wakeup variant, which the explorer duly catches) — see
//! `crates/analysis` and `CONCURRENCY.md`.
//!
//! Permits are RAII: [`AdmissionPermit`] releases its slot on drop, so an
//! early return or panic inside the admitted section cannot leak a slot.
//!
//! The mutex/condvar pair comes from the [`cracker_core::sync`] facade
//! (class `"admission"`), so gate acquisitions participate in lockdep's
//! lock-order graph under `LOCK_ANALYSIS=1`. The critical sections are a
//! few counter updates and never overlap query execution.

use crate::error::{EngineError, EngineResult};
use cracker_core::sync::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A counting gate bounding in-flight operations, with a per-session cap
/// so one session cannot monopolize the permits. See the module doc for
/// the fairness and wakeup policies.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    released: Condvar,
    total: usize,
    session_cap: usize,
    /// Bound on concurrently *waiting* operations: once this many waiters
    /// queue, further bounded acquisitions are shed immediately instead of
    /// joining the queue (load shedding — an unbounded queue just converts
    /// overload into latency). `usize::MAX` = unbounded, the default.
    max_waiters: usize,
    wakes: WakeStats,
}

#[derive(Debug, Default)]
struct GateState {
    in_flight: usize,
    per_session: HashMap<u64, usize>,
    /// Sessions currently blocked in [`AdmissionGate::admit`], with their
    /// waiter counts — the wakeup policy's eligibility input.
    waiting: HashMap<u64, usize>,
}

/// Wakeup counters (diagnostics and regression tests; relaxed atomics).
#[derive(Debug, Default)]
struct WakeStats {
    notify_one: AtomicU64,
    notify_all: AtomicU64,
    wakeups: AtomicU64,
}

/// Snapshot of the gate's wakeup counters — the observable side of the
/// wakeup policy, pinned by regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeCounts {
    /// Single-waiter wakeups issued (uniform-eligibility releases).
    pub notify_one: u64,
    /// Broadcasts issued (a waiting session was at its cap).
    pub notify_all: u64,
    /// Times any waiter woke inside `admit` (including spurious and
    /// losing wakeups — the herd metric).
    pub wakeups: u64,
}

/// A held execution slot; dropping it releases the slot and wakes
/// waiters per the wakeup policy.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
    session: u64,
}

impl AdmissionGate {
    /// A gate with `total` permits of which any one session may hold at
    /// most `session_cap` (clamped into `1..=total`).
    pub fn new(total: usize, session_cap: usize) -> Self {
        Self::with_wait_bound(total, session_cap, usize::MAX)
    }

    /// Like [`AdmissionGate::new`], with a bound on the wait queue: once
    /// `max_waiters` operations are already queued, further
    /// [`try_acquire_for`](Self::try_acquire_for) calls are shed
    /// immediately with [`EngineError::Overloaded`] instead of waiting.
    pub fn with_wait_bound(total: usize, session_cap: usize, max_waiters: usize) -> Self {
        let total = total.max(1);
        AdmissionGate {
            state: Mutex::with_class(GateState::default(), "admission"),
            released: Condvar::new(),
            total,
            session_cap: session_cap.clamp(1, total),
            max_waiters,
            wakes: WakeStats::default(),
        }
    }

    /// Total number of permits.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Maximum permits any single session may hold at once.
    pub fn session_cap(&self) -> usize {
        self.session_cap
    }

    /// Operations currently admitted (diagnostic snapshot).
    pub fn in_flight(&self) -> usize {
        self.state.lock().in_flight
    }

    /// Snapshot of the wakeup counters.
    pub fn wake_counts(&self) -> WakeCounts {
        WakeCounts {
            notify_one: self.wakes.notify_one.load(Ordering::Relaxed),
            notify_all: self.wakes.notify_all.load(Ordering::Relaxed),
            wakeups: self.wakes.wakeups.load(Ordering::Relaxed),
        }
    }

    /// Block until `session` may run one more operation, then take a
    /// permit for it.
    pub fn admit(&self, session: u64) -> AdmissionPermit<'_> {
        let mut st = self.state.lock();
        if !self.admissible(&st, session) {
            *st.waiting.entry(session).or_insert(0) += 1;
            loop {
                st = self.released.wait(st);
                self.wakes.wakeups.fetch_add(1, Ordering::Relaxed);
                if self.admissible(&st, session) {
                    break;
                }
            }
            remove_one(&mut st.waiting, session);
        }
        self.book(&mut st, session);
        AdmissionPermit {
            gate: self,
            session,
        }
    }

    /// Operations currently blocked waiting for a permit (diagnostic
    /// snapshot; also the input to the wait-queue bound).
    pub fn waiting(&self) -> usize {
        self.state.lock().waiting.values().sum()
    }

    /// Take a permit for `session`, waiting **at most** `timeout` — the
    /// bounded form of [`admit`](Self::admit) that a governed query uses
    /// so its deadline also bounds time spent queuing. Fails typed:
    /// [`EngineError::Overloaded`] when the wait queue is already at its
    /// bound (shed immediately, `waited` ≈ zero) or when every session
    /// slot stayed busy for the whole timeout.
    ///
    /// Every exit path — admitted, timed out, shed — removes this
    /// operation from the waiting set, so a timed-out waiter can never
    /// skew the wakeup policy's eligibility input (the leak the
    /// `analysis::models::gate_timeout_leaky` model demonstrates).
    pub fn try_acquire_for(
        &self,
        session: u64,
        timeout: Duration,
    ) -> EngineResult<AdmissionPermit<'_>> {
        let start = Instant::now();
        let mut st = self.state.lock();
        if self.admissible(&st, session) {
            self.book(&mut st, session);
            return Ok(AdmissionPermit {
                gate: self,
                session,
            });
        }
        let queued: usize = st.waiting.values().sum();
        if queued >= self.max_waiters {
            return Err(EngineError::Overloaded {
                capacity: self.total,
                waited: Duration::ZERO,
            });
        }
        *st.waiting.entry(session).or_insert(0) += 1;
        loop {
            let elapsed = start.elapsed();
            let Some(remaining) = timeout.checked_sub(elapsed) else {
                remove_one(&mut st.waiting, session);
                return Err(EngineError::Overloaded {
                    capacity: self.total,
                    waited: elapsed,
                });
            };
            let (guard, timed_out) = self.released.wait_timeout(st, remaining);
            st = guard;
            self.wakes.wakeups.fetch_add(1, Ordering::Relaxed);
            if self.admissible(&st, session) {
                remove_one(&mut st.waiting, session);
                self.book(&mut st, session);
                return Ok(AdmissionPermit {
                    gate: self,
                    session,
                });
            }
            if timed_out {
                remove_one(&mut st.waiting, session);
                return Err(EngineError::Overloaded {
                    capacity: self.total,
                    waited: start.elapsed(),
                });
            }
        }
    }

    /// Take a permit for `session` if one is available right now.
    pub fn try_admit(&self, session: u64) -> Option<AdmissionPermit<'_>> {
        let mut st = self.state.lock();
        if self.admissible(&st, session) {
            self.book(&mut st, session);
            Some(AdmissionPermit {
                gate: self,
                session,
            })
        } else {
            None
        }
    }

    fn admissible(&self, st: &GateState, session: u64) -> bool {
        st.in_flight < self.total
            && st.per_session.get(&session).copied().unwrap_or(0) < self.session_cap
    }

    fn book(&self, st: &mut GateState, session: u64) {
        st.in_flight += 1;
        *st.per_session.entry(session).or_insert(0) += 1;
    }
}

/// Decrement `map[key]`, removing the entry at zero.
fn remove_one(map: &mut HashMap<u64, usize>, key: u64) {
    if let Some(n) = map.get_mut(&key) {
        *n -= 1;
        if *n == 0 {
            map.remove(&key);
        }
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let wake = {
            let mut st = self.gate.state.lock();
            st.in_flight -= 1;
            remove_one(&mut st.per_session, self.session);
            if st.waiting.is_empty() {
                Wake::None
            } else if st
                .waiting
                .keys()
                .all(|s| st.per_session.get(s).copied().unwrap_or(0) < self.gate.session_cap)
            {
                Wake::One
            } else {
                Wake::All
            }
        };
        // Notify after unlock: the woken waiter re-acquires the state
        // mutex immediately, so signalling under it would just bounce the
        // wakeup through an extra block. The waiting-set snapshot taken
        // under the lock is what the decision is about — the set of
        // threads a notify can reach is exactly the waiters present when
        // it fires, and any thread arriving later re-checks the fresh
        // counters before it ever sleeps.
        match wake {
            Wake::None => {}
            Wake::One => {
                self.gate.wakes.notify_one.fetch_add(1, Ordering::Relaxed);
                self.gate.released.notify_one();
            }
            Wake::All => {
                self.gate.wakes.notify_all.fetch_add(1, Ordering::Relaxed);
                self.gate.released.notify_all();
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Wake {
    None,
    One,
    All,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn caps_are_clamped_and_reported() {
        let gate = AdmissionGate::new(0, 9);
        assert_eq!(gate.total(), 1);
        assert_eq!(gate.session_cap(), 1);
        let gate = AdmissionGate::new(8, 3);
        assert_eq!(gate.total(), 8);
        assert_eq!(gate.session_cap(), 3);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn session_cap_reserves_room_for_other_sessions() {
        let gate = AdmissionGate::new(4, 2);
        // Session 0 saturates its cap...
        let _a = gate.admit(0);
        let _b = gate.admit(0);
        assert!(gate.try_admit(0).is_none(), "session cap reached");
        // ...but other sessions still get the remaining permits.
        let _c = gate.admit(1);
        let _d = gate.admit(2);
        assert_eq!(gate.in_flight(), 4);
        assert!(gate.try_admit(3).is_none(), "gate full");
    }

    #[test]
    fn dropping_a_permit_releases_the_slot() {
        let gate = AdmissionGate::new(1, 1);
        {
            let _p = gate.admit(7);
            assert!(gate.try_admit(8).is_none());
        }
        assert_eq!(gate.in_flight(), 0);
        let _q = gate.admit(8);
        assert_eq!(gate.in_flight(), 1);
    }

    #[test]
    fn uncontended_releases_never_notify() {
        let gate = AdmissionGate::new(4, 2);
        for i in 0..100 {
            let _p = gate.admit(i);
        }
        let counts = gate.wake_counts();
        assert_eq!(counts.notify_one, 0, "no waiters, no wakeups");
        assert_eq!(counts.notify_all, 0);
        assert_eq!(counts.wakeups, 0);
    }

    #[test]
    fn uniform_eligibility_wakes_one_not_the_herd() {
        // Regression for the thundering herd: N threads from N distinct
        // sessions (the per-session cap never binds) contending on one
        // permit. Every release must use notify_one — never a broadcast —
        // so total observed wakeups stay bounded by one per release
        // instead of (waiters × releases).
        let threads = 8u64;
        let ops = 50u64;
        let gate = AdmissionGate::new(1, 1);
        let barrier = Barrier::new(threads as usize);
        std::thread::scope(|s| {
            for sid in 0..threads {
                let gate = &gate;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for _ in 0..ops {
                        let _p = gate.admit(sid);
                        std::hint::black_box(());
                    }
                });
            }
        });
        let releases = threads * ops;
        let counts = gate.wake_counts();
        assert_eq!(
            counts.notify_all, 0,
            "all waiting sessions below cap: broadcasts must never fire"
        );
        assert!(
            counts.notify_one <= releases,
            "at most one wakeup per release, got {} for {} releases",
            counts.notify_one,
            releases
        );
        // The herd bound: each release wakes at most one sleeper, plus
        // spurious-wakeup slack. With the old notify_all this count was
        // O(waiters) per release; allow 2x for OS-level spurious wakeups.
        assert!(
            counts.wakeups <= 2 * releases,
            "wakeup herd detected: {} wakeups for {} releases",
            counts.wakeups,
            releases
        );
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn capped_waiters_trigger_broadcast_but_never_stall() {
        // Mixed eligibility: a bursty session pinned at its cap forces the
        // broadcast path; eligible sessions must still drain promptly and
        // everything terminates.
        let gate = AdmissionGate::new(2, 1);
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // Session 0 fanned out over 3 threads: at most 1 in flight, so
            // its waiters are cap-blocked whenever a sibling holds.
            for _ in 0..3 {
                let gate = &gate;
                let done = &done;
                s.spawn(move || {
                    for _ in 0..100 {
                        let _p = gate.admit(0);
                        std::hint::black_box(());
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            // A second session must keep making progress throughout.
            let gate = &gate;
            let done = &done;
            s.spawn(move || {
                for _ in 0..100 {
                    let _p = gate.admit(1);
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(done.load(Ordering::Relaxed), 4);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn try_acquire_for_times_out_with_a_typed_overload_and_leaks_no_waiter() {
        let gate = AdmissionGate::new(1, 1);
        let _held = gate.admit(0);
        let err = gate
            .try_acquire_for(1, std::time::Duration::from_millis(10))
            .unwrap_err();
        assert!(err.is_overload(), "{err}");
        assert!(
            matches!(
                err,
                crate::error::EngineError::Overloaded { capacity: 1, .. }
            ),
            "{err}"
        );
        assert_eq!(
            gate.waiting(),
            0,
            "a timed-out waiter must leave the waiting set"
        );
        // The gate is fully usable afterwards.
        drop(_held);
        assert!(gate
            .try_acquire_for(1, std::time::Duration::from_millis(10))
            .is_ok());
    }

    #[test]
    fn try_acquire_for_admits_when_a_slot_frees_in_time() {
        let gate = AdmissionGate::new(1, 1);
        std::thread::scope(|s| {
            let gate = &gate;
            let held = gate.admit(0);
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                drop(held);
            });
            let permit = gate
                .try_acquire_for(1, std::time::Duration::from_secs(10))
                .expect("the slot frees after ~20ms, well inside the budget");
            drop(permit);
        });
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.waiting(), 0);
    }

    #[test]
    fn a_full_wait_queue_sheds_immediately_without_waiting() {
        // Wait bound zero: a bounded acquisition that cannot be admitted
        // right now is shed at once — deterministic load shedding, no
        // timing involved.
        let gate = AdmissionGate::with_wait_bound(1, 1, 0);
        let _held = gate.admit(0);
        let start = std::time::Instant::now();
        let err = gate
            .try_acquire_for(1, std::time::Duration::from_secs(60))
            .unwrap_err();
        assert!(err.is_overload(), "{err}");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "shedding must not consume the timeout"
        );
        match err {
            crate::error::EngineError::Overloaded { waited, .. } => {
                assert_eq!(waited, std::time::Duration::ZERO, "shed, not timed out")
            }
            other => panic!("expected Overloaded, got {other}"),
        }
    }

    #[test]
    fn concurrent_burst_never_exceeds_its_session_cap() {
        let gate = AdmissionGate::new(4, 2);
        let peak = AtomicUsize::new(0);
        let inside = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let gate = &gate;
                let (peak, inside, barrier) = (&peak, &inside, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    for _ in 0..50 {
                        let _p = gate.admit(0); // all threads: one bursty session
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        inside.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "burst session held more than its cap: {}",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn readers_make_progress_through_a_saturating_burst() {
        let gate = AdmissionGate::new(4, 2);
        let reader_ops = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // A bursty writer session fanned out over 6 threads.
            for _ in 0..6 {
                let gate = &gate;
                s.spawn(move || {
                    for _ in 0..200 {
                        let _p = gate.admit(0);
                        std::hint::black_box(());
                    }
                });
            }
            // Two reader sessions; both must finish (no starvation).
            for sid in 1..=2u64 {
                let gate = &gate;
                let reader_ops = &reader_ops;
                s.spawn(move || {
                    for _ in 0..200 {
                        let _p = gate.admit(sid);
                        reader_ops.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(reader_ops.load(Ordering::Relaxed), 400);
        assert_eq!(gate.in_flight(), 0);
    }
}
