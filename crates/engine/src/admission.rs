//! Admission control: a semaphore-style gate with per-session fairness.
//!
//! Cracking turns reads into writes, so an update-heavy burst is doubly
//! hostile to readers: it competes for execution slots *and* for the
//! column's write latches. [`AdmissionGate`] bounds both by capping the
//! number of in-flight operations, and keeps the cap fair by limiting how
//! many of those slots any single session may hold at once.
//!
//! # Fairness policy
//!
//! The gate has `total` permits and a `session_cap` (≤ `total`). An
//! operation is admitted when both hold:
//!
//! 1. fewer than `total` operations are in flight overall, and
//! 2. the requesting session holds fewer than `session_cap` permits.
//!
//! Because no session can occupy more than `session_cap` slots, a bursty
//! session (an `UpdateHeavy` writer fanned out over many threads) leaves
//! at least `total - session_cap` slots that only *other* sessions can
//! fill — a reader arriving during the burst waits for one permit release
//! at most, never for the whole burst to drain. Releases wake all waiters
//! (the state lock is held only for counter updates, so the thundering
//! herd is a handful of counter checks).
//!
//! Permits are RAII: [`AdmissionPermit`] releases its slot on drop, so an
//! early return or panic inside the admitted section cannot leak a slot.
//!
//! The shim `parking_lot` has no condvar, so the gate uses
//! `std::sync::{Mutex, Condvar}`; the critical sections are a few counter
//! updates and never overlap query execution.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, PoisonError};

/// A counting gate bounding in-flight operations, with a per-session cap
/// so one session cannot monopolize the permits. See the module doc for
/// the fairness policy.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    released: Condvar,
    total: usize,
    session_cap: usize,
}

#[derive(Debug, Default)]
struct GateState {
    in_flight: usize,
    per_session: HashMap<u64, usize>,
}

/// A held execution slot; dropping it releases the slot and wakes
/// waiters.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
    session: u64,
}

impl AdmissionGate {
    /// A gate with `total` permits of which any one session may hold at
    /// most `session_cap` (clamped into `1..=total`).
    pub fn new(total: usize, session_cap: usize) -> Self {
        let total = total.max(1);
        AdmissionGate {
            state: Mutex::new(GateState::default()),
            released: Condvar::new(),
            total,
            session_cap: session_cap.clamp(1, total),
        }
    }

    /// Total number of permits.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Maximum permits any single session may hold at once.
    pub fn session_cap(&self) -> usize {
        self.session_cap
    }

    /// Operations currently admitted (diagnostic snapshot).
    pub fn in_flight(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .in_flight
    }

    /// Block until `session` may run one more operation, then take a
    /// permit for it.
    pub fn admit(&self, session: u64) -> AdmissionPermit<'_> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if self.admissible(&st, session) {
                self.book(&mut st, session);
                return AdmissionPermit {
                    gate: self,
                    session,
                };
            }
            st = self
                .released
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Take a permit for `session` if one is available right now.
    pub fn try_admit(&self, session: u64) -> Option<AdmissionPermit<'_>> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if self.admissible(&st, session) {
            self.book(&mut st, session);
            Some(AdmissionPermit {
                gate: self,
                session,
            })
        } else {
            None
        }
    }

    fn admissible(&self, st: &GateState, session: u64) -> bool {
        st.in_flight < self.total
            && st.per_session.get(&session).copied().unwrap_or(0) < self.session_cap
    }

    fn book(&self, st: &mut GateState, session: u64) {
        st.in_flight += 1;
        *st.per_session.entry(session).or_insert(0) += 1;
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        {
            let mut st = self
                .gate
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.in_flight -= 1;
            if let Some(held) = st.per_session.get_mut(&self.session) {
                *held -= 1;
                if *held == 0 {
                    st.per_session.remove(&self.session);
                }
            }
        }
        self.gate.released.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn caps_are_clamped_and_reported() {
        let gate = AdmissionGate::new(0, 9);
        assert_eq!(gate.total(), 1);
        assert_eq!(gate.session_cap(), 1);
        let gate = AdmissionGate::new(8, 3);
        assert_eq!(gate.total(), 8);
        assert_eq!(gate.session_cap(), 3);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn session_cap_reserves_room_for_other_sessions() {
        let gate = AdmissionGate::new(4, 2);
        // Session 0 saturates its cap...
        let _a = gate.admit(0);
        let _b = gate.admit(0);
        assert!(gate.try_admit(0).is_none(), "session cap reached");
        // ...but other sessions still get the remaining permits.
        let _c = gate.admit(1);
        let _d = gate.admit(2);
        assert_eq!(gate.in_flight(), 4);
        assert!(gate.try_admit(3).is_none(), "gate full");
    }

    #[test]
    fn dropping_a_permit_releases_the_slot() {
        let gate = AdmissionGate::new(1, 1);
        {
            let _p = gate.admit(7);
            assert!(gate.try_admit(8).is_none());
        }
        assert_eq!(gate.in_flight(), 0);
        let _q = gate.admit(8);
        assert_eq!(gate.in_flight(), 1);
    }

    #[test]
    fn concurrent_burst_never_exceeds_its_session_cap() {
        let gate = AdmissionGate::new(4, 2);
        let peak = AtomicUsize::new(0);
        let inside = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let gate = &gate;
                let (peak, inside, barrier) = (&peak, &inside, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    for _ in 0..50 {
                        let _p = gate.admit(0); // all threads: one bursty session
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        inside.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "burst session held more than its cap: {}",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn readers_make_progress_through_a_saturating_burst() {
        let gate = AdmissionGate::new(4, 2);
        let reader_ops = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // A bursty writer session fanned out over 6 threads.
            for _ in 0..6 {
                let gate = &gate;
                s.spawn(move || {
                    for _ in 0..200 {
                        let _p = gate.admit(0);
                        std::hint::black_box(());
                    }
                });
            }
            // Two reader sessions; both must finish (no starvation).
            for sid in 1..=2u64 {
                let gate = &gate;
                let reader_ops = &reader_ops;
                s.spawn(move || {
                    for _ in 0..200 {
                        let _p = gate.admit(sid);
                        reader_ops.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(reader_ops.load(Ordering::Relaxed), 400);
        assert_eq!(gate.in_flight(), 0);
    }
}
