//! SQL-level cracking — the §5.1 black-box approach, as a comparator.
//!
//! "To peek into the future with little cost, we analyze the crackers
//! using an independent component at the SQL level using the database
//! engine as a black box. ... As SQL does not allow us to move tuples to
//! multiple result tables in one query, we have to resort to two scans
//! over the database:
//!
//! ```sql
//! select into frag001 r.k, r.a from r where pred(r.a);
//! select into frag002 r.k, r.a from r where not pred(r.a);
//! ```
//!
//! The cost components ... i) creation of the cracker index in the system
//! catalog, ii) the scans over the relation and iii) writing each tuple to
//! its own fragment." The paper concludes "it does not seem prudent to
//! implement a cracker scheme within the current offerings" — this module
//! exists to reproduce that conclusion quantitatively against
//! [`CrackEngine`](crate::engines::CrackEngine).

use crate::cost::RunStats;
use crate::engines::QueryEngine;
use crate::query::OutputMode;
use cracker_core::RangePred;
use std::time::Instant;

/// One fragment table: a full tuple copy plus its value bounds.
#[derive(Debug, Clone)]
struct Fragment {
    /// `(oid, value)` tuples, fully materialized (a real table copy).
    rows: Vec<(u32, i64)>,
    /// Smallest value in the fragment.
    min: i64,
    /// Largest value in the fragment.
    max: i64,
}

impl Fragment {
    fn from_rows(rows: Vec<(u32, i64)>) -> Self {
        let min = rows.iter().map(|&(_, v)| v).min().unwrap_or(i64::MAX);
        let max = rows.iter().map(|&(_, v)| v).max().unwrap_or(i64::MIN);
        Fragment { rows, min, max }
    }

    /// Can this fragment contain a value matching the predicate?
    fn overlaps(&self, pred: &RangePred<i64>) -> bool {
        if self.rows.is_empty() {
            return false;
        }
        // Compare the predicate window against the fragment bounds.
        let below_high = match pred.high {
            None => true,
            Some(b) => {
                if b.inclusive {
                    self.min <= b.value
                } else {
                    self.min < b.value
                }
            }
        };
        let above_low = match pred.low {
            None => true,
            Some(b) => {
                if b.inclusive {
                    self.max >= b.value
                } else {
                    self.max > b.value
                }
            }
        };
        below_high && above_low
    }

    /// Does every row of this fragment match the predicate?
    fn fully_inside(&self, pred: &RangePred<i64>) -> bool {
        !self.rows.is_empty() && pred.matches(self.min) && pred.matches(self.max)
    }
}

/// The SQL-level cracker: a partitioned table maintained through full
/// `SELECT INTO` fragment copies.
#[derive(Debug, Clone)]
pub struct SqlLevelCracker {
    fragments: Vec<Fragment>,
    result: Vec<(u32, i64)>,
}

impl SqlLevelCracker {
    /// Start with the whole column as one fragment.
    pub fn new(vals: Vec<i64>) -> Self {
        let rows = vals
            .into_iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v))
            .collect();
        SqlLevelCracker {
            fragments: vec![Fragment::from_rows(rows)],
            result: Vec::new(),
        }
    }

    /// Number of fragment tables currently registered.
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }
}

impl QueryEngine for SqlLevelCracker {
    fn name(&self) -> &'static str {
        "sql-crack"
    }

    fn run(&mut self, pred: RangePred<i64>, mode: OutputMode) -> RunStats {
        let start = Instant::now();
        let mut stats = RunStats::default();
        self.result.clear();
        let mut new_fragments = Vec::with_capacity(self.fragments.len() + 2);
        for frag in self.fragments.drain(..) {
            if !frag.overlaps(&pred) || frag.fully_inside(&pred) {
                // Routed by the catalog's (min,max): matching-or-not is
                // known without touching tuples; only result delivery
                // reads rows.
                if frag.fully_inside(&pred) {
                    stats.result_count += frag.rows.len() as u64;
                    if mode != OutputMode::Count {
                        stats.tuples_read += frag.rows.len() as u64;
                        self.result.extend_from_slice(&frag.rows);
                    }
                }
                new_fragments.push(frag);
                continue;
            }
            // A border fragment must be cracked. SQL cannot split into
            // multiple tables in one pass, so one full scan is paid per
            // destination: three pieces (below / matching / above) for a
            // double-sided predicate — the paper's three-piece Ξ split,
            // which keeps every fragment's value range convex so the
            // (min,max) catalog routing stays effective — two for a
            // one-sided one. Every tuple is written into a fresh fragment
            // table.
            let n_pieces: u64 = if pred.is_double_sided() { 3 } else { 2 };
            stats.tuples_read += n_pieces * frag.rows.len() as u64;
            let mut below = Vec::new();
            let mut matching = Vec::new();
            let mut above = Vec::new();
            for (o, v) in frag.rows {
                if pred.matches(v) {
                    matching.push((o, v));
                } else {
                    let is_below = match pred.low {
                        Some(b) => v < b.value || (!b.inclusive && v == b.value),
                        None => false,
                    };
                    if is_below {
                        below.push((o, v));
                    } else {
                        above.push((o, v));
                    }
                }
            }
            stats.tuples_written += (below.len() + matching.len() + above.len()) as u64;
            stats.result_count += matching.len() as u64;
            if mode != OutputMode::Count {
                self.result.extend_from_slice(&matching);
            }
            // Each non-empty piece becomes a new table in the catalog.
            for piece in [below, matching, above] {
                if !piece.is_empty() {
                    stats.tables_created += 1;
                    new_fragments.push(Fragment::from_rows(piece));
                }
            }
        }
        self.fragments = new_fragments;
        match mode {
            OutputMode::Materialize => {
                stats.tuples_written += stats.result_count;
                stats.tables_created += 1;
            }
            OutputMode::Stream => {
                stats.tuples_written += stats.result_count;
            }
            OutputMode::Count => {}
        }
        stats.elapsed = start.elapsed();
        stats
    }

    fn result_oids(&mut self, pred: RangePred<i64>) -> Vec<u32> {
        self.fragments
            .iter()
            .flat_map(|f| f.rows.iter())
            .filter(|&&(_, v)| pred.matches(v))
            .map(|&(o, _)| o)
            .collect()
    }

    fn len(&self) -> usize {
        self.fragments.iter().map(|f| f.rows.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::CrackEngine;

    #[test]
    fn answers_agree_with_kernel_cracking() {
        let vals: Vec<i64> = (0..2000).map(|i| (i * 17) % 2000).collect();
        let mut sql = SqlLevelCracker::new(vals.clone());
        let mut kernel = CrackEngine::new(vals);
        for (lo, hi) in [(100, 400), (50, 150), (1500, 1900), (0, 1999)] {
            let pred = RangePred::between(lo, hi);
            let mut a = sql.result_oids(pred);
            let mut b = kernel.result_oids(pred);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "[{lo},{hi}]");
            let sa = sql.run(pred, OutputMode::Count);
            let sb = kernel.run(pred, OutputMode::Count);
            assert_eq!(sa.result_count, sb.result_count);
        }
    }

    #[test]
    fn sql_cracking_pays_double_scans_and_table_creations() {
        let mut sql = SqlLevelCracker::new((0..1000).collect());
        let s = sql.run(RangePred::between(100, 200), OutputMode::Count);
        // One border fragment (the whole table) cracked three ways: one
        // scan per destination table.
        assert_eq!(s.tuples_read, 3000);
        // Every tuple rewritten into a fragment table.
        assert_eq!(s.tuples_written, 1000);
        // Three convex pieces: below / matching / above.
        assert_eq!(s.tables_created, 3);
        assert_eq!(sql.fragment_count(), 3);
    }

    #[test]
    fn repeat_query_is_answered_from_the_catalog() {
        let mut sql = SqlLevelCracker::new((0..1000).collect());
        sql.run(RangePred::between(100, 200), OutputMode::Count);
        let s = sql.run(RangePred::between(100, 200), OutputMode::Count);
        assert_eq!(s.tuples_read, 0, "fully-inside fragments count for free");
        assert_eq!(s.result_count, 101);
        assert_eq!(s.tables_created, 0);
    }

    #[test]
    fn tuples_are_never_lost_across_cracks() {
        let mut sql = SqlLevelCracker::new((0..500).rev().collect());
        for (lo, hi) in [(10, 50), (200, 300), (40, 220), (0, 499)] {
            sql.run(RangePred::between(lo, hi), OutputMode::Count);
            assert_eq!(sql.len(), 500, "partitioned table stays loss-less");
        }
    }

    #[test]
    fn kernel_cracking_writes_far_less_over_a_sequence() {
        // The §5.1 conclusion, in counters: the same query sequence costs
        // the SQL-level approach multiples of the kernel approach.
        let vals: Vec<i64> = (0..20_000).map(|i| (i * 31) % 20_000).collect();
        let mut sql = SqlLevelCracker::new(vals.clone());
        let mut kernel = CrackEngine::new(vals);
        let mut sql_io = 0;
        let mut kernel_io = 0;
        let mut sql_tables = 0;
        for step in 0..20 {
            let lo = (step * 997) % 18_000;
            let pred = RangePred::between(lo, lo + 1000);
            let a = sql.run(pred, OutputMode::Count);
            let b = kernel.run(pred, OutputMode::Count);
            sql_io += a.tuple_io();
            kernel_io += b.tuple_io();
            sql_tables += a.tables_created;
        }
        assert!(
            sql_io > kernel_io,
            "SQL-level {sql_io} must exceed kernel {kernel_io}"
        );
        assert!(sql_tables >= 20, "catalog churn: {sql_tables} tables");
    }
}
