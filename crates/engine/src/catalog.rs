//! The database catalog: named tables plus the fragment registry.
//!
//! Two layers, mirroring the paper's architecture: tables live in the
//! (conceptually persistent) catalog; cracked-piece administration lives in
//! the per-column in-memory cracker indices owned by the engines — *not*
//! here, because "each creation or removal of a partition \[as\] a change to
//! the table's schema and catalog entries ... requires locking a critical
//! resource" (§3.2).

use crate::error::{EngineError, EngineResult};
use crate::table::Table;
use std::collections::BTreeMap;

/// A catalog of named tables.
#[derive(Debug, Default)]
pub struct DbCatalog {
    tables: BTreeMap<String, Table>,
}

impl DbCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table under its own name.
    pub fn register(&mut self, table: Table) -> EngineResult<()> {
        let name = table.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(EngineError::DuplicateTable(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Look a table up by name.
    pub fn table(&self, name: &str) -> EngineResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_owned()))
    }

    /// Drop a table, returning it.
    pub fn drop_table(&mut self, name: &str) -> EngineResult<Table> {
        self.tables
            .remove(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_owned()))
    }

    /// Replace a table (e.g. with a reorganized incarnation), returning
    /// the previous one if present.
    pub fn replace(&mut self, table: Table) -> Option<Table> {
        self.tables.insert(table.name().to_owned(), table)
    }

    /// All table names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str) -> Table {
        Table::from_int_columns(name, vec![("a", vec![1, 2])]).unwrap()
    }

    #[test]
    fn register_lookup_drop() {
        let mut c = DbCatalog::new();
        c.register(t("r")).unwrap();
        assert_eq!(c.table("r").unwrap().len(), 2);
        assert_eq!(c.names(), vec!["r"]);
        c.drop_table("r").unwrap();
        assert!(c.is_empty());
        assert!(matches!(c.table("r"), Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut c = DbCatalog::new();
        c.register(t("r")).unwrap();
        assert!(matches!(
            c.register(t("r")),
            Err(EngineError::DuplicateTable(_))
        ));
    }

    #[test]
    fn replace_swaps_incarnation() {
        let mut c = DbCatalog::new();
        c.register(t("r")).unwrap();
        let bigger = Table::from_int_columns("r", vec![("a", vec![1, 2, 3])]).unwrap();
        let old = c.replace(bigger);
        assert_eq!(old.unwrap().len(), 2);
        assert_eq!(c.table("r").unwrap().len(), 3);
        assert_eq!(c.len(), 1);
    }
}
