//! The three access engines the experiments compare.
//!
//! * [`ScanEngine`] — the baseline: every query is a full table scan (the
//!   `nocrack` lines of Figures 10 and 11; "any performance gain is an
//!   effect of a hot table segment lying around in the DBMS cache").
//! * [`SortEngine`] — "an alternative strategy (and optimal in read-only
//!   settings) would be to completely sort or index the table upfront,
//!   which would require N·log(N) writes" (§2.2); the `sort` line of
//!   Figure 11. The first query pays the sort; later queries binary-search.
//! * [`CrackEngine`] — the adaptive approach: each query cracks at most
//!   its two border pieces and answers from a contiguous range.
//!
//! * [`StochasticEngine`] — cracking hardened with auxiliary random /
//!   median cuts, immune to the sequential-workload degeneration.
//!
//! All of them implement [`QueryEngine`] and report work in the cost
//! units of §2.2 ([`RunStats`]), so a benchmark can swap them freely.

use crate::cost::RunStats;
use crate::query::OutputMode;
use cracker_core::stochastic::{StochasticCracker, StochasticPolicy};
use cracker_core::{CrackerColumn, CrackerConfig, RangePred};
use std::time::Instant;

/// A single-column access engine answering range queries under one of the
/// three output modes of Figure 1.
pub trait QueryEngine {
    /// Engine label for experiment output.
    fn name(&self) -> &'static str;

    /// Answer one range query, returning cost counters.
    fn run(&mut self, pred: RangePred<i64>, mode: OutputMode) -> RunStats;

    /// The qualifying OIDs (for correctness cross-checks between engines;
    /// not part of the timed path).
    fn result_oids(&mut self, pred: RangePred<i64>) -> Vec<u32>;

    /// Number of tuples stored.
    fn len(&self) -> usize;

    /// True when no tuples are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Charge the output-mode-dependent write costs to `stats`.
///
/// Materialization creates a table and writes every result tuple
/// (Figure 1a); streaming ships every result tuple to the front-end
/// (Figure 1b); counting writes nothing (Figure 1c).
fn charge_output(stats: &mut RunStats, mode: OutputMode) {
    match mode {
        OutputMode::Materialize => {
            stats.tuples_written += stats.result_count;
            stats.tables_created += 1;
        }
        OutputMode::Stream => {
            stats.tuples_written += stats.result_count;
        }
        OutputMode::Count => {}
    }
}

/// Baseline engine: full scan per query.
#[derive(Debug, Clone)]
pub struct ScanEngine {
    vals: Vec<i64>,
    /// Result buffer reused across queries so measurement reflects the
    /// scan, not allocator churn.
    result: Vec<(u32, i64)>,
}

impl ScanEngine {
    /// Build over a value column (OIDs are positions).
    pub fn new(vals: Vec<i64>) -> Self {
        ScanEngine {
            vals,
            result: Vec::new(),
        }
    }
}

impl QueryEngine for ScanEngine {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn run(&mut self, pred: RangePred<i64>, mode: OutputMode) -> RunStats {
        let start = Instant::now();
        let mut stats = RunStats {
            tuples_read: self.vals.len() as u64,
            ..Default::default()
        };
        match mode {
            OutputMode::Count => {
                stats.result_count = self.vals.iter().filter(|&&v| pred.matches(v)).count() as u64;
            }
            _ => {
                self.result.clear();
                for (i, &v) in self.vals.iter().enumerate() {
                    if pred.matches(v) {
                        self.result.push((i as u32, v));
                    }
                }
                stats.result_count = self.result.len() as u64;
            }
        }
        charge_output(&mut stats, mode);
        stats.elapsed = start.elapsed();
        stats
    }

    fn result_oids(&mut self, pred: RangePred<i64>) -> Vec<u32> {
        self.vals
            .iter()
            .enumerate()
            .filter(|(_, &v)| pred.matches(v))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn len(&self) -> usize {
        self.vals.len()
    }
}

/// Sort-upfront engine: the first query pays a full sort, every later
/// query is two binary searches plus a result read.
#[derive(Debug, Clone)]
pub struct SortEngine {
    /// `(value, oid)` pairs; sorted by value after the first query.
    pairs: Vec<(i64, u32)>,
    sorted: bool,
    result: Vec<(u32, i64)>,
}

impl SortEngine {
    /// Build over a value column (OIDs are positions). The sort is paid
    /// lazily by the first query, as in Figure 11's `sort` line.
    pub fn new(vals: Vec<i64>) -> Self {
        let pairs = vals
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, i as u32))
            .collect();
        SortEngine {
            pairs,
            sorted: false,
            result: Vec::new(),
        }
    }

    /// Slot range of qualifying tuples in the sorted array.
    fn locate(&self, pred: &RangePred<i64>) -> std::ops::Range<usize> {
        let start = match pred.low {
            None => 0,
            Some(b) => {
                if b.inclusive {
                    self.pairs.partition_point(|&(v, _)| v < b.value)
                } else {
                    self.pairs.partition_point(|&(v, _)| v <= b.value)
                }
            }
        };
        let end = match pred.high {
            None => self.pairs.len(),
            Some(b) => {
                if b.inclusive {
                    self.pairs.partition_point(|&(v, _)| v <= b.value)
                } else {
                    self.pairs.partition_point(|&(v, _)| v < b.value)
                }
            }
        };
        start..end.max(start)
    }
}

impl QueryEngine for SortEngine {
    fn name(&self) -> &'static str {
        "sort"
    }

    fn run(&mut self, pred: RangePred<i64>, mode: OutputMode) -> RunStats {
        let start = Instant::now();
        let mut stats = RunStats::default();
        if !self.sorted {
            // The upfront investment: N reads plus N·log2(N) write cost,
            // the unit the paper uses for the sort alternative.
            self.pairs.sort_unstable();
            self.sorted = true;
            let n = self.pairs.len() as u64;
            stats.tuples_read += n;
            stats.tuples_written += n * (64 - n.leading_zeros() as u64).max(1);
        }
        let range = self.locate(&pred);
        // Binary search probes: log2(n) reads per bound.
        let probes = (usize::BITS - self.pairs.len().leading_zeros()) as u64;
        stats.tuples_read += 2 * probes;
        stats.result_count = range.len() as u64;
        match mode {
            OutputMode::Count => {}
            _ => {
                stats.tuples_read += range.len() as u64;
                self.result.clear();
                self.result
                    .extend(self.pairs[range].iter().map(|&(v, o)| (o, v)));
            }
        }
        charge_output(&mut stats, mode);
        stats.elapsed = start.elapsed();
        stats
    }

    fn result_oids(&mut self, pred: RangePred<i64>) -> Vec<u32> {
        if !self.sorted {
            self.pairs.sort_unstable();
            self.sorted = true;
        }
        self.pairs[self.locate(&pred)]
            .iter()
            .map(|&(_, o)| o)
            .collect()
    }

    fn len(&self) -> usize {
        self.pairs.len()
    }
}

/// The adaptive engine: queries crack the store as a byproduct.
#[derive(Debug)]
pub struct CrackEngine {
    column: CrackerColumn<i64>,
    result: Vec<(u32, i64)>,
}

impl CrackEngine {
    /// Build with the default cracker configuration.
    pub fn new(vals: Vec<i64>) -> Self {
        Self::with_config(vals, CrackerConfig::default())
    }

    /// Build with an explicit cracker configuration (cut-off granule,
    /// piece budget, fusion policy ...).
    pub fn with_config(vals: Vec<i64>, config: CrackerConfig) -> Self {
        CrackEngine {
            column: CrackerColumn::with_config(vals, config),
            result: Vec::new(),
        }
    }

    /// The underlying cracked column (piece inspection, update staging).
    pub fn column(&self) -> &CrackerColumn<i64> {
        &self.column
    }

    /// Mutable access to the cracked column (for staging updates).
    pub fn column_mut(&mut self) -> &mut CrackerColumn<i64> {
        &mut self.column
    }
}

impl QueryEngine for CrackEngine {
    fn name(&self) -> &'static str {
        "crack"
    }

    fn run(&mut self, pred: RangePred<i64>, mode: OutputMode) -> RunStats {
        let start = Instant::now();
        let before = *self.column.stats();
        let sel = self.column.select(pred);
        let delta = self.column.stats().delta_since(&before);
        let mut stats = RunStats {
            // Reads: tuples inspected while partitioning plus cut-off edge
            // scans.
            tuples_read: delta.tuples_touched + delta.edge_scanned,
            // Writes: tuples relocated by the crack (the (1−σ)N investment
            // of §2.2).
            tuples_written: delta.tuples_moved,
            result_count: sel.count() as u64,
            ..Default::default()
        };
        match mode {
            OutputMode::Count => {
                // A contiguous cracked answer is counted from the index
                // alone — no data touched.
            }
            _ => {
                stats.tuples_read += sel.count() as u64;
                self.result.clear();
                self.column.copy_selection_into(&sel, &mut self.result);
            }
        }
        charge_output(&mut stats, mode);
        stats.elapsed = start.elapsed();
        stats
    }

    fn result_oids(&mut self, pred: RangePred<i64>) -> Vec<u32> {
        self.column.select_oids(pred)
    }

    fn len(&self) -> usize {
        self.column.len()
    }
}

/// The robust adaptive engine: cracking plus workload-independent
/// auxiliary cuts ([`StochasticPolicy`]), so adversarial (e.g.
/// sequential) query sequences cannot hold the per-query cost at Θ(N).
/// Same [`QueryEngine`] surface as the other three, so experiments can
/// swap it in anywhere `crack` runs.
#[derive(Debug)]
pub struct StochasticEngine {
    column: StochasticCracker<i64>,
    result: Vec<(u32, i64)>,
}

impl StochasticEngine {
    /// Build with the default cracker configuration and the given cut
    /// policy. `seed` fixes the auxiliary pivots.
    pub fn new(vals: Vec<i64>, policy: StochasticPolicy, seed: u64) -> Self {
        Self::with_config(vals, CrackerConfig::default(), policy, seed)
    }

    /// Build with an explicit cracker configuration.
    pub fn with_config(
        vals: Vec<i64>,
        config: CrackerConfig,
        policy: StochasticPolicy,
        seed: u64,
    ) -> Self {
        StochasticEngine {
            column: StochasticCracker::with_config(vals, config, policy, seed),
            result: Vec::new(),
        }
    }

    /// The wrapped stochastic column (auxiliary-cut counters, policy).
    pub fn column(&self) -> &StochasticCracker<i64> {
        &self.column
    }
}

impl QueryEngine for StochasticEngine {
    fn name(&self) -> &'static str {
        "stochastic"
    }

    fn run(&mut self, pred: RangePred<i64>, mode: OutputMode) -> RunStats {
        let start = Instant::now();
        let before = *self.column.column().stats();
        let sel = self.column.select(pred);
        let delta = self.column.column().stats().delta_since(&before);
        let mut stats = RunStats {
            tuples_read: delta.tuples_touched + delta.edge_scanned,
            tuples_written: delta.tuples_moved,
            result_count: sel.count() as u64,
            ..Default::default()
        };
        match mode {
            OutputMode::Count => {}
            _ => {
                stats.tuples_read += sel.count() as u64;
                self.result.clear();
                self.column
                    .column()
                    .copy_selection_into(&sel, &mut self.result);
            }
        }
        charge_output(&mut stats, mode);
        stats.elapsed = start.elapsed();
        stats
    }

    fn result_oids(&mut self, pred: RangePred<i64>) -> Vec<u32> {
        self.column.select_oids(pred)
    }

    fn len(&self) -> usize {
        self.column.column().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn engines(vals: Vec<i64>) -> (ScanEngine, SortEngine, CrackEngine) {
        (
            ScanEngine::new(vals.clone()),
            SortEngine::new(vals.clone()),
            CrackEngine::new(vals),
        )
    }

    #[test]
    fn all_engines_agree_on_results() {
        let vals: Vec<i64> = (0..500).map(|i| (i * 7919) % 500).collect();
        let (mut scan, mut sort, mut crack) = engines(vals.clone());
        let mut stochastic = StochasticEngine::new(vals, StochasticPolicy::DD1R, 3);
        for (lo, hi) in [(10, 50), (100, 400), (0, 499), (490, 499)] {
            let pred = RangePred::between(lo, hi);
            let mut a = scan.result_oids(pred);
            let mut b = sort.result_oids(pred);
            let mut c = crack.result_oids(pred);
            let mut d = stochastic.result_oids(pred);
            a.sort_unstable();
            b.sort_unstable();
            c.sort_unstable();
            d.sort_unstable();
            assert_eq!(a, b, "scan vs sort on [{lo},{hi}]");
            assert_eq!(a, c, "scan vs crack on [{lo},{hi}]");
            assert_eq!(a, d, "scan vs stochastic on [{lo},{hi}]");
        }
    }

    #[test]
    fn stochastic_engine_reports_costs_and_converges() {
        let n = 20_000usize;
        let vals: Vec<i64> = (0..n as i64).rev().collect();
        let mut e = StochasticEngine::new(vals, StochasticPolicy::DDR { floor: 512 }, 1);
        assert_eq!(e.name(), "stochastic");
        assert_eq!(e.len(), n);
        // A sequential sweep: per-query reads must fall off, unlike plain
        // cracking where they stay ~tail-sized.
        let w = (n / 100) as i64;
        let mut plain = CrackEngine::new((0..n as i64).rev().collect());
        let (mut stoch_reads, mut plain_reads) = (0u64, 0u64);
        for i in 0..100i64 {
            let pred = RangePred::half_open(i * w, (i + 1) * w);
            let s = e.run(pred, OutputMode::Count);
            assert_eq!(s.result_count, w as u64);
            stoch_reads += s.tuples_read;
            plain_reads += plain.run(pred, OutputMode::Count).tuples_read;
        }
        assert!(
            stoch_reads * 2 < plain_reads,
            "auxiliary cuts must beat plain cracking on the sweep              (stochastic {stoch_reads}, plain {plain_reads})"
        );
        assert!(e.column().stats().auxiliary_cuts > 0);
    }

    #[test]
    fn scan_reads_everything_every_time() {
        let mut e = ScanEngine::new((0..1000).collect());
        let s1 = e.run(RangePred::between(10, 20), OutputMode::Count);
        let s2 = e.run(RangePred::between(10, 20), OutputMode::Count);
        assert_eq!(s1.tuples_read, 1000);
        assert_eq!(s2.tuples_read, 1000, "scans never get cheaper");
        assert_eq!(s1.result_count, 11);
    }

    #[test]
    fn sort_pays_once_then_probes() {
        let mut e = SortEngine::new((0..1024).rev().collect());
        let s1 = e.run(RangePred::between(10, 20), OutputMode::Count);
        assert!(
            s1.tuples_written >= 1024 * 10,
            "first query pays ~N log N writes, got {}",
            s1.tuples_written
        );
        let s2 = e.run(RangePred::between(500, 700), OutputMode::Count);
        assert_eq!(s2.tuples_written, 0);
        assert!(
            s2.tuples_read <= 64,
            "later count queries are probe-only, got {}",
            s2.tuples_read
        );
        assert_eq!(s2.result_count, 201);
    }

    #[test]
    fn crack_converges_to_near_zero_reads() {
        let mut e = CrackEngine::new((0..10_000).rev().collect());
        let first = e.run(RangePred::between(1000, 2000), OutputMode::Count);
        assert_eq!(first.tuples_read, 10_000, "virgin column: full touch");
        let repeat = e.run(RangePred::between(1000, 2000), OutputMode::Count);
        assert_eq!(repeat.tuples_read, 0, "repeat count is index-only");
        assert_eq!(repeat.result_count, 1001);
    }

    #[test]
    fn crack_write_investment_shrinks_over_a_sequence() {
        let mut e = CrackEngine::new((0..50_000).map(|i| (i * 31) % 50_000).collect());
        let mut prev_io = u64::MAX;
        for step in 0..6 {
            let lo = step * 8000;
            let s = e.run(RangePred::between(lo, lo + 2500), OutputMode::Count);
            let io = s.tuple_io();
            // The first query's range starts at the domain edge, so it
            // barely reorganizes anything and the *second* query is the
            // peak investment under some kernel families' `moved`
            // accounting (the SIMD crack-in-three reports destination
            // displacement, not Dutch-flag swaps). Amortization — the
            // property under test — must hold from there on under every
            // kernel.
            if step >= 2 {
                assert!(
                    io <= prev_io || io < 5000,
                    "step {step}: tuple io should trend down ({io} after {prev_io})"
                );
            }
            prev_io = io.max(1);
        }
    }

    #[test]
    fn output_modes_charge_differently() {
        let vals: Vec<i64> = (0..100).collect();
        let mut e = ScanEngine::new(vals);
        let m = e.run(RangePred::lt(50), OutputMode::Materialize);
        let p = e.run(RangePred::lt(50), OutputMode::Stream);
        let c = e.run(RangePred::lt(50), OutputMode::Count);
        assert_eq!(m.result_count, 50);
        assert_eq!(m.tables_created, 1);
        assert_eq!(p.tables_created, 0);
        assert_eq!(p.tuples_written, 50);
        assert_eq!(c.tuples_written, 0);
    }

    #[test]
    fn empty_engine_answers_empty() {
        let (mut scan, mut sort, mut crack) = engines(vec![]);
        for e in [&mut scan as &mut dyn QueryEngine, &mut sort, &mut crack] {
            let s = e.run(RangePred::between(1, 5), OutputMode::Count);
            assert_eq!(s.result_count, 0, "{}", e.name());
            assert_eq!(e.len(), 0);
        }
    }

    proptest! {
        #[test]
        fn prop_engines_agree_on_arbitrary_sequences(
            vals in proptest::collection::vec(-100i64..100, 1..200),
            queries in proptest::collection::vec((-110i64..110, -110i64..110), 1..12),
        ) {
            let (mut scan, mut sort, mut crack) = engines(vals);
            for (a, b) in queries {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let pred = RangePred::between(lo, hi);
                let mut x = scan.result_oids(pred);
                let mut y = sort.result_oids(pred);
                let mut z = crack.result_oids(pred);
                x.sort_unstable();
                y.sort_unstable();
                z.sort_unstable();
                prop_assert_eq!(&x, &y);
                prop_assert_eq!(&x, &z);
                // Counts reported by run() agree too.
                let sc = scan.run(pred, OutputMode::Count).result_count;
                prop_assert_eq!(sc as usize, x.len());
            }
        }
    }
}
