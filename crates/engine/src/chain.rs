//! k-way linear join chains — the Figure 9 experiment.
//!
//! "The tuples form random integer pairs, which means we can 'unroll' the
//! reachability relation using lengthy join sequences. We tested the
//! systems with sequences of up to 128 joins. ... the join-optimizer
//! currently deployed (too) quickly reaches its limitations and falls back
//! to a default solution. The effect is an expensive nested-loop join or
//! even breaking the system by running out of optimizer resource space.
//! ... A notable exception is MonetDB, which is built around the notion of
//! binary tables and is capable \[of\] handling such lengthy join sequences
//! efficiently" (§5.1).
//!
//! A chain joins `R1.b = R2.a`, `R2.b = R3.a`, ..., unrolling reachability
//! through `k` copies of a binary relation. Three strategies:
//!
//! * [`ChainStrategy::HashChain`] — MonetDB-like: one hash join per step,
//!   linear in `k·N`;
//! * [`ChainStrategy::NestedLoop`] — the degraded default, `O(k·N²)`;
//! * [`ChainStrategy::Optimizer`] — a traditional optimizer with a
//!   resource budget: within budget it produces the hash plan (but pays
//!   plan-search cost growing exponentially with the chain length), beyond
//!   it falls back to nested loops, and past a hard cap it gives up —
//!   exactly the three regimes the paper observed.

use crate::error::{EngineError, EngineResult};
use crate::exec::batch::BLOCK_OIDS;
use crate::exec::ExecMode;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A binary relation `a -> b` as two aligned columns.
#[derive(Debug, Clone)]
pub struct BinaryRelation {
    /// Source values.
    pub a: Vec<i64>,
    /// Destination values.
    pub b: Vec<i64>,
}

impl BinaryRelation {
    /// Construct, verifying alignment.
    ///
    /// # Panics
    /// Panics if the columns differ in length.
    pub fn new(a: Vec<i64>, b: Vec<i64>) -> Self {
        assert_eq!(a.len(), b.len(), "binary relation columns must align");
        BinaryRelation { a, b }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// True when the relation has no pairs.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }
}

/// How the chain is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainStrategy {
    /// One hash join per step (binary-table engine behaviour).
    HashChain,
    /// Exhaustive nested loops per step (the degraded default).
    NestedLoop,
    /// Budgeted traditional optimizer: hash plan within `plan_budget`
    /// joins, nested-loop fallback up to `fail_cap`, error beyond.
    Optimizer {
        /// Chain length up to which the optimizer still finds the hash plan.
        plan_budget: usize,
        /// Chain length at which the optimizer runs out of resource space.
        fail_cap: usize,
    },
}

/// Outcome of a chain evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainReport {
    /// Number of join steps performed (`k`-way join = `k-1` steps over
    /// `k` relations).
    pub steps: usize,
    /// Result cardinality.
    pub rows: usize,
    /// Tuples read across all steps.
    pub tuples_read: u64,
    /// Tuple comparisons (meaningful for nested loops).
    pub comparisons: u64,
    /// Simulated optimizer plan states explored (Optimizer strategy only).
    pub plan_states: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Evaluate the k-way linear join over `relations` (joining each
/// relation's `b` to the next one's `a`) with the given strategy. Returns
/// the report, or [`EngineError::OptimizerExhausted`] when the budgeted
/// optimizer breaks — the paper's "breaking the system" regime.
pub fn run_chain(
    relations: &[BinaryRelation],
    strategy: ChainStrategy,
) -> EngineResult<ChainReport> {
    run_chain_with(relations, strategy, ExecMode::from_env())
}

/// [`run_chain`] with an explicit pipeline choice. [`ExecMode::Vector`]
/// evaluates each hash step through a CSR-shaped join index (dense key
/// slots, one prefix-summed adjacency arena instead of a `Vec` per key)
/// probed a block of frontier entries at a time; [`ExecMode::Tuple`] is
/// the original per-entry walk. Both produce identical reports — the
/// read/comparison accounting does not depend on the pipeline.
pub fn run_chain_with(
    relations: &[BinaryRelation],
    strategy: ChainStrategy,
    mode: ExecMode,
) -> EngineResult<ChainReport> {
    let start = Instant::now();
    let steps = relations.len().saturating_sub(1);
    let mut report = ChainReport {
        steps,
        rows: 0,
        tuples_read: 0,
        comparisons: 0,
        plan_states: 0,
        elapsed: Duration::ZERO,
    };
    if relations.is_empty() {
        report.elapsed = start.elapsed();
        return Ok(report);
    }

    let effective = match strategy {
        ChainStrategy::HashChain => ChainStrategy::HashChain,
        ChainStrategy::NestedLoop => ChainStrategy::NestedLoop,
        ChainStrategy::Optimizer {
            plan_budget,
            fail_cap,
        } => {
            if steps >= fail_cap {
                return Err(EngineError::OptimizerExhausted {
                    joins: steps,
                    budget: fail_cap,
                });
            }
            // Left-deep plan enumeration: the search space grows
            // exponentially in the chain length; count (capped) explored
            // states so experiments can display the blow-up.
            report.plan_states = 1u64.checked_shl(steps.min(40) as u32).unwrap_or(u64::MAX);
            if steps <= plan_budget {
                ChainStrategy::HashChain
            } else {
                ChainStrategy::NestedLoop
            }
        }
    };

    // The running frontier: (origin row, current destination value).
    let first = &relations[0];
    let mut frontier: Vec<(u32, i64)> = first
        .b
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u32, v))
        .collect();
    report.tuples_read += first.len() as u64;

    let mut scratch: Vec<(u32, i64)> = Vec::new();
    for rel in &relations[1..] {
        match effective {
            ChainStrategy::HashChain => {
                report.tuples_read += rel.len() as u64 + frontier.len() as u64;
                match mode {
                    ExecMode::Vector => {
                        hash_step_vector(rel, &mut frontier, &mut scratch);
                    }
                    ExecMode::Tuple => {
                        let mut index: HashMap<i64, Vec<usize>> = HashMap::new();
                        for (i, &av) in rel.a.iter().enumerate() {
                            index.entry(av).or_default().push(i);
                        }
                        let mut next = Vec::with_capacity(frontier.len());
                        for &(origin, v) in &frontier {
                            if let Some(rows) = index.get(&v) {
                                for &row in rows {
                                    next.push((origin, rel.b[row]));
                                }
                            }
                        }
                        frontier = next;
                    }
                }
            }
            ChainStrategy::NestedLoop => {
                report.tuples_read += rel.len() as u64 + frontier.len() as u64;
                let mut next = Vec::with_capacity(frontier.len());
                for &(origin, v) in &frontier {
                    for (i, &av) in rel.a.iter().enumerate() {
                        report.comparisons += 1;
                        if av == v {
                            next.push((origin, rel.b[i]));
                        }
                    }
                }
                frontier = next;
            }
            ChainStrategy::Optimizer { .. } => unreachable!("resolved above"),
        }
    }
    report.rows = frontier.len();
    report.elapsed = start.elapsed();
    Ok(report)
}

/// One vectorized hash-chain step. The join index is CSR-shaped: keys
/// get dense ids on a first pass (counting fan-out), a prefix sum turns
/// the counts into offsets, and a second pass scatters row numbers into
/// a single adjacency arena — no per-key `Vec` allocations. The frontier
/// is then probed a [`BLOCK_OIDS`] chunk at a time into `scratch`, which
/// is swapped with the frontier and reused (its capacity persists across
/// steps).
fn hash_step_vector(
    rel: &BinaryRelation,
    frontier: &mut Vec<(u32, i64)>,
    scratch: &mut Vec<(u32, i64)>,
) {
    // Pass 1: dense ids + fan-out counts.
    let mut slot: HashMap<i64, u32> = HashMap::with_capacity(rel.len());
    let mut counts: Vec<u32> = Vec::new();
    for &av in &rel.a {
        match slot.get(&av) {
            Some(&id) => counts[id as usize] += 1,
            None => {
                slot.insert(av, counts.len() as u32);
                counts.push(1);
            }
        }
    }
    // Prefix sum: starts[id]..starts[id+1] is key id's adjacency span.
    let mut starts: Vec<u32> = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    starts.push(0);
    for &c in &counts {
        acc += c;
        starts.push(acc);
    }
    // Pass 2: scatter row numbers into the arena.
    let mut fill: Vec<u32> = starts[..counts.len()].to_vec();
    let mut adj: Vec<u32> = vec![0; rel.len()];
    for (i, &av) in rel.a.iter().enumerate() {
        let id = slot[&av] as usize;
        adj[fill[id] as usize] = i as u32;
        fill[id] += 1;
    }
    // Probe block-at-a-time into the reused scratch buffer.
    scratch.clear();
    scratch.reserve(frontier.len());
    for chunk in frontier.chunks(BLOCK_OIDS) {
        for &(origin, v) in chunk {
            if let Some(&id) = slot.get(&v) {
                let lo = starts[id as usize] as usize;
                let hi = starts[id as usize + 1] as usize;
                for &row in &adj[lo..hi] {
                    scratch.push((origin, rel.b[row as usize]));
                }
            }
        }
    }
    std::mem::swap(frontier, scratch);
}

/// Build `k` copies of a permutation relation (`a` = identity, `b` = the
/// permutation), the self-join-chain workload of Figure 9: every join is
/// 1:1, so the result stays at `N` rows while the work per strategy
/// diverges.
pub fn permutation_chain(perm: &[i64], k: usize) -> Vec<BinaryRelation> {
    let identity: Vec<i64> = (0..perm.len() as i64).collect();
    (0..k)
        .map(|_| BinaryRelation::new(identity.clone(), perm.to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perm(n: usize) -> Vec<i64> {
        // A fixed-point-free-ish deterministic permutation.
        (0..n as i64).map(|i| (i * 7 + 3) % n as i64).collect()
    }

    #[test]
    fn hash_chain_on_permutations_keeps_n_rows() {
        let rels = permutation_chain(&perm(100), 5);
        let r = run_chain(&rels, ChainStrategy::HashChain).unwrap();
        assert_eq!(r.rows, 100);
        assert_eq!(r.steps, 4);
        assert_eq!(r.comparisons, 0);
    }

    #[test]
    fn nested_loop_agrees_with_hash_chain() {
        let rels = permutation_chain(&perm(40), 4);
        let h = run_chain(&rels, ChainStrategy::HashChain).unwrap();
        let n = run_chain(&rels, ChainStrategy::NestedLoop).unwrap();
        assert_eq!(h.rows, n.rows);
        // 3 steps x 40 x 40 exhaustive comparisons.
        assert_eq!(n.comparisons, 3 * 40 * 40);
    }

    #[test]
    fn chain_composition_is_correct() {
        // Permutation p: i -> i+1 mod 4; chain of 3 relations computes p∘p.
        let p = vec![1i64, 2, 3, 0];
        let rels = permutation_chain(&p, 3);
        let r = run_chain(&rels, ChainStrategy::HashChain).unwrap();
        assert_eq!(r.rows, 4);
        // Verify one composed path explicitly via a manual frontier.
        // Start origin 0: b=1, then rel2 a=1 -> b=2, rel3 a=2 -> b=3.
        // (The report only carries counts; correctness of composition is
        // covered by the row count staying 4 for a permutation and by the
        // nested-loop agreement test.)
        assert_eq!(r.steps, 2);
    }

    #[test]
    fn optimizer_within_budget_uses_hash_plan() {
        let rels = permutation_chain(&perm(50), 6);
        let r = run_chain(
            &rels,
            ChainStrategy::Optimizer {
                plan_budget: 10,
                fail_cap: 100,
            },
        )
        .unwrap();
        assert_eq!(r.comparisons, 0, "hash plan chosen");
        assert_eq!(r.plan_states, 1 << 5);
    }

    #[test]
    fn optimizer_beyond_budget_falls_back_to_nested_loop() {
        let rels = permutation_chain(&perm(30), 6);
        let r = run_chain(
            &rels,
            ChainStrategy::Optimizer {
                plan_budget: 3,
                fail_cap: 100,
            },
        )
        .unwrap();
        assert!(r.comparisons > 0, "nested-loop fallback");
        let h = run_chain(&rels, ChainStrategy::HashChain).unwrap();
        assert_eq!(r.rows, h.rows, "fallback is slower, not wrong");
    }

    #[test]
    fn optimizer_past_fail_cap_breaks() {
        let rels = permutation_chain(&perm(10), 20);
        let err = run_chain(
            &rels,
            ChainStrategy::Optimizer {
                plan_budget: 4,
                fail_cap: 16,
            },
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::OptimizerExhausted { .. }));
    }

    #[test]
    fn non_permutation_relations_can_grow_or_shrink() {
        // Fan-out: one a-value maps to two b-values.
        let r1 = BinaryRelation::new(vec![0, 0], vec![1, 2]);
        let r2 = BinaryRelation::new(vec![1, 2, 2], vec![7, 8, 9]);
        let r = run_chain(&[r1, r2], ChainStrategy::HashChain).unwrap();
        assert_eq!(r.rows, 3, "1 path via b=1, 2 paths via b=2");
    }

    #[test]
    fn empty_and_single_relation_chains() {
        assert_eq!(run_chain(&[], ChainStrategy::HashChain).unwrap().rows, 0);
        let rels = permutation_chain(&perm(10), 1);
        let r = run_chain(&rels, ChainStrategy::HashChain).unwrap();
        assert_eq!(r.rows, 10);
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn vector_and_tuple_hash_chains_agree() {
        // Permutations, fan-out, and dead-end keys: the CSR leg must
        // reproduce the tuple leg's rows and read counts exactly.
        let rels = permutation_chain(&perm(64), 6);
        let v = run_chain_with(&rels, ChainStrategy::HashChain, ExecMode::Vector).unwrap();
        let t = run_chain_with(&rels, ChainStrategy::HashChain, ExecMode::Tuple).unwrap();
        assert_eq!((v.rows, v.tuples_read), (t.rows, t.tuples_read));

        let r1 = BinaryRelation::new(vec![0, 0, 5], vec![1, 2, 99]);
        let r2 = BinaryRelation::new(vec![1, 2, 2, 3], vec![7, 8, 9, 10]);
        let r3 = BinaryRelation::new(vec![8, 9], vec![0, 0]);
        let rels = vec![r1, r2, r3];
        let v = run_chain_with(&rels, ChainStrategy::HashChain, ExecMode::Vector).unwrap();
        let t = run_chain_with(&rels, ChainStrategy::HashChain, ExecMode::Tuple).unwrap();
        assert_eq!((v.rows, v.tuples_read), (t.rows, t.tuples_read));
        assert_eq!(v.rows, 2, "paths 0->2->8->0 and 0->2->9->0");
    }

    #[test]
    fn hash_chain_reads_scale_linearly_with_k() {
        let p = perm(200);
        let r4 = run_chain(&permutation_chain(&p, 4), ChainStrategy::HashChain).unwrap();
        let r8 = run_chain(&permutation_chain(&p, 8), ChainStrategy::HashChain).unwrap();
        let ratio = r8.tuples_read as f64 / r4.tuples_read as f64;
        assert!((1.5..2.5).contains(&ratio), "roughly linear in k: {ratio}");
    }
}
