#![warn(missing_docs)]
//! # engine — the relational substrate around the cracker
//!
//! The paper positions the cracker "between the semantic analyzer and the
//! query optimizer of a modern DBMS infrastructure" (§3). This crate is
//! that infrastructure, sized for the paper's experiments:
//!
//! * [`schema`] / [`table`] / [`catalog`] — n-ary relational tables mapped
//!   MonetDB-style onto one BAT per attribute over a shared dense OID
//!   space (§3.4.2);
//! * [`query`] — the query family of §3.1: simple range/point predicates
//!   in disjunctive normal form, natural join paths, group-by;
//! * [`plan`] — a logical plan with the select-push-down rewrite the Ξ
//!   cracker "effectively realizes" (§3.3);
//! * [`exec`] — Volcano-style pull operators ("most systems use a
//!   Volcano-like query evaluation scheme", §3.4.1): scan, filter,
//!   project, nested-loop / hash join, group, union, limit — plus
//!   [`exec::batch`], the block-at-a-time layer that feeds OID blocks to
//!   the crack kernels instead of probing per tuple;
//! * [`admission`] — a semaphore-style gate with per-session fairness so
//!   update bursts cannot starve concurrent readers;
//! * [`governor`] — per-query deadlines and cooperative cancellation,
//!   polled at safe crack-step boundaries so an abandoned query never
//!   leaves a column torn (see `ROBUSTNESS.md`);
//! * [`durability`] — checkpoint/redo-log wiring so crack state survives
//!   restarts *warm* (protocol in `PERSISTENCE.md`);
//! * [`engines`] — the three interchangeable access methods the
//!   experiments compare: **ScanEngine** (the `nocrack` lines),
//!   **SortEngine** (sort-upfront + binary search, the `sort` line of
//!   Figure 11), **CrackEngine** (the adaptive `crack` lines);
//! * [`cost`] — read/write counters in the units of §2.2's cost outlook;
//! * [`profile`] — engine cost profiles calibrated to the spread the paper
//!   measured across MySQL, PostgreSQL, SQLite and MonetDB (Figure 1), so
//!   the comparative *shape* of those experiments can be regenerated
//!   without shipping four foreign code bases;
//! * [`chain`] — the k-way linear join experiment of Figure 9.

pub mod admission;
pub mod catalog;
pub mod chain;
pub mod cost;
pub mod db;
pub mod durability;
pub mod engines;
pub mod error;
pub mod exec;
pub mod governor;
pub mod plan;
pub mod profile;
pub mod query;
pub mod scenario;
pub mod schema;
pub mod sql_crack;
pub mod table;

pub use admission::{AdmissionGate, AdmissionPermit};
pub use catalog::DbCatalog;
pub use cost::RunStats;
pub use cracker_core::{ConcurrencyMode, ConcurrentColumn};
pub use db::AdaptiveDb;
pub use durability::{DbMeta, TableMeta};
pub use engines::{CrackEngine, QueryEngine, ScanEngine, SortEngine, StochasticEngine};
pub use error::{EngineError, EngineResult};
pub use governor::{CancelToken, Governor};
pub use profile::EngineProfile;
pub use query::{OutputMode, RangeQuery};
pub use scenario::{ChaosReport, DbScenarioRunner};
pub use schema::{ColumnDef, Schema};
pub use sql_crack::SqlLevelCracker;
pub use table::Table;
