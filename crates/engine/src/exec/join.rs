//! Join operators: hash join and nested-loop join.
//!
//! Figure 9's lesson is that the *choice* between these matters enormously
//! on long join chains: "the join-optimizer currently deployed (too)
//! quickly reaches its limitations and falls back to a default solution.
//! The effect is an expensive nested-loop join" (§5.1). Both physical
//! operators are provided; [`crate::chain`] drives them through chains of
//! up to 128 joins.

use super::{Operator, Row};
use std::collections::HashMap;
use storage::Atom;

/// Equality hash join: builds on the left input, probes with the right.
/// Output rows are `left ++ right`.
///
/// Build rows are **moved once** into an arena and indexed by row
/// number; the key `Atom` is cloned once per *distinct* key (not per
/// build row), and the pending-match buffer holds arena indices and is
/// reused across probe rows. Output rows are materialized only when
/// actually emitted.
pub struct HashJoinOp {
    /// Build-side rows, owned exactly once.
    arena: Vec<Row>,
    /// Key → arena row numbers.
    index: HashMap<Atom, Vec<u32>>,
    right: Box<dyn Operator>,
    right_key: usize,
    /// Arena indices still to emit for the current probe row; capacity
    /// persists across probes.
    pending: Vec<u32>,
    /// The probe row the pending indices join against.
    probe: Row,
    arity: usize,
}

impl HashJoinOp {
    /// Join `left.left_key == right.right_key`, materializing the left
    /// side into a hash table.
    pub fn new(
        mut left: Box<dyn Operator>,
        left_key: usize,
        right: Box<dyn Operator>,
        right_key: usize,
    ) -> Self {
        let arity = left.arity() + right.arity();
        let mut arena: Vec<Row> = Vec::new();
        let mut index: HashMap<Atom, Vec<u32>> = HashMap::new();
        while let Some(row) = left.next() {
            let i = arena.len() as u32;
            match index.get_mut(&row[left_key]) {
                Some(list) => list.push(i),
                None => {
                    // lint: allow(per-tuple-alloc) — one key clone + one Vec per distinct key, not per row
                    index.insert(row[left_key].clone(), vec![i]);
                }
            }
            arena.push(row);
        }
        HashJoinOp {
            arena,
            index,
            right,
            right_key,
            pending: Vec::new(),
            probe: Row::new(),
            arity,
        }
    }
}

impl Operator for HashJoinOp {
    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(i) = self.pending.pop() {
                // lint: allow(per-tuple-alloc) — materializing the emitted output row (owned by contract)
                let mut row = self.arena[i as usize].clone();
                // lint: allow(per-tuple-alloc) — same emitted row's right half
                row.extend(self.probe.iter().cloned());
                return Some(row);
            }
            self.probe = self.right.next()?;
            if let Some(matches) = self.index.get(&self.probe[self.right_key]) {
                self.pending.extend_from_slice(matches);
            }
        }
    }

    fn arity(&self) -> usize {
        self.arity
    }
}

/// Nested-loop equality join: the "default solution" a resource-exhausted
/// optimizer degrades to. Materializes the left side and re-scans it for
/// every right row — `O(|L| · |R|)`.
pub struct NestedLoopJoinOp {
    left_rows: Vec<Row>,
    left_key: usize,
    right: Box<dyn Operator>,
    right_key: usize,
    current_right: Option<Row>,
    left_cursor: usize,
    arity: usize,
    /// Tuple comparisons performed (exposed so experiments can report the
    /// quadratic blow-up).
    pub comparisons: u64,
}

impl NestedLoopJoinOp {
    /// Join `left.left_key == right.right_key` by exhaustive comparison.
    pub fn new(
        mut left: Box<dyn Operator>,
        left_key: usize,
        right: Box<dyn Operator>,
        right_key: usize,
    ) -> Self {
        let arity = left.arity() + right.arity();
        let mut left_rows = Vec::new();
        while let Some(row) = left.next() {
            left_rows.push(row);
        }
        NestedLoopJoinOp {
            left_rows,
            left_key,
            right,
            right_key,
            current_right: None,
            left_cursor: 0,
            arity,
            comparisons: 0,
        }
    }
}

impl Operator for NestedLoopJoinOp {
    fn next(&mut self) -> Option<Row> {
        loop {
            if self.current_right.is_none() {
                self.current_right = Some(self.right.next()?);
                self.left_cursor = 0;
            }
            // lint: allow(unwrap) — assigned Some() two lines up when None
            let probe = self.current_right.as_ref().expect("just set");
            while self.left_cursor < self.left_rows.len() {
                let l = &self.left_rows[self.left_cursor];
                self.left_cursor += 1;
                self.comparisons += 1;
                if l[self.left_key] == probe[self.right_key] {
                    // lint: allow(per-tuple-alloc) — tuple reference path; emitted rows are owned by contract
                    let mut row = l.clone();
                    // lint: allow(per-tuple-alloc) — same emitted row's right half
                    row.extend(probe.iter().cloned());
                    return Some(row);
                }
            }
            self.current_right = None;
        }
    }

    fn arity(&self) -> usize {
        self.arity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ops::RowsOp;
    use crate::exec::run_to_vec;

    fn rows(vals: &[i64]) -> Box<dyn Operator> {
        Box::new(RowsOp::new(
            vals.iter().map(|&v| vec![Atom::Int(v)]).collect(),
            1,
        ))
    }

    fn sorted_pairs(rows: Vec<Row>) -> Vec<(i64, i64)> {
        let mut out: Vec<(i64, i64)> = rows
            .into_iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn hash_join_finds_all_matches() {
        let j = HashJoinOp::new(rows(&[1, 2, 2, 3]), 0, rows(&[2, 3, 4]), 0);
        let got = sorted_pairs(run_to_vec(Box::new(j)));
        assert_eq!(got, vec![(2, 2), (2, 2), (3, 3)]);
    }

    #[test]
    fn nested_loop_join_agrees_with_hash_join() {
        let l = [5i64, 1, 2, 2, 9];
        let r = [2i64, 9, 9, 7];
        let h = HashJoinOp::new(rows(&l), 0, rows(&r), 0);
        let n = NestedLoopJoinOp::new(rows(&l), 0, rows(&r), 0);
        assert_eq!(
            sorted_pairs(run_to_vec(Box::new(h))),
            sorted_pairs(run_to_vec(Box::new(n)))
        );
    }

    #[test]
    fn nested_loop_comparison_count_is_quadratic() {
        let mut j = NestedLoopJoinOp::new(rows(&[1, 2, 3, 4]), 0, rows(&[5, 6, 7]), 0);
        while j.next().is_some() {}
        assert_eq!(j.comparisons, 12, "4 x 3 exhaustive comparisons");
    }

    #[test]
    fn joins_on_empty_inputs() {
        let h = HashJoinOp::new(rows(&[]), 0, rows(&[1]), 0);
        assert!(run_to_vec(Box::new(h)).is_empty());
        let h = HashJoinOp::new(rows(&[1]), 0, rows(&[]), 0);
        assert!(run_to_vec(Box::new(h)).is_empty());
    }

    #[test]
    fn join_output_concatenates_columns() {
        let left = Box::new(RowsOp::new(vec![vec![Atom::Int(1), Atom::from("x")]], 2));
        let right = Box::new(RowsOp::new(vec![vec![Atom::Int(1), Atom::from("y")]], 2));
        let mut j = HashJoinOp::new(left, 0, right, 0);
        assert_eq!(j.arity(), 4);
        let row = j.next().unwrap();
        assert_eq!(
            row,
            vec![Atom::Int(1), Atom::from("x"), Atom::Int(1), Atom::from("y")]
        );
    }
}
