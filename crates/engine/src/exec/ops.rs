//! Leaf and unary operators: scan, filter, project, limit, union — plus
//! the Ξ-tap that piggybacks cracking onto a filter.

use super::{Operator, Row};
use crate::table::Table;
use std::sync::Arc;
use storage::{Atom, Bat};

/// Full-table scan over an n-ary table, emitting rows in OID order with
/// the surrogate prepended as column 0 (MonetDB-style: every derived
/// result can trace lineage to base tuples).
pub struct TableScanOp {
    columns: Vec<Arc<Bat>>,
    len: usize,
    cursor: usize,
    with_oid: bool,
}

impl TableScanOp {
    /// Scan emitting `[oid, col0, col1, ...]` rows.
    pub fn new(table: &Table) -> Self {
        let columns: Vec<Arc<Bat>> = table
            .schema()
            .names()
            .iter()
            // lint: allow(unwrap) — iterating the schema's own names
            .map(|n| Arc::clone(table.column(n).expect("schema names resolve")))
            .collect();
        TableScanOp {
            len: table.len(),
            columns,
            cursor: 0,
            with_oid: true,
        }
    }

    /// Scan emitting only the attribute columns (no OID column).
    pub fn without_oid(table: &Table) -> Self {
        let mut s = Self::new(table);
        s.with_oid = false;
        s
    }
}

impl Operator for TableScanOp {
    fn next(&mut self) -> Option<Row> {
        if self.cursor >= self.len {
            return None;
        }
        let pos = self.cursor;
        self.cursor += 1;
        let mut row = Vec::with_capacity(self.columns.len() + 1);
        if self.with_oid {
            row.push(Atom::Oid(pos as u64));
        }
        for bat in &self.columns {
            // lint: allow(unwrap) — pos was bounds-checked against len() above
            row.push(bat.atom_at(pos).expect("pos < len"));
        }
        Some(row)
    }

    fn arity(&self) -> usize {
        self.columns.len() + usize::from(self.with_oid)
    }
}

/// Filter: forwards rows satisfying a predicate.
pub struct FilterOp {
    input: Box<dyn Operator>,
    pred: Box<dyn FnMut(&Row) -> bool>,
}

impl FilterOp {
    /// Wrap `input` with a row predicate.
    pub fn new(input: Box<dyn Operator>, pred: impl FnMut(&Row) -> bool + 'static) -> Self {
        FilterOp {
            input,
            pred: Box::new(pred),
        }
    }
}

impl Operator for FilterOp {
    fn next(&mut self) -> Option<Row> {
        loop {
            let row = self.input.next()?;
            if (self.pred)(&row) {
                return Some(row);
            }
        }
    }

    fn arity(&self) -> usize {
        self.input.arity()
    }
}

/// The Ξ-tap: a filter that *keeps* its rejects.
///
/// §3.4.1: "The Ξ-cracker can be put in front of a filter node to write
/// unwanted tuples into a separated piece. The tuples reaching the top of
/// the operator tree are stored in their own piece. Taken together, the
/// pieces can be used to replace the original tables." The tap forwards
/// qualifying rows unchanged and appends the non-qualifying ones to a
/// reject buffer the caller can drain into a piece afterwards.
pub struct XiTapOp {
    input: Box<dyn Operator>,
    pred: Box<dyn FnMut(&Row) -> bool>,
    rejects: Vec<Row>,
}

impl XiTapOp {
    /// Wrap `input`, splitting rows by `pred`.
    pub fn new(input: Box<dyn Operator>, pred: impl FnMut(&Row) -> bool + 'static) -> Self {
        XiTapOp {
            input,
            pred: Box::new(pred),
            rejects: Vec::new(),
        }
    }

    /// The non-qualifying piece gathered so far (complete once the
    /// operator is exhausted).
    pub fn rejects(&self) -> &[Row] {
        &self.rejects
    }

    /// Take ownership of the reject piece.
    pub fn take_rejects(&mut self) -> Vec<Row> {
        std::mem::take(&mut self.rejects)
    }
}

impl Operator for XiTapOp {
    fn next(&mut self) -> Option<Row> {
        loop {
            let row = self.input.next()?;
            if (self.pred)(&row) {
                return Some(row);
            }
            self.rejects.push(row);
        }
    }

    fn arity(&self) -> usize {
        self.input.arity()
    }
}

/// Projection by column positions.
pub struct ProjectOp {
    input: Box<dyn Operator>,
    indices: Vec<usize>,
}

impl ProjectOp {
    /// Keep only the given input columns, in the given order.
    pub fn new(input: Box<dyn Operator>, indices: Vec<usize>) -> Self {
        ProjectOp { input, indices }
    }
}

impl Operator for ProjectOp {
    fn next(&mut self) -> Option<Row> {
        let row = self.input.next()?;
        Some(self.indices.iter().map(|&i| row[i].clone()).collect())
    }

    fn arity(&self) -> usize {
        self.indices.len()
    }
}

/// Limit: forwards at most `n` rows.
pub struct LimitOp {
    input: Box<dyn Operator>,
    remaining: usize,
}

impl LimitOp {
    /// Forward at most `n` rows from `input`.
    pub fn new(input: Box<dyn Operator>, n: usize) -> Self {
        LimitOp {
            input,
            remaining: n,
        }
    }
}

impl Operator for LimitOp {
    fn next(&mut self) -> Option<Row> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.input.next()
    }

    fn arity(&self) -> usize {
        self.input.arity()
    }
}

/// Union-all of same-arity inputs, drained in order. This is the operator
/// that re-assembles cracked pieces into result tables ("we have to rely
/// on the DBMS capabilities to handle large union expressions", §5.1).
pub struct UnionOp {
    inputs: Vec<Box<dyn Operator>>,
    current: usize,
    arity: usize,
}

impl UnionOp {
    /// Union-all the inputs.
    ///
    /// # Panics
    /// Panics if the inputs disagree on arity or the list is empty.
    pub fn new(inputs: Vec<Box<dyn Operator>>) -> Self {
        assert!(!inputs.is_empty(), "union of nothing");
        let arity = inputs[0].arity();
        assert!(
            inputs.iter().all(|i| i.arity() == arity),
            "union inputs must share arity"
        );
        UnionOp {
            inputs,
            current: 0,
            arity,
        }
    }
}

impl Operator for UnionOp {
    fn next(&mut self) -> Option<Row> {
        while self.current < self.inputs.len() {
            if let Some(row) = self.inputs[self.current].next() {
                return Some(row);
            }
            self.current += 1;
        }
        None
    }

    fn arity(&self) -> usize {
        self.arity
    }
}

/// A leaf operator over pre-materialized rows (piece replay, tests).
pub struct RowsOp {
    rows: std::vec::IntoIter<Row>,
    arity: usize,
}

impl RowsOp {
    /// Emit the given rows.
    pub fn new(rows: Vec<Row>, arity: usize) -> Self {
        RowsOp {
            rows: rows.into_iter(),
            arity,
        }
    }
}

impl Operator for RowsOp {
    fn next(&mut self) -> Option<Row> {
        self.rows.next()
    }

    fn arity(&self) -> usize {
        self.arity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_count, run_to_vec};

    fn table() -> Table {
        Table::from_int_columns(
            "r",
            vec![("k", vec![1, 2, 3, 4]), ("a", vec![10, 20, 30, 40])],
        )
        .unwrap()
    }

    fn int_at(row: &Row, i: usize) -> i64 {
        row[i].as_int().unwrap()
    }

    #[test]
    fn scan_emits_all_rows_with_oids() {
        let rows = run_to_vec(Box::new(TableScanOp::new(&table())));
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], vec![Atom::Oid(0), Atom::Int(1), Atom::Int(10)]);
        assert_eq!(rows[3][0], Atom::Oid(3));
    }

    #[test]
    fn scan_without_oid() {
        let rows = run_to_vec(Box::new(TableScanOp::without_oid(&table())));
        assert_eq!(rows[0], vec![Atom::Int(1), Atom::Int(10)]);
    }

    #[test]
    fn filter_keeps_matching_rows_only() {
        let scan = Box::new(TableScanOp::new(&table()));
        let filter = FilterOp::new(scan, |r| int_at(r, 2) >= 30);
        let rows = run_to_vec(Box::new(filter));
        assert_eq!(rows.len(), 2);
        assert_eq!(int_at(&rows[0], 2), 30);
    }

    #[test]
    fn xi_tap_splits_into_two_pieces() {
        let scan = Box::new(TableScanOp::new(&table()));
        let mut tap = XiTapOp::new(scan, |r| int_at(r, 2) < 25);
        let mut kept = Vec::new();
        while let Some(r) = tap.next() {
            kept.push(r);
        }
        assert_eq!(kept.len(), 2);
        assert_eq!(tap.rejects().len(), 2);
        // Together the two pieces reconstruct the input (loss-less).
        let rejects = tap.take_rejects();
        assert_eq!(kept.len() + rejects.len(), 4);
        assert!(tap.rejects().is_empty());
    }

    #[test]
    fn project_reorders_columns() {
        let scan = Box::new(TableScanOp::new(&table()));
        let proj = ProjectOp::new(scan, vec![2, 1]);
        let rows = run_to_vec(Box::new(proj));
        assert_eq!(rows[0], vec![Atom::Int(10), Atom::Int(1)]);
        assert_eq!(rows[0].len(), 2);
    }

    #[test]
    fn limit_truncates() {
        let scan = Box::new(TableScanOp::new(&table()));
        assert_eq!(run_count(Box::new(LimitOp::new(scan, 3))), 3);
        let scan = Box::new(TableScanOp::new(&table()));
        assert_eq!(run_count(Box::new(LimitOp::new(scan, 0))), 0);
        let scan = Box::new(TableScanOp::new(&table()));
        assert_eq!(run_count(Box::new(LimitOp::new(scan, 99))), 4);
    }

    #[test]
    fn union_concatenates_pieces() {
        let a = Box::new(TableScanOp::new(&table()));
        let b = Box::new(TableScanOp::new(&table()));
        let u = UnionOp::new(vec![a, b]);
        assert_eq!(run_count(Box::new(u)), 8);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn union_rejects_mismatched_arity() {
        let a = Box::new(TableScanOp::new(&table()));
        let b = Box::new(TableScanOp::without_oid(&table()));
        UnionOp::new(vec![a, b]);
    }

    #[test]
    fn rows_op_replays_pieces() {
        let rows = vec![vec![Atom::Int(1)], vec![Atom::Int(2)]];
        let op = RowsOp::new(rows, 1);
        assert_eq!(run_count(Box::new(op)), 2);
    }

    #[test]
    fn composed_pipeline() {
        // σ(a >= 20) then π(k) then limit 2 — a small but real tree.
        let scan = Box::new(TableScanOp::new(&table()));
        let filtered = Box::new(FilterOp::new(scan, |r| int_at(r, 2) >= 20));
        let projected = Box::new(ProjectOp::new(filtered, vec![1]));
        let limited = Box::new(LimitOp::new(projected, 2));
        let rows = run_to_vec(limited);
        assert_eq!(rows, vec![vec![Atom::Int(2)], vec![Atom::Int(3)]]);
    }
}
