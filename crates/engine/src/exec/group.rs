//! Group-by / aggregation operator.

use super::{Operator, Row};
use crate::query::AggFunc;
use std::collections::BTreeMap;
use storage::Atom;

/// Hash (here: ordered-map) aggregation: groups on one key column and
/// applies one aggregate, emitting `(key, aggregate)` rows in key order.
pub struct GroupByOp {
    results: std::vec::IntoIter<Row>,
}

impl GroupByOp {
    /// Group `input` on column `key`, aggregating column `agg_col` with
    /// `func` (ignored for [`AggFunc::Count`]).
    pub fn new(
        mut input: Box<dyn Operator>,
        key: usize,
        func: AggFunc,
        agg_col: Option<usize>,
    ) -> Self {
        // (count, sum, min, max) running state per group.
        let mut groups: BTreeMap<Atom, (i64, i64, i64, i64)> = BTreeMap::new();
        while let Some(row) = input.next() {
            let v = agg_col.and_then(|c| row[c].as_int()).unwrap_or(0);
            let entry = groups
                // lint: allow(per-tuple-alloc) — tuple reference path; VecGroup is the block twin
                .entry(row[key].clone())
                .or_insert((0, 0, i64::MAX, i64::MIN));
            entry.0 += 1;
            entry.1 += v;
            entry.2 = entry.2.min(v);
            entry.3 = entry.3.max(v);
        }
        let results: Vec<Row> = groups
            .into_iter()
            .map(|(k, (count, sum, min, max))| {
                let agg = match func {
                    AggFunc::Count => count,
                    AggFunc::Sum => sum,
                    AggFunc::Min => min,
                    AggFunc::Max => max,
                };
                vec![k, Atom::Int(agg)]
            })
            .collect();
        GroupByOp {
            results: results.into_iter(),
        }
    }
}

impl Operator for GroupByOp {
    fn next(&mut self) -> Option<Row> {
        self.results.next()
    }

    fn arity(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ops::RowsOp;
    use crate::exec::run_to_vec;

    fn input() -> Box<dyn Operator> {
        let rows = vec![
            vec![Atom::Int(1), Atom::Int(10)],
            vec![Atom::Int(2), Atom::Int(5)],
            vec![Atom::Int(1), Atom::Int(30)],
            vec![Atom::Int(2), Atom::Int(7)],
            vec![Atom::Int(1), Atom::Int(20)],
        ];
        Box::new(RowsOp::new(rows, 2))
    }

    #[test]
    fn count_per_group() {
        let g = GroupByOp::new(input(), 0, AggFunc::Count, None);
        let rows = run_to_vec(Box::new(g));
        assert_eq!(
            rows,
            vec![
                vec![Atom::Int(1), Atom::Int(3)],
                vec![Atom::Int(2), Atom::Int(2)],
            ]
        );
    }

    #[test]
    fn sum_min_max_per_group() {
        let g = GroupByOp::new(input(), 0, AggFunc::Sum, Some(1));
        let rows = run_to_vec(Box::new(g));
        assert_eq!(rows[0], vec![Atom::Int(1), Atom::Int(60)]);
        assert_eq!(rows[1], vec![Atom::Int(2), Atom::Int(12)]);

        let g = GroupByOp::new(input(), 0, AggFunc::Min, Some(1));
        let rows = run_to_vec(Box::new(g));
        assert_eq!(rows[0], vec![Atom::Int(1), Atom::Int(10)]);

        let g = GroupByOp::new(input(), 0, AggFunc::Max, Some(1));
        let rows = run_to_vec(Box::new(g));
        assert_eq!(rows[1], vec![Atom::Int(2), Atom::Int(7)]);
    }

    #[test]
    fn empty_input_produces_no_groups() {
        let g = GroupByOp::new(Box::new(RowsOp::new(vec![], 2)), 0, AggFunc::Count, None);
        assert!(run_to_vec(Box::new(g)).is_empty());
    }

    #[test]
    fn string_group_keys() {
        let rows = vec![
            vec![Atom::from("b"), Atom::Int(1)],
            vec![Atom::from("a"), Atom::Int(2)],
            vec![Atom::from("b"), Atom::Int(3)],
        ];
        let g = GroupByOp::new(Box::new(RowsOp::new(rows, 2)), 0, AggFunc::Count, None);
        let out = run_to_vec(Box::new(g));
        assert_eq!(out[0], vec![Atom::from("a"), Atom::Int(1)]);
        assert_eq!(out[1], vec![Atom::from("b"), Atom::Int(2)]);
    }
}
