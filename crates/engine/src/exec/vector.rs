//! The block-at-a-time ("vectorized") operator pipeline.
//!
//! The tuple-at-a-time Volcano tree in [`super`] reproduces §3.4.1
//! literally: every `next()` moves one `Row = Vec<Atom>` — a heap
//! allocation and a virtual call per tuple per operator. This module is
//! the same tree shape at block granularity: operators exchange
//! [`RowBlock`]s of up to [`BLOCK_OIDS`] tuples stored **columnar** —
//! one typed lane per output column — so the per-tuple costs collapse to
//! per-block costs and filters can hand whole lanes to the
//! [`cracker_core::kernel`] residual scans (the same SIMD loops the crack
//! itself runs).
//!
//! Lanes are typed ([`Lane::Int`] / [`Lane::Oid`]) with an
//! [`Lane::Atoms`] fallback for heterogeneous or string data, mirroring
//! how [`super::batch`] gathers `i64` runs for kernel scans. A block is
//! reused across calls ([`RowBlock::reset`] keeps lane capacity), so a
//! warm pipeline performs no allocation in steady state.
//!
//! Operator contract: [`VectorOperator::next_block`] fills `out` and
//! returns the number of rows produced; `0` means exhausted. Operators
//! loop internally over empty child blocks, so a non-zero return always
//! carries at least one row; blocks may be shorter than [`BLOCK_OIDS`]
//! (and a join emitting the tail of a long match list may slightly
//! overrun it — capacity is a target, not an invariant).

use super::batch::BLOCK_OIDS;
use super::Row;
use crate::query::AggFunc;
use crate::table::Table;
use cracker_core::{CrackKernel, KernelPolicy, RangePred};
use std::collections::{BTreeMap, HashMap};
use std::ops::Range;
use std::sync::Arc;
use storage::{Atom, Bat};

/// The storage class of one output column of a vector operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKind {
    /// 64-bit integers (the kernel-scannable fast lane).
    Int,
    /// Surrogate OIDs.
    Oid,
    /// Owned [`Atom`]s — the fallback lane for strings, floats, and
    /// heterogeneous test data.
    Atom,
}

/// One column of a [`RowBlock`]: a typed vector of values.
#[derive(Debug)]
pub enum Lane {
    /// Integer values.
    Int(Vec<i64>),
    /// Surrogate OIDs.
    Oid(Vec<u64>),
    /// Fallback atom lane.
    Atoms(Vec<Atom>),
}

impl Lane {
    fn empty(kind: LaneKind) -> Lane {
        match kind {
            LaneKind::Int => Lane::Int(Vec::new()),
            LaneKind::Oid => Lane::Oid(Vec::new()),
            LaneKind::Atom => Lane::Atoms(Vec::new()),
        }
    }

    /// The kind of this lane.
    pub fn kind(&self) -> LaneKind {
        match self {
            Lane::Int(_) => LaneKind::Int,
            Lane::Oid(_) => LaneKind::Oid,
            Lane::Atoms(_) => LaneKind::Atom,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Lane::Int(v) => v.len(),
            Lane::Oid(v) => v.len(),
            Lane::Atoms(v) => v.len(),
        }
    }

    /// True when the lane holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn clear(&mut self) {
        match self {
            Lane::Int(v) => v.clear(),
            Lane::Oid(v) => v.clear(),
            Lane::Atoms(v) => v.clear(),
        }
    }

    /// Borrow as `&[i64]`, when this is the integer lane.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match self {
            Lane::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The value at `i`, materialized as an [`Atom`].
    pub fn atom(&self, i: usize) -> Atom {
        match self {
            Lane::Int(v) => Atom::Int(v[i]),
            Lane::Oid(v) => Atom::Oid(v[i]),
            Lane::Atoms(v) => v[i].clone(),
        }
    }

    /// The value at `i` under tuple-mode `as_int()` semantics: integers
    /// pass through, everything else (including OIDs) is `None`.
    fn int_at(&self, i: usize) -> Option<i64> {
        match self {
            Lane::Int(v) => Some(v[i]),
            Lane::Oid(_) => None,
            Lane::Atoms(v) => v[i].as_int(),
        }
    }

    /// Append one atom; the lane kind must accept it.
    ///
    /// # Panics
    /// Panics when a typed lane receives a foreign atom kind.
    pub fn push_atom(&mut self, a: Atom) {
        match (self, a) {
            (Lane::Int(v), Atom::Int(x)) => v.push(x),
            (Lane::Oid(v), Atom::Oid(x)) => v.push(x),
            (Lane::Atoms(v), a) => v.push(a),
            (lane, a) => panic!("atom {a:?} pushed into {:?} lane", lane.kind()),
        }
    }

    /// Append `src[i]` — lane kinds must match (enforced by
    /// [`RowBlock::reset`] discipline), except that an `Atoms` lane
    /// accepts any source.
    fn push_from(&mut self, src: &Lane, i: usize) {
        match (self, src) {
            (Lane::Int(dst), Lane::Int(s)) => dst.push(s[i]),
            (Lane::Oid(dst), Lane::Oid(s)) => dst.push(s[i]),
            (Lane::Atoms(dst), s) => dst.push(s.atom(i)),
            (dst, src) => panic!("lane kind mismatch: {:?} <- {:?}", dst.kind(), src.kind()),
        }
    }

    /// Append the values of `src` at positions `hits`.
    fn gather_from(&mut self, src: &Lane, hits: &[usize]) {
        match (self, src) {
            (Lane::Int(dst), Lane::Int(s)) => dst.extend(hits.iter().map(|&i| s[i])),
            (Lane::Oid(dst), Lane::Oid(s)) => dst.extend(hits.iter().map(|&i| s[i])),
            (Lane::Atoms(dst), s) => dst.extend(hits.iter().map(|&i| s.atom(i))),
            (dst, src) => panic!("lane kind mismatch: {:?} <- {:?}", dst.kind(), src.kind()),
        }
    }

    /// Append the contiguous range `r` of `src`.
    fn extend_range_from(&mut self, src: &Lane, r: Range<usize>) {
        match (self, src) {
            (Lane::Int(dst), Lane::Int(s)) => dst.extend_from_slice(&s[r]),
            (Lane::Oid(dst), Lane::Oid(s)) => dst.extend_from_slice(&s[r]),
            (Lane::Atoms(dst), Lane::Atoms(s)) => dst.extend(s[r].iter().cloned()),
            (Lane::Atoms(dst), s) => dst.extend(r.map(|i| s.atom(i))),
            (dst, src) => panic!("lane kind mismatch: {:?} <- {:?}", dst.kind(), src.kind()),
        }
    }
}

/// A columnar block of up to (nominally) [`BLOCK_OIDS`] tuples: one
/// [`Lane`] per output column, all the same length. The unit of exchange
/// between [`VectorOperator`]s; allocated once and reused, lane capacity
/// surviving [`reset`](Self::reset).
#[derive(Debug, Default)]
pub struct RowBlock {
    lanes: Vec<Lane>,
    len: usize,
}

impl RowBlock {
    /// An empty block; the first producer shapes it via
    /// [`reset`](Self::reset).
    pub fn new() -> Self {
        RowBlock::default()
    }

    /// Clear to zero rows with the given lane layout, reusing lane
    /// buffers whose kind already matches.
    pub fn reset(&mut self, kinds: &[LaneKind]) {
        self.lanes.truncate(kinds.len());
        for (i, &kind) in kinds.iter().enumerate() {
            match self.lanes.get_mut(i) {
                Some(lane) if lane.kind() == kind => lane.clear(),
                Some(lane) => *lane = Lane::empty(kind),
                None => self.lanes.push(Lane::empty(kind)),
            }
        }
        self.len = 0;
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.lanes.len()
    }

    /// Borrow column `i`.
    pub fn lane(&self, i: usize) -> &Lane {
        &self.lanes[i]
    }

    /// Mutably borrow column `i` — for producers filling lanes directly.
    pub fn lane_mut(&mut self, i: usize) -> &mut Lane {
        &mut self.lanes[i]
    }

    /// Declare the row count after filling lanes directly.
    ///
    /// # Panics
    /// Panics when any lane disagrees with `n`.
    pub fn set_len(&mut self, n: usize) {
        for lane in &self.lanes {
            assert_eq!(lane.len(), n, "lane length disagrees with block length");
        }
        self.len = n;
    }

    /// Append the rows of `src` at positions `hits` (the filter gather).
    pub fn gather_from(&mut self, src: &RowBlock, hits: &[usize]) {
        for (dst, s) in self.lanes.iter_mut().zip(&src.lanes) {
            dst.gather_from(s, hits);
        }
        self.len += hits.len();
    }

    /// Append all rows of `src`.
    pub fn append_block(&mut self, src: &RowBlock) {
        self.extend_range_from(src, 0..src.len);
    }

    /// Append the contiguous row range `r` of `src`.
    pub fn extend_range_from(&mut self, src: &RowBlock, r: Range<usize>) {
        let n = r.len();
        for (dst, s) in self.lanes.iter_mut().zip(&src.lanes) {
            // lint: allow(per-tuple-alloc) — Range clone is two usizes, heap-free
            dst.extend_range_from(s, r.clone());
        }
        self.len += n;
    }

    /// Append the concatenation of `left`'s row `li` and `right`'s row
    /// `ri` — the join emission primitive. The block's lanes must be laid
    /// out as `left.arity() + right.arity()`.
    pub fn push_joined(&mut self, left: &RowBlock, li: usize, right: &RowBlock, ri: usize) {
        let split = left.arity();
        for (k, dst) in self.lanes.iter_mut().enumerate() {
            if k < split {
                dst.push_from(&left.lanes[k], li);
            } else {
                dst.push_from(&right.lanes[k - split], ri);
            }
        }
        self.len += 1;
    }

    /// Append one row of atoms (test/builder convenience).
    pub fn push_row(&mut self, row: &[Atom]) {
        assert_eq!(row.len(), self.lanes.len(), "row arity mismatch");
        // lint: allow(per-tuple-alloc) — test/builder convenience, not a pipeline path
        for (lane, a) in self.lanes.iter_mut().zip(row.iter().cloned()) {
            lane.push_atom(a);
        }
        self.len += 1;
    }

    /// Materialize row `i` as a tuple-mode [`Row`].
    pub fn row(&self, i: usize) -> Row {
        self.lanes.iter().map(|lane| lane.atom(i)).collect()
    }

    /// Materialize every row into `out` (the block → tuple bridge).
    pub fn append_rows_to(&self, out: &mut Vec<Row>) {
        out.reserve(self.len);
        for i in 0..self.len {
            // lint: allow(per-tuple-alloc) — deliberate bridge back to tuple Rows
            out.push(self.row(i));
        }
    }
}

/// A block-at-a-time physical operator: fills `out` with the next block
/// of result rows and returns how many it produced (0 = exhausted).
pub trait VectorOperator {
    /// Produce the next block into `out`. Implementations call
    /// [`RowBlock::reset`] with their own lane layout first, loop past
    /// empty intermediate blocks, and return 0 only at end-of-stream.
    fn next_block(&mut self, out: &mut RowBlock) -> usize;

    /// The lane layout of produced blocks.
    fn lane_kinds(&self) -> &[LaneKind];

    /// Number of output columns.
    fn arity(&self) -> usize {
        self.lane_kinds().len()
    }
}

/// Drain a vector pipeline into tuple-mode rows (the compatibility
/// bridge used by the planner's materializing entry points).
pub fn run_vector_to_vec(mut op: Box<dyn VectorOperator>) -> Vec<Row> {
    let mut out = Vec::new();
    let mut block = RowBlock::new();
    while op.next_block(&mut block) > 0 {
        block.append_rows_to(&mut out);
    }
    out
}

/// Drain a vector pipeline counting rows without materializing them.
pub fn run_vector_count(mut op: Box<dyn VectorOperator>) -> usize {
    let mut n = 0;
    let mut block = RowBlock::new();
    loop {
        let produced = op.next_block(&mut block);
        if produced == 0 {
            return n;
        }
        n += produced;
    }
}

/// One base-table column as the scan sees it: integer tails stay behind
/// their [`Bat`] (sliced per block, zero copy-up-front), anything else is
/// materialized once into an atom lane at construction time.
enum SrcCol {
    Int(Arc<Bat>),
    Atoms(Vec<Atom>),
}

/// Block-at-a-time full-table scan: emits `[oid, col0, col1, ...]`
/// blocks in OID order, integer columns as `memcpy`-style slice copies
/// into the block's int lanes.
pub struct VecTableScan {
    cols: Vec<SrcCol>,
    kinds: Vec<LaneKind>,
    len: usize,
    cursor: usize,
    with_oid: bool,
}

impl VecTableScan {
    /// Scan emitting `[oid, col0, col1, ...]` blocks.
    pub fn new(table: &Table) -> Self {
        Self::build(table, true)
    }

    /// Scan emitting only the attribute columns (no OID lane).
    pub fn without_oid(table: &Table) -> Self {
        Self::build(table, false)
    }

    fn build(table: &Table, with_oid: bool) -> Self {
        let mut cols = Vec::new();
        let mut kinds = Vec::new();
        if with_oid {
            kinds.push(LaneKind::Oid);
        }
        for name in table.schema().names() {
            // lint: allow(unwrap) — iterating the schema's own names
            let bat = table.column(name).expect("schema names resolve");
            if bat.ints().is_ok() {
                cols.push(SrcCol::Int(Arc::clone(bat)));
                kinds.push(LaneKind::Int);
            } else {
                // Non-integer tail: materialize once, outside the hot loop.
                let atoms: Vec<Atom> = (0..bat.len()).map(|p| bat.tail().atom_at(p)).collect();
                cols.push(SrcCol::Atoms(atoms));
                kinds.push(LaneKind::Atom);
            }
        }
        VecTableScan {
            cols,
            kinds,
            len: table.len(),
            cursor: 0,
            with_oid,
        }
    }
}

impl VectorOperator for VecTableScan {
    fn next_block(&mut self, out: &mut RowBlock) -> usize {
        out.reset(&self.kinds);
        let n = BLOCK_OIDS.min(self.len - self.cursor);
        if n == 0 {
            return 0;
        }
        let range = self.cursor..self.cursor + n;
        let mut slot = 0;
        if self.with_oid {
            if let Lane::Oid(dst) = out.lane_mut(slot) {
                dst.extend(range.clone().map(|p| p as u64));
            }
            slot += 1;
        }
        for col in &self.cols {
            match (col, out.lane_mut(slot)) {
                (SrcCol::Int(bat), Lane::Int(dst)) => {
                    // lint: allow(unwrap), lint: allow(per-tuple-alloc) — int lane proven at build; Range clone is heap-free
                    dst.extend_from_slice(&bat.ints().expect("int lane")[range.clone()]);
                }
                (SrcCol::Atoms(atoms), Lane::Atoms(dst)) => {
                    // lint: allow(per-tuple-alloc) — Atom fallback lane owns its atoms by design
                    dst.extend(atoms[range.clone()].iter().cloned());
                }
                _ => unreachable!("lane layout fixed at construction"),
            }
            slot += 1;
        }
        out.set_len(n);
        self.cursor += n;
        n
    }

    fn lane_kinds(&self) -> &[LaneKind] {
        &self.kinds
    }
}

/// Block-at-a-time filter over a range predicate: integer lanes are
/// scanned by a [`CrackKernel`] residual scan (the same SIMD/branch-free
/// loops that serve crack-time border pieces), other lanes fall back to
/// a scalar loop with tuple-mode `as_int()` semantics.
pub struct VecFilter {
    input: Box<dyn VectorOperator>,
    col: usize,
    pred: RangePred<i64>,
    kernel: CrackKernel,
    kinds: Vec<LaneKind>,
    child: RowBlock,
    hits: Vec<usize>,
}

impl VecFilter {
    /// Filter `input` on column `col` matching `pred`.
    pub fn new(input: Box<dyn VectorOperator>, col: usize, pred: RangePred<i64>) -> Self {
        let kinds = input.lane_kinds().to_vec();
        VecFilter {
            input,
            col,
            pred,
            kernel: KernelPolicy::default().resolve(),
            kinds,
            child: RowBlock::new(),
            hits: Vec::new(),
        }
    }
}

/// Collect the hit positions of `pred` over `lane` into `hits`,
/// kernel-scanning integer lanes and falling back to a scalar loop with
/// tuple-mode `as_int()` semantics elsewhere (OIDs never match, exactly
/// as `Atom::as_int()` returns `None` for them).
fn scan_lane(
    kernel: CrackKernel,
    lane: &Lane,
    n: usize,
    pred: &RangePred<i64>,
    hits: &mut Vec<usize>,
) {
    match lane {
        Lane::Int(vals) => kernel.scan_into(&vals[..n], 0..n, pred, hits),
        Lane::Oid(_) => {}
        Lane::Atoms(atoms) => {
            for (i, a) in atoms[..n].iter().enumerate() {
                if a.as_int().is_some_and(|v| pred.matches(v)) {
                    hits.push(i);
                }
            }
        }
    }
}

impl VectorOperator for VecFilter {
    fn next_block(&mut self, out: &mut RowBlock) -> usize {
        out.reset(&self.kinds);
        loop {
            if self.input.next_block(&mut self.child) == 0 {
                return 0;
            }
            self.hits.clear();
            scan_lane(
                self.kernel,
                self.child.lane(self.col),
                self.child.len(),
                &self.pred,
                &mut self.hits,
            );
            if !self.hits.is_empty() {
                out.gather_from(&self.child, &self.hits);
                return out.len();
            }
        }
    }

    fn lane_kinds(&self) -> &[LaneKind] {
        &self.kinds
    }
}

/// The block-at-a-time Ξ-tap (§3.4.1): a filter that *keeps* its
/// rejects, gathering the non-qualifying rows of every block into a
/// columnar reject arena so cracking-as-byproduct survives
/// vectorization — the rejects can be drained into their own piece once
/// the pipeline finishes, exactly like [`super::ops::XiTapOp`].
pub struct VecXiTap {
    input: Box<dyn VectorOperator>,
    col: usize,
    pred: RangePred<i64>,
    kernel: CrackKernel,
    kinds: Vec<LaneKind>,
    child: RowBlock,
    hits: Vec<usize>,
    misses: Vec<usize>,
    rejects: RowBlock,
}

impl VecXiTap {
    /// Wrap `input`, splitting each block by `pred` on column `col`.
    pub fn new(input: Box<dyn VectorOperator>, col: usize, pred: RangePred<i64>) -> Self {
        let kinds = input.lane_kinds().to_vec();
        let mut rejects = RowBlock::new();
        rejects.reset(&kinds);
        VecXiTap {
            input,
            col,
            pred,
            kernel: KernelPolicy::default().resolve(),
            kinds,
            child: RowBlock::new(),
            hits: Vec::new(),
            misses: Vec::new(),
            rejects,
        }
    }

    /// Rows rejected so far, as a columnar block (complete once the
    /// operator is exhausted).
    pub fn rejects(&self) -> &RowBlock {
        &self.rejects
    }

    /// Take ownership of the reject piece as tuple-mode rows — the same
    /// shape [`super::ops::XiTapOp::take_rejects`] returns, so callers
    /// that feed rejects into a Ξ-piece are pipeline-agnostic.
    pub fn take_rejects(&mut self) -> Vec<Row> {
        let mut out = Vec::new();
        self.rejects.append_rows_to(&mut out);
        self.rejects.reset(&self.kinds);
        out
    }
}

impl VectorOperator for VecXiTap {
    fn next_block(&mut self, out: &mut RowBlock) -> usize {
        out.reset(&self.kinds);
        loop {
            if self.input.next_block(&mut self.child) == 0 {
                return 0;
            }
            let n = self.child.len();
            self.hits.clear();
            scan_lane(
                self.kernel,
                self.child.lane(self.col),
                n,
                &self.pred,
                &mut self.hits,
            );
            // Complement of the hit list, per block: both sides of the
            // split are gathered columnar, nothing is dropped.
            self.misses.clear();
            let mut next_hit = self.hits.iter().copied().peekable();
            for i in 0..n {
                if next_hit.peek() == Some(&i) {
                    next_hit.next();
                } else {
                    self.misses.push(i);
                }
            }
            self.rejects.gather_from(&self.child, &self.misses);
            if !self.hits.is_empty() {
                out.gather_from(&self.child, &self.hits);
                return out.len();
            }
        }
    }

    fn lane_kinds(&self) -> &[LaneKind] {
        &self.kinds
    }
}

/// Block-at-a-time projection: whole-lane copies by column position —
/// no per-tuple work at all for typed lanes.
pub struct VecProject {
    input: Box<dyn VectorOperator>,
    indices: Vec<usize>,
    kinds: Vec<LaneKind>,
    child: RowBlock,
}

impl VecProject {
    /// Keep only the given input columns, in the given order.
    pub fn new(input: Box<dyn VectorOperator>, indices: Vec<usize>) -> Self {
        let kinds: Vec<LaneKind> = indices.iter().map(|&i| input.lane_kinds()[i]).collect();
        VecProject {
            input,
            indices,
            kinds,
            child: RowBlock::new(),
        }
    }
}

impl VectorOperator for VecProject {
    fn next_block(&mut self, out: &mut RowBlock) -> usize {
        out.reset(&self.kinds);
        let n = self.input.next_block(&mut self.child);
        if n == 0 {
            return 0;
        }
        for (slot, &src) in self.indices.iter().enumerate() {
            out.lane_mut(slot)
                .extend_range_from(self.child.lane(src), 0..n);
        }
        out.set_len(n);
        n
    }

    fn lane_kinds(&self) -> &[LaneKind] {
        &self.kinds
    }
}

/// The build-side index of a [`VecHashJoin`]: key → row indices into the
/// build arena. Integer key lanes hash raw `i64`s (no `Atom` in the loop
/// at all); other lanes key on owned [`Atom`]s, cloned once per *build
/// row*, never per probe.
enum JoinIndex {
    Int(HashMap<i64, Vec<u32>>),
    Key(HashMap<Atom, Vec<u32>>),
}

/// Block-at-a-time hash join: the left (build) input is drained **once**
/// into a columnar arena plus an index keyed by value — no per-row `Row`
/// clones anywhere — then right blocks probe the index and matches are
/// emitted as lane-wise concatenations.
pub struct VecHashJoin {
    arena: RowBlock,
    index: JoinIndex,
    right: Box<dyn VectorOperator>,
    right_key: usize,
    kinds: Vec<LaneKind>,
    probe: RowBlock,
    probe_pos: usize,
    match_off: usize,
}

impl VecHashJoin {
    /// Build from `left` on `left_key`, prepare to probe `right` on
    /// `right_key`.
    pub fn new(
        mut left: Box<dyn VectorOperator>,
        left_key: usize,
        right: Box<dyn VectorOperator>,
        right_key: usize,
    ) -> Self {
        // Drain the build side once into the columnar arena.
        let mut arena = RowBlock::new();
        arena.reset(left.lane_kinds());
        let mut block = RowBlock::new();
        while left.next_block(&mut block) > 0 {
            arena.append_block(&block);
        }
        // Index the arena's key lane. The arena is the single owner of
        // the build rows: the index holds row numbers, not clones.
        let index = match arena.lane(left_key) {
            Lane::Int(vals) => {
                let mut map: HashMap<i64, Vec<u32>> = HashMap::new();
                for (i, &v) in vals.iter().enumerate() {
                    // lint: allow(per-tuple-alloc) — one Vec per distinct key, not per row
                    map.entry(v).or_default().push(i as u32);
                }
                JoinIndex::Int(map)
            }
            lane => {
                let mut map: HashMap<Atom, Vec<u32>> = HashMap::new();
                for i in 0..lane.len() {
                    // lint: allow(per-tuple-alloc) — Atom fallback lane keys, cloned once per build row
                    map.entry(lane.atom(i)).or_default().push(i as u32);
                }
                JoinIndex::Key(map)
            }
        };
        let mut kinds = arena.lanes.iter().map(Lane::kind).collect::<Vec<_>>();
        kinds.extend_from_slice(right.lane_kinds());
        VecHashJoin {
            arena,
            index,
            right,
            right_key,
            kinds,
            probe: RowBlock::new(),
            probe_pos: 0,
            match_off: 0,
        }
    }
}

/// Look up the build-side matches for probe row `i`, honoring
/// tuple-mode `Atom` equality: an integer index only matches integer
/// probe values (an OID never equals an `Atom::Int`), the atom index
/// matches on full `Atom` equality.
fn probe_matches<'a>(index: &'a JoinIndex, lane: &Lane, i: usize) -> Option<&'a [u32]> {
    match (index, lane) {
        (JoinIndex::Int(map), Lane::Int(v)) => map.get(&v[i]).map(Vec::as_slice),
        (JoinIndex::Int(map), Lane::Atoms(a)) => {
            a[i].as_int().and_then(|v| map.get(&v)).map(Vec::as_slice)
        }
        (JoinIndex::Int(_), Lane::Oid(_)) => None,
        (JoinIndex::Key(map), lane) => map.get(&lane.atom(i)).map(Vec::as_slice),
    }
}

impl VectorOperator for VecHashJoin {
    fn next_block(&mut self, out: &mut RowBlock) -> usize {
        out.reset(&self.kinds);
        loop {
            if self.probe_pos >= self.probe.len() {
                if self.right.next_block(&mut self.probe) == 0 {
                    return out.len();
                }
                self.probe_pos = 0;
                self.match_off = 0;
            }
            while self.probe_pos < self.probe.len() {
                let matches =
                    probe_matches(&self.index, self.probe.lane(self.right_key), self.probe_pos)
                        .unwrap_or(&[]);
                while self.match_off < matches.len() {
                    if out.len() >= BLOCK_OIDS {
                        // Block full mid-list: resume here next call.
                        return out.len();
                    }
                    let build_row = matches[self.match_off] as usize;
                    out.push_joined(&self.arena, build_row, &self.probe, self.probe_pos);
                    self.match_off += 1;
                }
                self.match_off = 0;
                self.probe_pos += 1;
            }
            if !out.is_empty() {
                return out.len();
            }
        }
    }

    fn lane_kinds(&self) -> &[LaneKind] {
        &self.kinds
    }
}

/// Block-at-a-time nested-loop join — the quadratic reference the hash
/// join is differentially tested against, kept for the optimizer's cost
/// crossover experiments. Counts comparisons like its tuple twin.
pub struct VecNestedLoop {
    arena: RowBlock,
    left_key: usize,
    right: Box<dyn VectorOperator>,
    right_key: usize,
    kinds: Vec<LaneKind>,
    probe: RowBlock,
    probe_pos: usize,
    arena_off: usize,
    /// Key comparisons performed (the quadratic cost driver).
    pub comparisons: u64,
}

impl VecNestedLoop {
    /// Build from `left` on `left_key`, probe `right` on `right_key`.
    pub fn new(
        mut left: Box<dyn VectorOperator>,
        left_key: usize,
        right: Box<dyn VectorOperator>,
        right_key: usize,
    ) -> Self {
        let mut arena = RowBlock::new();
        arena.reset(left.lane_kinds());
        let mut block = RowBlock::new();
        while left.next_block(&mut block) > 0 {
            arena.append_block(&block);
        }
        let mut kinds = arena.lanes.iter().map(Lane::kind).collect::<Vec<_>>();
        kinds.extend_from_slice(right.lane_kinds());
        VecNestedLoop {
            arena,
            left_key,
            right,
            right_key,
            kinds,
            probe: RowBlock::new(),
            probe_pos: 0,
            arena_off: 0,
            comparisons: 0,
        }
    }
}

/// Tuple-mode `Atom` equality between two lane values without
/// materializing atoms on the typed fast paths.
fn lane_eq(a: &Lane, i: usize, b: &Lane, j: usize) -> bool {
    match (a, b) {
        (Lane::Int(x), Lane::Int(y)) => x[i] == y[j],
        (Lane::Oid(x), Lane::Oid(y)) => x[i] == y[j],
        (Lane::Int(_), Lane::Oid(_)) | (Lane::Oid(_), Lane::Int(_)) => false,
        (a, b) => a.atom(i) == b.atom(j),
    }
}

impl VectorOperator for VecNestedLoop {
    fn next_block(&mut self, out: &mut RowBlock) -> usize {
        out.reset(&self.kinds);
        loop {
            if self.probe_pos >= self.probe.len() {
                if self.right.next_block(&mut self.probe) == 0 {
                    return out.len();
                }
                self.probe_pos = 0;
                self.arena_off = 0;
            }
            while self.probe_pos < self.probe.len() {
                while self.arena_off < self.arena.len() {
                    if out.len() >= BLOCK_OIDS {
                        return out.len();
                    }
                    let li = self.arena_off;
                    self.arena_off += 1;
                    self.comparisons += 1;
                    if lane_eq(
                        self.arena.lane(self.left_key),
                        li,
                        self.probe.lane(self.right_key),
                        self.probe_pos,
                    ) {
                        out.push_joined(&self.arena, li, &self.probe, self.probe_pos);
                    }
                }
                self.arena_off = 0;
                self.probe_pos += 1;
            }
            if !out.is_empty() {
                return out.len();
            }
        }
    }

    fn lane_kinds(&self) -> &[LaneKind] {
        &self.kinds
    }
}

/// The running `(count, sum, min, max)` state of one group.
type AggState = (i64, i64, i64, i64);

fn agg_update(entry: &mut AggState, v: i64) {
    entry.0 += 1;
    entry.1 += v;
    entry.2 = entry.2.min(v);
    entry.3 = entry.3.max(v);
}

fn agg_finish(func: AggFunc, (count, sum, min, max): AggState) -> i64 {
    match func {
        AggFunc::Count => count,
        AggFunc::Sum => sum,
        AggFunc::Min => min,
        AggFunc::Max => max,
    }
}

/// Block-at-a-time grouped aggregation: groups on one key column,
/// aggregates one value column, emits `(key, aggregate)` blocks in key
/// order — bit-identical to [`super::group::GroupByOp`] because a typed
/// key lane is homogeneous, and `Atom`'s derived order over a single
/// variant is the underlying value order.
pub struct VecGroup {
    results: RowBlock,
    cursor: usize,
    kinds: Vec<LaneKind>,
}

impl VecGroup {
    /// Group `input` on column `key`, aggregating column `agg_col` with
    /// `func` (ignored for [`AggFunc::Count`]).
    pub fn new(
        mut input: Box<dyn VectorOperator>,
        key: usize,
        func: AggFunc,
        agg_col: Option<usize>,
    ) -> Self {
        enum Groups {
            Int(BTreeMap<i64, AggState>),
            Oid(BTreeMap<u64, AggState>),
            Atoms(BTreeMap<Atom, AggState>),
        }
        let mut groups = match input.lane_kinds()[key] {
            LaneKind::Int => Groups::Int(BTreeMap::new()),
            LaneKind::Oid => Groups::Oid(BTreeMap::new()),
            LaneKind::Atom => Groups::Atoms(BTreeMap::new()),
        };
        let mut block = RowBlock::new();
        while input.next_block(&mut block) > 0 {
            for i in 0..block.len() {
                let v = agg_col.and_then(|c| block.lane(c).int_at(i)).unwrap_or(0);
                let entry = match &mut groups {
                    Groups::Int(map) => {
                        let Lane::Int(keys) = block.lane(key) else {
                            unreachable!("key lane kind fixed at construction")
                        };
                        map.entry(keys[i]).or_insert((0, 0, i64::MAX, i64::MIN))
                    }
                    Groups::Oid(map) => {
                        let Lane::Oid(keys) = block.lane(key) else {
                            unreachable!("key lane kind fixed at construction")
                        };
                        map.entry(keys[i]).or_insert((0, 0, i64::MAX, i64::MIN))
                    }
                    Groups::Atoms(map) => map
                        // lint: allow(per-tuple-alloc) — Atom fallback lane keys
                        .entry(block.lane(key).atom(i))
                        .or_insert((0, 0, i64::MAX, i64::MIN)),
                };
                agg_update(entry, v);
            }
        }
        let key_kind = match &groups {
            Groups::Int(_) => LaneKind::Int,
            Groups::Oid(_) => LaneKind::Oid,
            Groups::Atoms(_) => LaneKind::Atom,
        };
        let kinds = vec![key_kind, LaneKind::Int];
        let mut results = RowBlock::new();
        results.reset(&kinds);
        // Per-*group* emission (groups are few): `Atom::Int`/`Atom::Oid`
        // construction is heap-free, and `push_atom` lands each key in
        // its typed lane.
        match groups {
            Groups::Int(map) => {
                for (k, state) in map {
                    results.lanes[0].push_atom(Atom::Int(k));
                    results.lanes[1].push_atom(Atom::Int(agg_finish(func, state)));
                }
            }
            Groups::Oid(map) => {
                for (k, state) in map {
                    results.lanes[0].push_atom(Atom::Oid(k));
                    results.lanes[1].push_atom(Atom::Int(agg_finish(func, state)));
                }
            }
            Groups::Atoms(map) => {
                for (k, state) in map {
                    results.lanes[0].push_atom(k);
                    results.lanes[1].push_atom(Atom::Int(agg_finish(func, state)));
                }
            }
        }
        results.len = results.lanes[0].len();
        VecGroup {
            results,
            cursor: 0,
            kinds,
        }
    }
}

impl VectorOperator for VecGroup {
    fn next_block(&mut self, out: &mut RowBlock) -> usize {
        out.reset(&self.kinds);
        let n = BLOCK_OIDS.min(self.results.len() - self.cursor);
        if n == 0 {
            return 0;
        }
        out.extend_range_from(&self.results, self.cursor..self.cursor + n);
        self.cursor += n;
        n
    }

    fn lane_kinds(&self) -> &[LaneKind] {
        &self.kinds
    }
}

/// A vector leaf over in-memory rows (tests, proptest operator trees):
/// columnarizes once at construction — a column whose atoms are all
/// `Int` (resp. all `Oid`) gets a typed lane, anything else the fallback
/// atom lane.
pub struct VecRowsOp {
    arena: RowBlock,
    cursor: usize,
    kinds: Vec<LaneKind>,
}

impl VecRowsOp {
    /// Wrap `rows` (each of length `arity`) as a block producer.
    pub fn new(rows: Vec<Row>, arity: usize) -> Self {
        let kinds: Vec<LaneKind> = (0..arity)
            .map(|c| {
                if rows.iter().all(|r| matches!(r[c], Atom::Int(_))) {
                    LaneKind::Int
                } else if rows.iter().all(|r| matches!(r[c], Atom::Oid(_))) {
                    LaneKind::Oid
                } else {
                    LaneKind::Atom
                }
            })
            .collect();
        let mut arena = RowBlock::new();
        arena.reset(&kinds);
        for row in rows {
            assert_eq!(row.len(), arity, "row arity mismatch");
            for (lane, a) in arena.lanes.iter_mut().zip(row) {
                lane.push_atom(a);
            }
            arena.len += 1;
        }
        VecRowsOp {
            arena,
            cursor: 0,
            kinds,
        }
    }
}

impl VectorOperator for VecRowsOp {
    fn next_block(&mut self, out: &mut RowBlock) -> usize {
        out.reset(&self.kinds);
        let n = BLOCK_OIDS.min(self.arena.len() - self.cursor);
        if n == 0 {
            return 0;
        }
        out.extend_range_from(&self.arena, self.cursor..self.cursor + n);
        self.cursor += n;
        n
    }

    fn lane_kinds(&self) -> &[LaneKind] {
        &self.kinds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn table() -> Table {
        let a: Vec<i64> = (0..2500).collect();
        let b: Vec<i64> = (0..2500).map(|v| v * 2).collect();
        Table::from_int_columns("t", vec![("a", a), ("b", b)]).expect("well-formed")
    }

    #[test]
    fn scan_emits_blocks_in_oid_order() {
        let t = table();
        let mut scan = VecTableScan::new(&t);
        let mut block = RowBlock::new();
        assert_eq!(scan.next_block(&mut block), BLOCK_OIDS);
        assert_eq!(block.lane(0).atom(0), Atom::Oid(0));
        assert_eq!(block.lane(1).atom(5), Atom::Int(5));
        assert_eq!(scan.next_block(&mut block), BLOCK_OIDS);
        assert_eq!(block.lane(0).atom(0), Atom::Oid(1024));
        assert_eq!(scan.next_block(&mut block), 2500 - 2 * BLOCK_OIDS);
        assert_eq!(scan.next_block(&mut block), 0);
    }

    #[test]
    fn filter_matches_scalar_oracle() {
        let t = table();
        let pred = RangePred::between(100, 199);
        let op = VecFilter::new(Box::new(VecTableScan::new(&t)), 1, pred);
        let rows = run_vector_to_vec(Box::new(op));
        assert_eq!(rows.len(), 100);
        assert!(rows
            .iter()
            .all(|r| r[1].as_int().is_some_and(|v| (100..=199).contains(&v))));
    }

    #[test]
    fn filter_on_oid_lane_matches_nothing() {
        // Tuple mode: Atom::Oid(_).as_int() is None, so a predicate on
        // the OID column never matches. The vector path must agree.
        let t = table();
        let op = VecFilter::new(Box::new(VecTableScan::new(&t)), 0, RangePred::ge(0));
        assert_eq!(run_vector_count(Box::new(op)), 0);
    }

    #[test]
    fn xitap_splits_exactly() {
        let t = table();
        let pred = RangePred::lt(1000);
        let mut tap = VecXiTap::new(Box::new(VecTableScan::new(&t)), 1, pred);
        let mut kept = 0usize;
        let mut block = RowBlock::new();
        loop {
            let n = tap.next_block(&mut block);
            if n == 0 {
                break;
            }
            kept += n;
        }
        assert_eq!(kept, 1000);
        let rejects = tap.take_rejects();
        assert_eq!(rejects.len(), 1500);
        assert!(rejects
            .iter()
            .all(|r| r[1].as_int().is_some_and(|v| v >= 1000)));
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let t = table();
        let hash = VecHashJoin::new(
            Box::new(VecTableScan::without_oid(&t)),
            0,
            Box::new(VecTableScan::without_oid(&t)),
            1,
        );
        let nested = VecNestedLoop::new(
            Box::new(VecTableScan::without_oid(&t)),
            0,
            Box::new(VecTableScan::without_oid(&t)),
            1,
        );
        let mut a = run_vector_to_vec(Box::new(hash));
        let mut b = run_vector_to_vec(Box::new(nested));
        a.sort();
        b.sort();
        assert_eq!(a.len(), 1250, "a == 2*b has 1250 solutions under 2500");
        assert_eq!(a, b);
    }

    #[test]
    fn group_matches_tuple_op() {
        let rows: Vec<Row> = (0..100)
            .map(|i| vec![Atom::Int(i % 7), Atom::Int(i)])
            .collect();
        let vec_g = VecGroup::new(
            Box::new(VecRowsOp::new(rows.clone(), 2)),
            0,
            AggFunc::Sum,
            Some(1),
        );
        let tup_g = super::super::group::GroupByOp::new(
            Box::new(super::super::ops::RowsOp::new(rows, 2)),
            0,
            AggFunc::Sum,
            Some(1),
        );
        assert_eq!(
            run_vector_to_vec(Box::new(vec_g)),
            super::super::run_to_vec(Box::new(tup_g))
        );
    }

    #[test]
    fn project_reorders_lanes() {
        let t = table();
        let op = VecProject::new(Box::new(VecTableScan::new(&t)), vec![2, 1]);
        let rows = run_vector_to_vec(Box::new(op));
        assert_eq!(rows[3], vec![Atom::Int(6), Atom::Int(3)]);
    }
}
