//! Volcano-style query execution.
//!
//! "Most systems use a Volcano-like query evaluation scheme \[Gra93\].
//! Tuples are read from source relations and passed up the tree through
//! filter-, join-, and projection-nodes" (§3.4.1). This module is that
//! scheme: pull-based [`Operator`]s composed into trees. The cracker can
//! be "put in front of a filter node" in exactly this pipeline — see
//! [`ops::XiTapOp`], which captures the non-qualifying tuples a filter
//! would discard, turning a plain scan into a Ξ crack as a byproduct.

pub mod batch;
pub mod group;
pub mod join;
pub mod ops;
pub mod planner;

use storage::Atom;

/// A row flowing through the operator tree.
pub type Row = Vec<Atom>;

/// A pull-based physical operator.
pub trait Operator {
    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self) -> Option<Row>;

    /// Number of output columns.
    fn arity(&self) -> usize;
}

/// Drain an operator into a vector (test / small-result convenience).
pub fn run_to_vec(mut op: Box<dyn Operator>) -> Vec<Row> {
    let mut out = Vec::new();
    while let Some(row) = op.next() {
        out.push(row);
    }
    out
}

/// Drain an operator, counting rows without materializing them.
pub fn run_count(mut op: Box<dyn Operator>) -> usize {
    let mut n = 0;
    while op.next().is_some() {
        n += 1;
    }
    n
}
