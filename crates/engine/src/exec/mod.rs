//! Query execution: a block-at-a-time Volcano tree with a
//! tuple-at-a-time reference twin.
//!
//! "Most systems use a Volcano-like query evaluation scheme \[Gra93\].
//! Tuples are read from source relations and passed up the tree through
//! filter-, join-, and projection-nodes" (§3.4.1). This module keeps
//! that pull-based tree shape but moves data in **blocks**: the default
//! pipeline ([`vector`]) exchanges columnar [`vector::RowBlock`]s of up
//! to [`batch::BLOCK_OIDS`] tuples between [`vector::VectorOperator`]s,
//! while the original tuple-at-a-time [`Operator`] tree survives
//! unchanged as the differential reference the block pipeline is
//! oracle-tested against. [`ExecMode`] (env knob `DBCRACKER_EXEC`)
//! selects between them end-to-end — planner, join chains, SQL.
//!
//! # Block size
//!
//! Both the gather layer ([`batch`]) and the operator pipeline
//! ([`vector`]) use [`batch::BLOCK_OIDS`] = 1024 as the block size: 1k
//! `i64`s is an 8 KiB lane — small enough that a block's lanes, a hit
//! list, and a stretch of the source column coexist in L1; large enough
//! that per-block bookkeeping (a virtual call, two buffer clears, one
//! kernel dispatch) amortizes to noise and the SIMD kernels run
//! full-width for hundreds of iterations. Filters hand whole integer
//! lanes to the `cracker_core::kernel` residual scans, so a filter over
//! a block costs the same vectorized loop as the crack itself.
//!
//! # Morsel claiming and governor polls
//!
//! Scans over a sharded column parallelize at shard granularity:
//! [`morsel`] turns the predicate's touched shard range into
//! independently claimable morsels pulled from one atomic counter by a
//! bounded worker pool (extra workers ride non-blocking
//! `AdmissionGate::try_admit` permits). Each morsel holds exactly one
//! shard latch and releases it before the next claim. The
//! `Governor` deadline/cancel guard is polled at block boundaries —
//! before every morsel claim — because a shard's crack is an atomic
//! step and a partial cross-shard answer could not be discarded without
//! double-cracking; a tripped guard aborts the whole query with no
//! partial answer. See the [`morsel`] module doc for the full
//! discipline.
//!
//! The Ξ-tap exists in both pipelines ([`ops::XiTapOp`],
//! [`vector::VecXiTap`]): the cracker "put in front of a filter node"
//! captures the non-qualifying tuples per block, so
//! cracking-as-byproduct survives vectorization.

pub mod batch;
pub mod group;
pub mod join;
pub mod morsel;
pub mod ops;
pub mod planner;
pub mod vector;

use storage::Atom;

/// A row flowing through the tuple-at-a-time operator tree.
pub type Row = Vec<Atom>;

/// Which operator pipeline executes queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Block-at-a-time columnar pipeline ([`vector`]) — the default.
    #[default]
    Vector,
    /// Tuple-at-a-time Volcano pipeline — the differential reference.
    Tuple,
}

impl ExecMode {
    /// Resolve from the `DBCRACKER_EXEC` environment variable:
    /// `tuple` selects the reference pipeline, anything else (including
    /// unset) the vectorized default.
    pub fn from_env() -> Self {
        match std::env::var("DBCRACKER_EXEC") {
            Ok(v) if v.eq_ignore_ascii_case("tuple") => ExecMode::Tuple,
            _ => ExecMode::Vector,
        }
    }
}

/// A pull-based tuple-at-a-time physical operator.
pub trait Operator {
    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self) -> Option<Row>;

    /// Number of output columns.
    fn arity(&self) -> usize;
}

/// Drain an operator into a vector (test / small-result convenience).
pub fn run_to_vec(mut op: Box<dyn Operator>) -> Vec<Row> {
    let mut out = Vec::new();
    while let Some(row) = op.next() {
        out.push(row);
    }
    out
}

/// Drain an operator, counting rows without materializing them.
pub fn run_count(mut op: Box<dyn Operator>) -> usize {
    let mut n = 0;
    while op.next().is_some() {
        n += 1;
    }
    n
}
