//! Morsel-driven intra-query parallelism for sharded scans.
//!
//! A selection over a [`ShardedCrackerColumn`] decomposes naturally into
//! independent units of work: each shard in the predicate's touched
//! range is answered under its own latch with a shard-clamped predicate
//! (see `cracker_core::sharded`). This module turns those shards into
//! **morsels** — independently claimable work items pulled from a shared
//! atomic counter by a small pool of workers — so one big query uses
//! more than one core while every latch rule still holds:
//!
//! * **Claiming.** Workers race on a single `AtomicUsize` over the
//!   touched shard range `first..=last`. A claim is a `fetch_add(1)`;
//!   whoever increments past `last` stops. No work queue, no stealing —
//!   the counter *is* the schedule, and skew self-balances because a
//!   fast worker simply claims more shards.
//! * **Latching.** Each morsel acquires exactly one shard latch (the
//!   two-phase read→write protocol of `select_shard_oids_into`) and
//!   releases it before the next claim. A worker never holds two shard
//!   latches, so the ascending-order deadlock rule is satisfied
//!   vacuously and morsel workers compose with every other column user.
//! * **Admission.** The caller's query already holds its own admission
//!   permit; only the *extra* workers consume additional
//!   [`AdmissionGate`] permits, acquired non-blockingly with
//!   [`AdmissionGate::try_admit`] — under load the pool degrades to
//!   sequential execution instead of queueing behind itself.
//! * **Governor polls.** The cancel/deadline guard is polled before
//!   every claim — morsel (≈ shard-block) granularity, the same
//!   rationale as the sharded batch path: a shard's crack is an atomic
//!   step, and a partial cross-shard answer could not be discarded
//!   without double-cracking. On cancellation the whole query errors;
//!   **no partial answer escapes** (workers' partial buffers are
//!   dropped), though shards already cracked stay cracked — byproduct
//!   work is never torn, merely kept.
//! * **Determinism.** Each worker tags its buffers with the shard index
//!   it served; the caller sorts the fragments by shard and
//!   concatenates, so the output OID order is identical to the
//!   sequential `select_oids` walk regardless of claim interleaving.

use crate::admission::AdmissionGate;
use crate::error::EngineResult;
use crate::governor::Governor;
use cracker_core::{RangePred, ShardedCrackerColumn};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on morsel workers per query (including the caller's
/// thread). Kept small: shards are the parallelism grain, and a pool
/// wider than the touched shard count or the machine is pure overhead.
pub const MAX_MORSEL_WORKERS: usize = 8;

/// Claim-and-execute loop run by every pool member: pull the next
/// unclaimed shard index, answer it into a local buffer, repeat until
/// the range is exhausted or the guard trips. Returns the locally
/// answered `(shard, oids)` fragments, or `None` when cancelled (the
/// fragments are discarded — no partial answers).
fn work_loop(
    col: &ShardedCrackerColumn<i64>,
    pred: RangePred<i64>,
    next: &AtomicUsize,
    last: usize,
    keep_going: &(dyn Fn() -> bool + Sync),
) -> Option<Vec<(usize, Vec<u32>)>> {
    let mut parts: Vec<(usize, Vec<u32>)> = Vec::new();
    loop {
        if !keep_going() {
            return None;
        }
        let shard = next.fetch_add(1, Ordering::Relaxed);
        if shard > last {
            return Some(parts);
        }
        // lint: allow(per-tuple-alloc) — one buffer per claimed shard (morsel grain), kept as the fragment
        let mut oids = Vec::new();
        col.select_shard_oids_into(shard, pred, &mut oids);
        parts.push((shard, oids));
    }
}

/// Morsel-parallel `select_oids` over a sharded column with an explicit
/// `keep_going` guard — the testable core of
/// [`morsel_select_oids`]. Returns `None` when the guard tripped before
/// all morsels were claimed (no partial answer), `Some(oids)` in
/// sequential shard order otherwise.
///
/// `workers` counts the caller's thread; values ≤ 1 run sequentially on
/// the caller with the same per-claim guard polls. Extra workers beyond
/// the caller are spawned only when `gate` grants a permit without
/// blocking, and the permits are RAII-released when the scope ends.
pub fn morsel_select_oids_guarded(
    col: &ShardedCrackerColumn<i64>,
    pred: RangePred<i64>,
    workers: usize,
    gate: Option<(&AdmissionGate, u64)>,
    keep_going: &(dyn Fn() -> bool + Sync),
) -> Option<Vec<u32>> {
    let Some((first, last)) = col.touched_shards(&pred) else {
        return Some(Vec::new());
    };
    let shard_count = last - first + 1;
    let want = workers.min(MAX_MORSEL_WORKERS).min(shard_count).max(1);
    let next = AtomicUsize::new(first);
    // Only the *extra* workers need permits; the caller's thread rides
    // on the query's own admission. Without a gate (single-user paths,
    // benches) the extras are free.
    let permits: Vec<crate::admission::AdmissionPermit<'_>> = match gate {
        Some((gate, session)) => (1..want).map_while(|_| gate.try_admit(session)).collect(),
        None => Vec::new(),
    };
    let extra = match gate {
        Some(_) => permits.len(),
        None => want - 1,
    };
    let mut fragments: Vec<(usize, Vec<u32>)> = Vec::new();
    let mut cancelled = false;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..extra)
            .map(|_| scope.spawn(|| work_loop(col, pred, &next, last, keep_going)))
            .collect();
        // The caller is worker zero.
        let own = work_loop(col, pred, &next, last, keep_going);
        match own {
            Some(parts) => fragments.extend(parts),
            None => cancelled = true,
        }
        for handle in handles {
            match handle.join() {
                Ok(Some(parts)) => fragments.extend(parts),
                Ok(None) => cancelled = true,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    drop(permits);
    if cancelled {
        return None;
    }
    // Stitch fragments back into ascending shard order: identical
    // output to the sequential walk, claim interleaving invisible.
    fragments.sort_by_key(|(shard, _)| *shard);
    let total = fragments.iter().map(|(_, o)| o.len()).sum();
    let mut out = Vec::with_capacity(total);
    for (_, oids) in fragments {
        out.extend_from_slice(&oids);
    }
    Some(out)
}

/// Morsel-parallel `select_oids` under a [`Governor`]: polls
/// deadline/cancel before every morsel claim and returns the governor's
/// error — with no partial answer — when it trips. See the module doc
/// for the latch/permit discipline.
pub fn morsel_select_oids(
    col: &ShardedCrackerColumn<i64>,
    pred: RangePred<i64>,
    workers: usize,
    gate: Option<(&AdmissionGate, u64)>,
    governor: &Governor,
) -> EngineResult<Vec<u32>> {
    let guard = governor.as_guard();
    match morsel_select_oids_guarded(col, pred, workers, gate, &guard) {
        Some(oids) => Ok(oids),
        None => {
            governor.check()?;
            unreachable!("guard tripped only when the governor denies")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cracker_core::{ConcurrencyMode, ConcurrentColumn, CrackerConfig};
    use std::sync::atomic::AtomicU64;

    fn sharded(n: i64, shards: usize) -> ShardedCrackerColumn<i64> {
        let vals: Vec<i64> = (0..n).map(|i| (i * 7919) % n).collect();
        let col = ConcurrentColumn::build(
            vals,
            CrackerConfig::default(),
            ConcurrencyMode::Sharded { shards },
        );
        match col {
            ConcurrentColumn::Sharded(s) => s,
            ConcurrentColumn::Single(_) => unreachable!("built sharded"),
        }
    }

    #[test]
    fn morsel_output_equals_sequential() {
        let col = sharded(20_000, 8);
        for pred in [
            RangePred::between(100, 15_000),
            RangePred::lt(5),
            RangePred::ge(19_990),
            RangePred::between(10, 9),
        ] {
            let seq = col.select_oids(pred);
            let par = morsel_select_oids(&col, pred, 8, None, &Governor::unbounded())
                .expect("unbounded governor");
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn single_worker_equals_sequential() {
        let col = sharded(5_000, 4);
        let pred = RangePred::between(1_000, 4_000);
        let seq = col.select_oids(pred);
        let par = morsel_select_oids(&col, pred, 1, None, &Governor::unbounded())
            .expect("unbounded governor");
        assert_eq!(par, seq);
    }

    #[test]
    fn cancelled_run_returns_none_and_leaves_column_valid() {
        let col = sharded(20_000, 8);
        let pred = RangePred::between(0, 19_999);
        for cancel_at in 0..10u64 {
            let polls = AtomicU64::new(0);
            let guard = move |polls: &AtomicU64| polls.fetch_add(1, Ordering::Relaxed) < cancel_at;
            let res = morsel_select_oids_guarded(&col, pred, 4, None, &|| guard(&polls));
            if let Some(oids) = res {
                assert_eq!(oids, col.select_oids(pred));
            }
            col.validate()
                .expect("piece maps intact after cancellation");
        }
        // A guard that never trips answers fully.
        let all =
            morsel_select_oids_guarded(&col, pred, 4, None, &|| true).expect("no cancellation");
        assert_eq!(all, col.select_oids(pred));
    }

    #[test]
    fn extra_workers_bounded_by_gate() {
        let gate = AdmissionGate::new(1, 1);
        let col = sharded(10_000, 8);
        let pred = RangePred::between(0, 9_999);
        // One total slot: the pool must degrade to the caller's thread
        // alone (no extra permits available) and still answer fully.
        let held = gate.admit(7);
        let par = morsel_select_oids(&col, pred, 8, Some((&gate, 9)), &Governor::unbounded())
            .expect("unbounded governor");
        drop(held);
        assert_eq!(par, col.select_oids(pred));
    }
}
