//! Physical planning: executing a logical [`Plan`] as a Volcano tree.
//!
//! The paper's two-phase scheme (§3.1): the cracker phase extracts and
//! applies crackers, then "a traditional query optimizer is called upon in
//! the second phase ... to derive an optimal plan of action". This module
//! is that second phase in miniature: it lowers a (typically
//! push-down-rewritten) [`Plan`] onto the physical operators of
//! [`crate::exec`] and runs it against a [`DbCatalog`].

use crate::catalog::DbCatalog;
use crate::error::{EngineError, EngineResult};
use crate::exec::group::GroupByOp;
use crate::exec::join::HashJoinOp;
use crate::exec::ops::{FilterOp, ProjectOp, TableScanOp};
use crate::exec::vector::{
    self, VecFilter, VecGroup, VecHashJoin, VecProject, VecTableScan, VectorOperator,
};
use crate::exec::{ExecMode, Operator, Row};
use crate::plan::Plan;
use crate::query::RangeQuery;

/// A physical operator plus the names of its output columns (the OID
/// column of a scan is named `_oid`; join outputs concatenate sides).
struct Typed {
    op: Box<dyn Operator>,
    names: Vec<String>,
}

/// [`Typed`]'s block-at-a-time twin.
struct TypedVec {
    op: Box<dyn VectorOperator>,
    names: Vec<String>,
}

/// Lower and execute `plan` against `catalog`, materializing all rows.
/// Pipeline selected by [`ExecMode::from_env`] (`DBCRACKER_EXEC`).
pub fn execute_plan(plan: &Plan, catalog: &DbCatalog) -> EngineResult<Vec<Row>> {
    execute_plan_with(plan, catalog, ExecMode::from_env())
}

/// Lower and execute, returning only the row count (no materialization).
/// Pipeline selected by [`ExecMode::from_env`] (`DBCRACKER_EXEC`).
pub fn execute_plan_count(plan: &Plan, catalog: &DbCatalog) -> EngineResult<usize> {
    execute_plan_count_with(plan, catalog, ExecMode::from_env())
}

/// [`execute_plan`] with an explicit pipeline choice — the
/// differential-testing entry point (env-independent, race-free).
pub fn execute_plan_with(
    plan: &Plan,
    catalog: &DbCatalog,
    mode: ExecMode,
) -> EngineResult<Vec<Row>> {
    match mode {
        ExecMode::Vector => {
            let typed = lower_vector(plan, catalog)?;
            Ok(vector::run_vector_to_vec(typed.op))
        }
        ExecMode::Tuple => {
            let typed = lower(plan, catalog)?;
            Ok(crate::exec::run_to_vec(typed.op))
        }
    }
}

/// [`execute_plan_count`] with an explicit pipeline choice.
pub fn execute_plan_count_with(
    plan: &Plan,
    catalog: &DbCatalog,
    mode: ExecMode,
) -> EngineResult<usize> {
    match mode {
        ExecMode::Vector => {
            let typed = lower_vector(plan, catalog)?;
            Ok(vector::run_vector_count(typed.op))
        }
        ExecMode::Tuple => {
            let typed = lower(plan, catalog)?;
            Ok(crate::exec::run_count(typed.op))
        }
    }
}

/// The output column names `plan` produces.
pub fn output_names(plan: &Plan, catalog: &DbCatalog) -> EngineResult<Vec<String>> {
    Ok(lower(plan, catalog)?.names)
}

fn position_of(names: &[String], attr: &str) -> EngineResult<usize> {
    names
        .iter()
        .position(|n| n == attr)
        .ok_or_else(|| EngineError::UnknownColumn {
            table: "<plan>".to_owned(),
            column: attr.to_owned(),
        })
}

fn lower(plan: &Plan, catalog: &DbCatalog) -> EngineResult<Typed> {
    match plan {
        Plan::Scan { table } => {
            let t = catalog.table(table)?;
            let mut names = vec!["_oid".to_owned()];
            names.extend(t.schema().names().iter().map(|s| s.to_string()));
            Ok(Typed {
                op: Box::new(TableScanOp::new(t)),
                names,
            })
        }
        Plan::Select { query, input } => {
            let child = lower(input, catalog)?;
            let idx = position_of(&child.names, &query.attr)?;
            let pred = query.pred;
            let op = FilterOp::new(child.op, move |row: &Row| {
                row[idx].as_int().is_some_and(|v| pred.matches(v))
            });
            Ok(Typed {
                op: Box::new(op),
                names: child.names,
            })
        }
        Plan::Join { step, left, right } => {
            let l = lower(left, catalog)?;
            let r = lower(right, catalog)?;
            let lk = position_of(&l.names, &step.left_attr)?;
            let rk = position_of(&r.names, &step.right_attr)?;
            let mut names = l.names;
            names.extend(r.names);
            Ok(Typed {
                op: Box::new(HashJoinOp::new(l.op, lk, r.op, rk)),
                names,
            })
        }
        Plan::Project { attrs, input } => {
            let child = lower(input, catalog)?;
            let indices = attrs
                .iter()
                .map(|a| position_of(&child.names, a))
                .collect::<EngineResult<Vec<_>>>()?;
            Ok(Typed {
                op: Box::new(ProjectOp::new(child.op, indices)),
                names: attrs.clone(),
            })
        }
        Plan::GroupBy {
            attr,
            agg,
            agg_attr,
            input,
        } => {
            let child = lower(input, catalog)?;
            let key = position_of(&child.names, attr)?;
            let agg_col = match agg_attr {
                Some(a) => Some(position_of(&child.names, a)?),
                None => None,
            };
            Ok(Typed {
                op: Box::new(GroupByOp::new(child.op, key, *agg, agg_col)),
                names: vec![attr.clone(), format!("{agg:?}").to_lowercase()],
            })
        }
    }
}

/// Lower `plan` onto the block-at-a-time pipeline — the vectorized twin
/// of [`lower`], producing the same output columns in the same order.
fn lower_vector(plan: &Plan, catalog: &DbCatalog) -> EngineResult<TypedVec> {
    match plan {
        Plan::Scan { table } => {
            let t = catalog.table(table)?;
            let mut names = vec!["_oid".to_owned()];
            names.extend(t.schema().names().iter().map(|s| s.to_string()));
            Ok(TypedVec {
                op: Box::new(VecTableScan::new(t)),
                names,
            })
        }
        Plan::Select { query, input } => {
            let child = lower_vector(input, catalog)?;
            let idx = position_of(&child.names, &query.attr)?;
            Ok(TypedVec {
                op: Box::new(VecFilter::new(child.op, idx, query.pred)),
                names: child.names,
            })
        }
        Plan::Join { step, left, right } => {
            let l = lower_vector(left, catalog)?;
            let r = lower_vector(right, catalog)?;
            let lk = position_of(&l.names, &step.left_attr)?;
            let rk = position_of(&r.names, &step.right_attr)?;
            let mut names = l.names;
            names.extend(r.names);
            Ok(TypedVec {
                op: Box::new(VecHashJoin::new(l.op, lk, r.op, rk)),
                names,
            })
        }
        Plan::Project { attrs, input } => {
            let child = lower_vector(input, catalog)?;
            let indices = attrs
                .iter()
                .map(|a| position_of(&child.names, a))
                .collect::<EngineResult<Vec<_>>>()?;
            Ok(TypedVec {
                op: Box::new(VecProject::new(child.op, indices)),
                names: attrs.clone(),
            })
        }
        Plan::GroupBy {
            attr,
            agg,
            agg_attr,
            input,
        } => {
            let child = lower_vector(input, catalog)?;
            let key = position_of(&child.names, attr)?;
            let agg_col = match agg_attr {
                Some(a) => Some(position_of(&child.names, a)?),
                None => None,
            };
            Ok(TypedVec {
                op: Box::new(VecGroup::new(child.op, key, *agg, agg_col)),
                names: vec![attr.clone(), format!("{agg:?}").to_lowercase()],
            })
        }
    }
}

/// Convenience: build, push down, and execute a whole DNF term.
/// Pipeline selected by [`ExecMode::from_env`] (`DBCRACKER_EXEC`).
pub fn execute_term(term: &crate::query::QueryTerm, catalog: &DbCatalog) -> EngineResult<Vec<Row>> {
    execute_term_with(term, catalog, ExecMode::from_env())
}

/// [`execute_term`] with an explicit pipeline choice.
pub fn execute_term_with(
    term: &crate::query::QueryTerm,
    catalog: &DbCatalog,
    mode: ExecMode,
) -> EngineResult<Vec<Row>> {
    let plan = Plan::from_term(term).push_down_selections();
    execute_plan_with(&plan, catalog, mode)
}

/// Convenience wrapper building the canonical single-selection plan.
pub fn execute_selection(q: &RangeQuery, catalog: &DbCatalog) -> EngineResult<Vec<Row>> {
    let plan = Plan::Select {
        query: q.clone(),
        input: Box::new(Plan::Scan {
            table: q.table.clone(),
        }),
    };
    execute_plan(&plan, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggFunc, JoinStep, QueryTerm};
    use crate::table::Table;
    use cracker_core::RangePred;
    use storage::Atom;

    fn catalog() -> DbCatalog {
        let mut c = DbCatalog::new();
        c.register(
            Table::from_int_columns(
                "r",
                vec![
                    ("k", (0..50).map(|i| i % 10).collect()),
                    ("a", (0..50).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.register(
            Table::from_int_columns(
                "s",
                vec![
                    ("k", (0..10).collect()),
                    ("b", (0..10).map(|i| i * 100).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn selection_plan_executes() {
        let cat = catalog();
        let rows = execute_selection(&RangeQuery::new("r", "a", RangePred::between(10, 14)), &cat)
            .unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][2], Atom::Int(10));
    }

    #[test]
    fn join_term_executes_and_push_down_is_transparent() {
        let cat = catalog();
        let term = QueryTerm {
            projection: vec![],
            group_by: None,
            selections: vec![RangeQuery::new("r", "a", RangePred::lt(20))],
            joins: vec![JoinStep {
                left: "r".into(),
                left_attr: "k".into(),
                right: "s".into(),
                right_attr: "k".into(),
            }],
            tables: vec!["r".into(), "s".into()],
        };
        // Canonical (selection on top) and pushed-down plans agree.
        let canonical = Plan::from_term(&term);
        let pushed = canonical.clone().push_down_selections();
        let mut a = execute_plan(&canonical, &cat).unwrap();
        let mut b = execute_plan(&pushed, &cat).unwrap();
        a.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        b.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        assert_eq!(a, b, "push-down must not change answers");
        // Each r row with a<20 joins exactly one s row (k in 0..10).
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn group_by_plan_executes() {
        let cat = catalog();
        let term = QueryTerm {
            projection: vec![],
            group_by: Some(("k".into(), AggFunc::Count, None)),
            selections: vec![],
            joins: vec![],
            tables: vec!["r".into()],
        };
        let rows = execute_term(&term, &cat).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r[1] == Atom::Int(5)));
    }

    #[test]
    fn projection_narrows_output() {
        let cat = catalog();
        let term = QueryTerm {
            projection: vec!["a".into()],
            group_by: None,
            selections: vec![RangeQuery::new("r", "a", RangePred::lt(3))],
            joins: vec![],
            tables: vec!["r".into()],
        };
        let plan = Plan::from_term(&term).push_down_selections();
        assert_eq!(output_names(&plan, &cat).unwrap(), vec!["a"]);
        let rows = execute_plan(&plan, &cat).unwrap();
        assert_eq!(
            rows,
            vec![vec![Atom::Int(0)], vec![Atom::Int(1)], vec![Atom::Int(2)]]
        );
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let cat = catalog();
        let err =
            execute_selection(&RangeQuery::new("r", "zzz", RangePred::lt(1)), &cat).unwrap_err();
        assert!(matches!(err, EngineError::UnknownColumn { .. }));
    }

    #[test]
    fn count_variant_avoids_materialization() {
        let cat = catalog();
        let plan = Plan::Scan { table: "r".into() };
        assert_eq!(execute_plan_count(&plan, &cat).unwrap(), 50);
    }
}
