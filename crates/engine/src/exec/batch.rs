//! Block-at-a-time execution: selections, projections, and conjunctive
//! filters over OID blocks instead of per-tuple probes.
//!
//! The tuple-at-a-time Volcano layer ([`super`]) pays a virtual call and a
//! per-tuple `Atom` allocation for every row it moves; the cracker's own
//! kernels ([`cracker_core::kernel`]) only reach SIMD throughput when they
//! see contiguous runs of values. This module is the bridge: qualifying
//! OIDs are materialized through the scratch-buffer selection APIs
//! (`select_oids_into` / `selection_oids_into`), then processed in blocks
//! of [`BLOCK_OIDS`], gathering the referenced column values into a
//! reusable buffer and handing that whole buffer to a
//! [`CrackKernel`] scan — so the residual predicates of a conjunction run
//! the same vectorized loops as the crack itself.
//!
//! # Block size rationale
//!
//! [`BLOCK_OIDS`] = 1024: a block of 1k OIDs gathers into an 8 KiB `i64`
//! buffer — small enough that the gather buffer, the hit list, and a
//! stretch of the source column coexist in L1, large enough that the
//! per-block bookkeeping (two buffer clears, one kernel dispatch)
//! amortizes to noise and the SIMD kernels run full-width lanes for
//! hundreds of iterations. The classic vectorized-execution sweet spot:
//! bigger blocks spill L1 and stall the gather, smaller blocks pay
//! dispatch more often than they compute.
//!
//! All buffers live in [`BlockScratch`], owned by the caller and reused
//! across queries, so a warm batched query performs no allocation at all.

use super::{Operator, Row};
use crate::error::EngineResult;
use crate::table::Table;
use cracker_core::{CrackKernel, RangePred};
use storage::Atom;

/// OIDs processed per block — see the module doc for the rationale.
pub const BLOCK_OIDS: usize = 1024;

/// Reusable buffers for block-at-a-time processing. Create once, pass to
/// every call: the buffers grow to the high-water mark and stay there.
#[derive(Debug, Default)]
pub struct BlockScratch {
    /// Gathered column values for the current block.
    vals: Vec<i64>,
    /// OIDs of the current block that had a gatherable value.
    oids: Vec<u32>,
    /// Kernel hit positions within the current block.
    hits: Vec<usize>,
    /// Survivors accumulated across blocks.
    keep: Vec<u32>,
}

impl BlockScratch {
    /// Fresh (empty) scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Refine `candidates` in place by a residual conjunct: keep only OIDs
/// whose value in `base` satisfies `pred`.
///
/// Processes [`BLOCK_OIDS`]-sized blocks: gather the block's values into
/// `scratch.vals`, run one [`CrackKernel::scan_into`] over the gathered
/// buffer (SIMD sees the full block), and keep the hit OIDs. OIDs with no
/// slot in `base` (staged inserts unknown to the base column) are
/// dropped, matching the intersect semantics of the statement-at-a-time
/// path: an OID qualifies only if the residual column actually stores a
/// matching value for it.
pub fn refine_conjunct(
    kernel: CrackKernel,
    base: &[i64],
    pred: &RangePred<i64>,
    candidates: &mut Vec<u32>,
    scratch: &mut BlockScratch,
) {
    scratch.keep.clear();
    for block in candidates.chunks(BLOCK_OIDS) {
        scratch.vals.clear();
        scratch.oids.clear();
        for &oid in block {
            if let Some(&v) = base.get(oid as usize) {
                scratch.oids.push(oid);
                scratch.vals.push(v);
            }
        }
        scratch.hits.clear();
        kernel.scan_into(
            &scratch.vals,
            0..scratch.vals.len(),
            pred,
            &mut scratch.hits,
        );
        scratch
            .keep
            .extend(scratch.hits.iter().map(|&p| scratch.oids[p]));
    }
    std::mem::swap(candidates, &mut scratch.keep);
}

/// Gather `base[oid]` for every OID into `out` (appending), block at a
/// time — the projection-side counterpart of [`refine_conjunct`].
///
/// # Panics
/// Panics if any OID has no slot in `base`.
pub fn gather_values(base: &[i64], oids: &[u32], out: &mut Vec<i64>) {
    out.reserve(oids.len());
    for block in oids.chunks(BLOCK_OIDS) {
        out.extend(block.iter().map(|&o| base[o as usize]));
    }
}

/// A leaf [`Operator`] emitting `[oid, attr…]` rows for a precomputed OID
/// list, materialized one [`BLOCK_OIDS`] block at a time: each block's
/// values are gathered column-wise into scratch buffers (one contiguous
/// pass per column), then handed out row by row from the buffered block.
/// The Volcano surface stays tuple-at-a-time; the memory traffic becomes
/// block-at-a-time.
pub struct BlockOidScan {
    /// One value vector per projected attribute.
    columns: Vec<Vec<i64>>,
    oids: Vec<u32>,
    /// Rows of the current block, in emit order (reversed for O(1) pop).
    buffered: Vec<Row>,
    cursor: usize,
}

impl BlockOidScan {
    /// Scan `oids` of `table`, projecting `attrs` (all integer columns).
    pub fn new(table: &Table, attrs: &[&str], oids: Vec<u32>) -> EngineResult<Self> {
        let mut columns = Vec::with_capacity(attrs.len());
        for a in attrs {
            // lint: allow(per-tuple-alloc) — one copy per projected column at construction
            columns.push(table.ints(a)?.to_vec());
        }
        Ok(BlockOidScan {
            columns,
            oids,
            buffered: Vec::new(),
            cursor: 0,
        })
    }

    /// Gather the next block into the row buffer.
    fn fill(&mut self) {
        let end = (self.cursor + BLOCK_OIDS).min(self.oids.len());
        let block = &self.oids[self.cursor..end];
        self.cursor = end;
        self.buffered.clear();
        self.buffered.extend(block.iter().map(|&oid| {
            let mut row = Vec::with_capacity(self.columns.len() + 1);
            row.push(Atom::Oid(u64::from(oid)));
            row
        }));
        // Column-wise: one contiguous pass over each source vector.
        for col in &self.columns {
            for (row, &oid) in self.buffered.iter_mut().zip(block) {
                row.push(Atom::Int(col[oid as usize]));
            }
        }
        self.buffered.reverse();
    }
}

impl Operator for BlockOidScan {
    fn next(&mut self) -> Option<Row> {
        if self.buffered.is_empty() {
            if self.cursor >= self.oids.len() {
                return None;
            }
            self.fill();
        }
        self.buffered.pop()
    }

    fn arity(&self) -> usize {
        self.columns.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cracker_core::KernelPolicy;

    fn kernel() -> CrackKernel {
        KernelPolicy::default().resolve()
    }

    #[test]
    fn refine_matches_scalar_filter_across_block_boundaries() {
        let base: Vec<i64> = (0..5_000).map(|i| (i * 13) % 5_000).collect();
        let pred = RangePred::between(1_000, 3_000);
        let mut candidates: Vec<u32> = (0..5_000).step_by(3).collect();
        let want: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|&o| pred.matches(base[o as usize]))
            .collect();
        let mut scratch = BlockScratch::new();
        refine_conjunct(kernel(), &base, &pred, &mut candidates, &mut scratch);
        assert_eq!(candidates, want);
        // A second pass with the same scratch (now warm) is a no-op.
        refine_conjunct(kernel(), &base, &pred, &mut candidates, &mut scratch);
        assert_eq!(candidates, want);
    }

    #[test]
    fn refine_drops_oids_unknown_to_the_base_column() {
        let base = vec![5i64, 10, 15];
        let pred = RangePred::ge(0);
        let mut candidates = vec![0u32, 2, 900];
        let mut scratch = BlockScratch::new();
        refine_conjunct(kernel(), &base, &pred, &mut candidates, &mut scratch);
        assert_eq!(candidates, vec![0, 2]);
    }

    #[test]
    fn gather_values_appends_in_oid_order() {
        let base: Vec<i64> = (0..3_000).map(|i| i * 2).collect();
        let oids: Vec<u32> = (0..3_000).rev().step_by(7).collect();
        let mut out = vec![-1i64];
        gather_values(&base, &oids, &mut out);
        assert_eq!(out.len(), 1 + oids.len());
        assert_eq!(out[0], -1);
        for (slot, &oid) in out[1..].iter().zip(&oids) {
            assert_eq!(*slot, base[oid as usize]);
        }
    }

    #[test]
    fn block_oid_scan_emits_rows_in_oid_list_order() {
        let table = Table::from_int_columns(
            "t",
            vec![
                ("a", (0..2_500).collect()),
                ("b", (0..2_500).map(|i| i * 10).collect()),
            ],
        )
        .unwrap();
        let oids: Vec<u32> = (0..2_500).rev().step_by(2).collect();
        let scan = BlockOidScan::new(&table, &["b", "a"], oids.clone()).unwrap();
        assert_eq!(scan.arity(), 3);
        let rows = super::super::run_to_vec(Box::new(scan));
        assert_eq!(rows.len(), oids.len());
        for (row, &oid) in rows.iter().zip(&oids) {
            assert_eq!(row[0], Atom::Oid(u64::from(oid)));
            assert_eq!(row[1], Atom::Int(i64::from(oid) * 10));
            assert_eq!(row[2], Atom::Int(i64::from(oid)));
        }
        assert!(BlockOidScan::new(&table, &["zzz"], vec![]).is_err());
    }
}
