//! Engine-level scenario replay.
//!
//! `workload::scenario` defines the op streams and the differential
//! oracle; this module plugs the engine's access paths into that harness
//! so single-threaded, single-lock, and sharded executions all replay the
//! same seeded scenario:
//!
//! * [`CrackEngine`] implements `ScenarioExecutor` directly — the default
//!   (unlatched) column path;
//! * [`DbScenarioRunner`] replays a scenario through a registered
//!   [`AdaptiveDb`] table: selects go to the latched
//!   [`cracker_core::ConcurrentColumn`] built under the db's
//!   [`ConcurrencyMode`] (single-lock or sharded), while updates go
//!   through [`AdaptiveDb::stage_insert`] / [`AdaptiveDb::stage_delete`],
//!   which mirror them into *every* cracked copy — exactly the bookkeeping
//!   a production path would exercise.

use cracker_core::ConcurrencyMode;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use storage::fault::{self, FaultKind};
use workload::scenario::{
    ChaosAction, ChaosSchedule, Op, Scenario, ScenarioExecutor, SortedOracle,
};
use workload::Window;

use crate::admission::AdmissionGate;
use crate::db::AdaptiveDb;
use crate::engines::{CrackEngine, QueryEngine};
use crate::error::{EngineError, EngineResult};
use crate::governor::Governor;
use crate::table::Table;

impl ScenarioExecutor for CrackEngine {
    fn label(&self) -> String {
        "engine-crack".to_string()
    }

    fn run_select(&mut self, w: Window) -> Vec<u32> {
        self.result_oids(w.to_pred())
    }

    fn run_insert(&mut self, oid: u32, value: i64) {
        self.column_mut().insert(oid, value);
    }

    fn run_delete(&mut self, oid: u32) -> bool {
        self.column_mut().delete(oid)
    }
}

/// Name of the table a [`DbScenarioRunner`] registers.
pub const SCENARIO_TABLE: &str = "scenario";
/// Name of the replayed column within [`SCENARIO_TABLE`].
pub const SCENARIO_COLUMN: &str = "v";

/// Session id chaos-mode queries run under.
const CHAOS_SESSION: u64 = 1;
/// Session id of the permit-holding blocker a `ShedNext` action installs.
const BLOCKER_SESSION: u64 = 0xB10C;

/// What a chaos replay observed, step by step. Every counter is an
/// *observation*, not a failure: [`DbScenarioRunner::run_chaos`] returns
/// `Err` only when the replay diverges from the oracle or leaves the
/// column in an invalid state — the whole point being that it never does.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Selects answered normally and checked against the oracle.
    pub selects: usize,
    /// Inserts/deletes applied (and mirrored into the oracle).
    pub updates: usize,
    /// Inserts/deletes that failed typed (injected I/O fault or poisoned
    /// log) and were therefore *not* mirrored into the oracle.
    pub failed_updates: usize,
    /// Selects stopped by a pre-cancelled token.
    pub cancelled: usize,
    /// Selects stopped by an already-expired deadline.
    pub deadline_exceeded: usize,
    /// Selects shed at a saturated admission gate.
    pub shed: usize,
    /// Selects that panicked mid-crack (armed tear) and were contained.
    pub panics: usize,
    /// Checkpoints that committed.
    pub checkpoints: usize,
    /// Checkpoints that failed typed under an injected fault.
    pub failed_checkpoints: usize,
    /// Process restarts (crash + warm recovery).
    pub restarts: usize,
    /// I/O fault arms that actually landed on an attached injector.
    pub faults_armed: usize,
}

/// Replays a scenario through a full [`AdaptiveDb`]: catalog-registered
/// table, latched concurrent column per the db's [`ConcurrencyMode`], and
/// staged updates mirrored into every cracked copy.
pub struct DbScenarioRunner {
    db: AdaptiveDb,
    mode: ConcurrencyMode,
    /// Durability directory + group-commit interval, when attached via
    /// [`with_durability`](Self::with_durability).
    durable: Option<(PathBuf, usize)>,
}

impl DbScenarioRunner {
    /// Register the scenario's base column as table
    /// [`SCENARIO_TABLE`]`.`[`SCENARIO_COLUMN`] in a fresh db running
    /// under `mode`, and eagerly build the latched cracked copy so the
    /// replay measures steady-state bookkeeping, not first-touch setup.
    pub fn new<S: Scenario + ?Sized>(scenario: &S, mode: ConcurrencyMode) -> EngineResult<Self> {
        let mut db = AdaptiveDb::new().with_concurrency(mode);
        db.register(Table::from_int_columns(
            SCENARIO_TABLE,
            vec![(SCENARIO_COLUMN, scenario.base().to_vec())],
        )?)?;
        db.shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)?;
        Ok(DbScenarioRunner {
            db,
            mode,
            durable: None,
        })
    }

    /// Like [`new`](Self::new), but durable: the db checkpoints into `dir`
    /// at construction and redo-logs every staged update with the given
    /// group-commit interval, so the replay can be interrupted by
    /// [`restart`](Self::restart) (or a real crash) at any point.
    pub fn with_durability<S: Scenario + ?Sized>(
        scenario: &S,
        mode: ConcurrencyMode,
        dir: impl Into<PathBuf>,
        group_commit: usize,
    ) -> EngineResult<Self> {
        let dir = dir.into();
        let mut runner = Self::new(scenario, mode)?;
        runner.db.attach_durability(&dir, group_commit)?;
        runner.durable = Some((dir, group_commit));
        Ok(runner)
    }

    /// Checkpoint the replayed state (no-op error when the runner was not
    /// built [`with_durability`](Self::with_durability)). Returns the
    /// committed epoch.
    pub fn checkpoint(&mut self) -> EngineResult<u64> {
        self.db.checkpoint()
    }

    /// Simulate a process restart: drop the in-memory database on the
    /// floor and recover a fresh one from the durability directory — last
    /// checkpoint plus redo-log replay, piece maps validated, crack state
    /// warm. Replay then continues through the recovered db.
    pub fn restart(&mut self) -> EngineResult<()> {
        let (dir, group_commit) = self
            .durable
            .clone()
            .ok_or_else(crate::durability::not_attached)?;
        self.db = AdaptiveDb::recover(&dir, cracker_core::CrackerConfig::default(), group_commit)?;
        Ok(())
    }

    /// The concurrency mode the replay runs under.
    pub fn mode(&self) -> ConcurrencyMode {
        self.mode
    }

    /// The underlying database (stats, catalog inspection).
    pub fn db(&self) -> &AdaptiveDb {
        &self.db
    }

    /// Consume the runner, keeping the database it drove.
    pub fn into_db(self) -> AdaptiveDb {
        self.db
    }

    /// Answer a buffered batch of select windows in one call through the
    /// latched column's amortized batch path
    /// ([`cracker_core::ConcurrentColumn::select_oids_batch`]): one lock
    /// acquisition per batch (single-lock) or per touched shard per batch
    /// (sharded). `results[i]` answers `windows[i]`.
    pub fn run_select_batch(&mut self, windows: &[Window]) -> Vec<Vec<u32>> {
        let preds: Vec<_> = windows.iter().map(|w| w.to_pred()).collect();
        self.db
            .shared_select_batch(SCENARIO_TABLE, SCENARIO_COLUMN, &preds)
            // lint: allow(unwrap) — the constructor registers this column
            .expect("scenario column registered at construction")
    }

    /// Install the chaos admission gate if none is present: one slot, no
    /// wait queue — so a `ShedNext` blocker saturates it instantly and an
    /// ordinary query (arriving at a free gate) sails through.
    fn ensure_chaos_gate(&mut self) {
        if self.db.admission().is_none() {
            self.db
                .set_admission(AdmissionGate::with_wait_bound(1, 1, 0));
        }
    }

    /// Replay `scenario` under a seeded [`ChaosSchedule`], pinning every
    /// step to the sorted differential oracle.
    ///
    /// Each step first applies the schedule's actions for that step —
    /// arming I/O faults (modulo-mapped onto [`fault::ALL_POINTS`] and the
    /// four [`FaultKind`]s), flagging the next select for cancellation /
    /// an expired deadline / load-shedding / an armed mid-crack panic, or
    /// checkpointing / restarting the database — then runs the scenario
    /// op:
    ///
    /// * a **disturbed select** must surface exactly its typed error
    ///   ([`EngineError::Cancelled`], [`EngineError::DeadlineExceeded`],
    ///   [`EngineError::Overloaded`]) or panic inside the containment
    ///   wrapper; either way the column must still validate, and — the
    ///   core guarantee — every *later* answer must match the oracle as
    ///   if the disturbed query had never run;
    /// * an **undisturbed select** must match `oracle.select_oids`;
    /// * an **update** that fails typed (injected fault, poisoned log) is
    ///   *skipped in the oracle too* — write-ahead logging rolls the
    ///   record back before poisoning, so a failed update is atomic;
    /// * a **restart** recovers warm from the durability directory; the
    ///   oracle carries over untouched.
    ///
    /// Fault-arming, checkpoint, and restart actions are skipped when the
    /// runner was not built [`with_durability`](Self::with_durability).
    /// Returns `Err` on any divergence; `Ok` carries the observation
    /// counts.
    pub fn run_chaos<S: Scenario + ?Sized>(
        &mut self,
        scenario: &mut S,
        schedule: &ChaosSchedule,
    ) -> Result<ChaosReport, String> {
        const KINDS: [FaultKind; 4] = [
            FaultKind::Eio,
            FaultKind::ShortWrite,
            FaultKind::FsyncFail,
            FaultKind::Enospc,
        ];
        let durable = self.durable.is_some();
        let mut oracle = SortedOracle::new(scenario.base());
        let mut report = ChaosReport::default();
        self.ensure_chaos_gate();
        let (mut cancel_next, mut deadline_next) = (false, false);
        let (mut shed_next, mut panic_next) = (false, false);
        for (step, op) in (&mut *scenario).enumerate() {
            for action in schedule.at(step) {
                match action {
                    ChaosAction::ArmFault { point, kind, fires } if durable => {
                        let p = fault::ALL_POINTS[point as usize % fault::ALL_POINTS.len()];
                        let k = KINDS[kind as usize % KINDS.len()];
                        if self.db.arm_io_fault(p, 0, k, fires) {
                            report.faults_armed += 1;
                        }
                    }
                    ChaosAction::ArmFault { .. } => {}
                    ChaosAction::CancelNext => cancel_next = true,
                    ChaosAction::DeadlineNext => deadline_next = true,
                    ChaosAction::ShedNext => shed_next = true,
                    ChaosAction::PanicNext => panic_next = true,
                    ChaosAction::Checkpoint if durable => match self.checkpoint() {
                        Ok(_) => report.checkpoints += 1,
                        Err(_) => report.failed_checkpoints += 1,
                    },
                    ChaosAction::Checkpoint => {}
                    ChaosAction::Restart if durable => {
                        self.restart()
                            .map_err(|e| format!("step {step}: restart failed: {e}"))?;
                        self.ensure_chaos_gate();
                        report.restarts += 1;
                    }
                    ChaosAction::Restart => {}
                }
            }
            match op {
                Op::Select(w) => {
                    self.chaos_select(
                        w,
                        &oracle,
                        &mut report,
                        step,
                        (cancel_next, deadline_next, shed_next, panic_next),
                    )?;
                    (cancel_next, deadline_next) = (false, false);
                    (shed_next, panic_next) = (false, false);
                }
                Op::Insert { oid, value } => {
                    match self
                        .db
                        .stage_insert(SCENARIO_TABLE, SCENARIO_COLUMN, oid, value)
                    {
                        Ok(()) => {
                            oracle.insert(oid, value);
                            report.updates += 1;
                        }
                        Err(_) => report.failed_updates += 1,
                    }
                }
                Op::Delete { oid } => {
                    match self.db.stage_delete(SCENARIO_TABLE, SCENARIO_COLUMN, oid) {
                        Ok(found) => {
                            let want = oracle.delete(oid);
                            if found != want {
                                return Err(format!(
                                    "step {step}: delete({oid}) found={found}, oracle={want}"
                                ));
                            }
                            report.updates += 1;
                        }
                        Err(_) => report.failed_updates += 1,
                    }
                }
            }
        }
        self.db
            .shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)
            .map_err(|e| format!("final: shared cracker lost: {e}"))?
            .validate()
            .map_err(|e| format!("final: column invalid after chaos replay: {e}"))?;
        Ok(report)
    }

    /// One select step of [`run_chaos`](Self::run_chaos): disturbed per
    /// the pending flags, otherwise answered and pinned to the oracle.
    fn chaos_select(
        &mut self,
        w: Window,
        oracle: &SortedOracle,
        report: &mut ChaosReport,
        step: usize,
        (cancel, deadline, shed, panic): (bool, bool, bool, bool),
    ) -> Result<(), String> {
        let preds = [w.to_pred()];
        if cancel {
            let governor = Governor::unbounded();
            governor.token().cancel();
            return match self.db.shared_select_batch_governed(
                SCENARIO_TABLE,
                SCENARIO_COLUMN,
                &preds,
                &governor,
                CHAOS_SESSION,
            ) {
                Err(EngineError::Cancelled) => {
                    report.cancelled += 1;
                    Ok(())
                }
                other => Err(format!(
                    "step {step}: pre-cancelled select returned {other:?}"
                )),
            };
        }
        if deadline {
            let governor = Governor::with_deadline(Duration::ZERO);
            return match self.db.shared_select_batch_governed(
                SCENARIO_TABLE,
                SCENARIO_COLUMN,
                &preds,
                &governor,
                CHAOS_SESSION,
            ) {
                Err(EngineError::DeadlineExceeded { .. }) => {
                    report.deadline_exceeded += 1;
                    Ok(())
                }
                other => Err(format!(
                    "step {step}: zero-deadline select returned {other:?}"
                )),
            };
        }
        if shed {
            let gate = Arc::clone(
                self.db
                    .admission()
                    // lint: allow(unwrap) — run_chaos installs a gate before replaying
                    .expect("run_chaos installs a gate before replaying"),
            );
            let blocker = gate.try_admit(BLOCKER_SESSION);
            let governor = Governor::with_deadline(Duration::from_millis(20));
            let res = self.db.shared_select_batch_governed(
                SCENARIO_TABLE,
                SCENARIO_COLUMN,
                &preds,
                &governor,
                CHAOS_SESSION,
            );
            drop(blocker);
            return match res {
                Err(EngineError::Overloaded { .. }) => {
                    report.shed += 1;
                    Ok(())
                }
                other => Err(format!(
                    "step {step}: select at a saturated gate returned {other:?}"
                )),
            };
        }
        if panic {
            self.db
                .shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)
                .map_err(|e| format!("step {step}: shared cracker lost: {e}"))?
                .arm_panic_on_crack(0);
        }
        // An armed panic may only fire on a *later* select (this one may
        // not crack), so every normal select runs inside the containment
        // wrapper and validates on the way out.
        let governor = Governor::unbounded();
        let db = &mut self.db;
        let res = catch_unwind(AssertUnwindSafe(|| {
            db.shared_select_batch_governed(
                SCENARIO_TABLE,
                SCENARIO_COLUMN,
                &preds,
                &governor,
                CHAOS_SESSION,
            )
        }));
        match res {
            Err(_) => {
                report.panics += 1;
                self.db
                    .shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)
                    .map_err(|e| format!("step {step}: shared cracker lost: {e}"))?
                    .validate()
                    .map_err(|e| format!("step {step}: column invalid after panic: {e}"))?;
                Ok(())
            }
            Ok(Ok(outs)) => {
                report.selects += 1;
                let mut got = outs.into_iter().next().unwrap_or_default();
                got.sort_unstable();
                let want = oracle.select_oids(w);
                if got != want {
                    return Err(format!(
                        "step {step}: select [{}, {}) diverged: got {} oids, oracle {}",
                        w.lo,
                        w.hi,
                        got.len(),
                        want.len()
                    ));
                }
                Ok(())
            }
            Ok(Err(e)) => Err(format!("step {step}: undisturbed select failed: {e}")),
        }
    }
}

impl ScenarioExecutor for DbScenarioRunner {
    fn label(&self) -> String {
        format!("adaptive-db({:?})", self.mode)
    }

    fn run_select(&mut self, w: Window) -> Vec<u32> {
        self.db
            .shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)
            // lint: allow(unwrap) — the constructor registers this column
            .expect("scenario column registered at construction")
            .select_oids(w.to_pred())
    }

    fn run_insert(&mut self, oid: u32, value: i64) {
        self.db
            .stage_insert(SCENARIO_TABLE, SCENARIO_COLUMN, oid, value)
            // lint: allow(unwrap) — the constructor registers this column
            .expect("scenario column registered at construction");
    }

    fn run_delete(&mut self, oid: u32) -> bool {
        self.db
            .stage_delete(SCENARIO_TABLE, SCENARIO_COLUMN, oid)
            // lint: allow(unwrap) — the constructor registers this column
            .expect("scenario column registered at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::scenario::{ScenarioRunner, Shift, ShiftingHotSet, UpdateHeavy, ZipfQueries};
    use workload::Mqs;

    #[test]
    fn crack_engine_replays_differentially() {
        let mut scenario = ZipfQueries::new(5_000, 1_000, 1.1, 48, 3);
        let mut engine = CrackEngine::new(scenario.base().to_vec());
        let report = ScenarioRunner::run_differential(&mut scenario, &mut engine)
            .expect("engine path agrees with the oracle");
        assert_eq!(report.selects, 48);
        engine.column().validate().expect("invariants hold");
    }

    #[test]
    fn db_runner_replays_in_both_lock_modes() {
        for mode in [
            ConcurrencyMode::SingleLock,
            ConcurrencyMode::Sharded { shards: 8 },
        ] {
            let mut scenario = UpdateHeavy::new(Mqs::paper_default(4_000, 32, 0.05), 3.0, 4, 17);
            let mut runner = DbScenarioRunner::new(&scenario, mode).expect("register");
            assert_eq!(runner.mode(), mode);
            let report = ScenarioRunner::run_differential(&mut scenario, &mut runner)
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
            assert_eq!(report.selects, 32);
            assert!(report.inserts + report.deletes > 0, "mix really updated");
            let db = runner.into_db();
            assert_eq!(db.shared_columns(), 1);
            assert!(db.total_crack_stats().queries > 0);
        }
    }

    #[test]
    fn chaos_replay_without_durability_stays_pinned_to_the_oracle() {
        // No durability: fault/checkpoint/restart actions are skipped but
        // cancellations, deadlines, shedding, and armed panics all fire.
        for mode in [
            ConcurrencyMode::SingleLock,
            ConcurrencyMode::Sharded { shards: 4 },
        ] {
            let mut scenario = UpdateHeavy::new(Mqs::paper_default(3_000, 48, 0.05), 2.0, 3, 11);
            let mut runner = DbScenarioRunner::new(&scenario, mode).expect("register");
            let schedule = workload::scenario::ChaosSchedule::seeded(200, 42, 0.6);
            let report = runner
                .run_chaos(&mut scenario, &schedule)
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
            assert!(report.selects > 0, "{mode:?}: some selects ran clean");
            assert!(
                report.cancelled + report.deadline_exceeded + report.shed > 0,
                "{mode:?}: intensity 0.6 over 200 steps disturbed something"
            );
            assert_eq!(report.restarts, 0, "{mode:?}: non-durable skips restarts");
            assert_eq!(report.faults_armed, 0, "{mode:?}: no injector to arm");
        }
    }

    #[test]
    fn disturbed_selects_leave_no_trace_in_later_answers() {
        // Interleave every disturbance kind with clean selects by hand
        // and pin each clean answer to an undisturbed twin runner.
        let make = || ZipfQueries::new(2_000, 800, 1.1, 40, 7);
        let mut chaotic = DbScenarioRunner::new(&make(), ConcurrencyMode::SingleLock).unwrap();
        let mut calm = DbScenarioRunner::new(&make(), ConcurrencyMode::SingleLock).unwrap();
        let mut scenario = make();
        // Disturb a different way on each step mod 5; step mod 5 == 4 and
        // updates replay identically in both runners.
        let schedule = ChaosSchedule::from_actions(
            (0..40)
                .filter_map(|s| match s % 5 {
                    0 => Some((s, ChaosAction::CancelNext)),
                    1 => Some((s, ChaosAction::DeadlineNext)),
                    2 => Some((s, ChaosAction::ShedNext)),
                    3 => Some((s, ChaosAction::PanicNext)),
                    _ => None,
                })
                .collect(),
        );
        let report = chaotic.run_chaos(&mut scenario, &schedule).expect("pinned");
        assert!(report.cancelled > 0 && report.deadline_exceeded > 0);
        assert!(report.shed > 0);
        // The calm twin replays the same ops untouched; afterwards both
        // runners must answer identical windows identically.
        let mut scenario = make();
        ScenarioRunner::run_differential(&mut scenario, &mut calm).expect("calm replay");
        for w in [
            Window::new(0, 100),
            Window::new(100, 400),
            Window::new(350, 800),
        ] {
            let mut a = chaotic.run_select(w);
            let mut b = calm.run_select(w);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "disturbed history changed [{}, {})", w.lo, w.hi);
        }
    }

    #[test]
    fn both_modes_see_identical_result_streams() {
        // The same seeded scenario replayed under each mode: per-select
        // result sets must match each other, not just the oracle.
        let make = || ShiftingHotSet::new(4_000, 64, 8, Shift::Drift { step: 1_000 }, 9);
        let mut single = DbScenarioRunner::new(&make(), ConcurrencyMode::SingleLock).unwrap();
        let mut sharded =
            DbScenarioRunner::new(&make(), ConcurrencyMode::Sharded { shards: 4 }).unwrap();
        let mut scenario = make();
        for op in &mut scenario {
            if let workload::scenario::Op::Select(w) = op {
                let mut a = single.run_select(w);
                let mut b = sharded.run_select(w);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "modes disagree on [{}, {})", w.lo, w.hi);
            }
        }
    }
}
