//! Engine-level scenario replay.
//!
//! `workload::scenario` defines the op streams and the differential
//! oracle; this module plugs the engine's access paths into that harness
//! so single-threaded, single-lock, and sharded executions all replay the
//! same seeded scenario:
//!
//! * [`CrackEngine`] implements `ScenarioExecutor` directly — the default
//!   (unlatched) column path;
//! * [`DbScenarioRunner`] replays a scenario through a registered
//!   [`AdaptiveDb`] table: selects go to the latched
//!   [`cracker_core::ConcurrentColumn`] built under the db's
//!   [`ConcurrencyMode`] (single-lock or sharded), while updates go
//!   through [`AdaptiveDb::stage_insert`] / [`AdaptiveDb::stage_delete`],
//!   which mirror them into *every* cracked copy — exactly the bookkeeping
//!   a production path would exercise.

use cracker_core::ConcurrencyMode;
use std::path::PathBuf;
use workload::scenario::{Scenario, ScenarioExecutor};
use workload::Window;

use crate::db::AdaptiveDb;
use crate::engines::{CrackEngine, QueryEngine};
use crate::error::EngineResult;
use crate::table::Table;

impl ScenarioExecutor for CrackEngine {
    fn label(&self) -> String {
        "engine-crack".to_string()
    }

    fn run_select(&mut self, w: Window) -> Vec<u32> {
        self.result_oids(w.to_pred())
    }

    fn run_insert(&mut self, oid: u32, value: i64) {
        self.column_mut().insert(oid, value);
    }

    fn run_delete(&mut self, oid: u32) -> bool {
        self.column_mut().delete(oid)
    }
}

/// Name of the table a [`DbScenarioRunner`] registers.
pub const SCENARIO_TABLE: &str = "scenario";
/// Name of the replayed column within [`SCENARIO_TABLE`].
pub const SCENARIO_COLUMN: &str = "v";

/// Replays a scenario through a full [`AdaptiveDb`]: catalog-registered
/// table, latched concurrent column per the db's [`ConcurrencyMode`], and
/// staged updates mirrored into every cracked copy.
pub struct DbScenarioRunner {
    db: AdaptiveDb,
    mode: ConcurrencyMode,
    /// Durability directory + group-commit interval, when attached via
    /// [`with_durability`](Self::with_durability).
    durable: Option<(PathBuf, usize)>,
}

impl DbScenarioRunner {
    /// Register the scenario's base column as table
    /// [`SCENARIO_TABLE`]`.`[`SCENARIO_COLUMN`] in a fresh db running
    /// under `mode`, and eagerly build the latched cracked copy so the
    /// replay measures steady-state bookkeeping, not first-touch setup.
    pub fn new<S: Scenario + ?Sized>(scenario: &S, mode: ConcurrencyMode) -> EngineResult<Self> {
        let mut db = AdaptiveDb::new().with_concurrency(mode);
        db.register(Table::from_int_columns(
            SCENARIO_TABLE,
            vec![(SCENARIO_COLUMN, scenario.base().to_vec())],
        )?)?;
        db.shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)?;
        Ok(DbScenarioRunner {
            db,
            mode,
            durable: None,
        })
    }

    /// Like [`new`](Self::new), but durable: the db checkpoints into `dir`
    /// at construction and redo-logs every staged update with the given
    /// group-commit interval, so the replay can be interrupted by
    /// [`restart`](Self::restart) (or a real crash) at any point.
    pub fn with_durability<S: Scenario + ?Sized>(
        scenario: &S,
        mode: ConcurrencyMode,
        dir: impl Into<PathBuf>,
        group_commit: usize,
    ) -> EngineResult<Self> {
        let dir = dir.into();
        let mut runner = Self::new(scenario, mode)?;
        runner.db.attach_durability(&dir, group_commit)?;
        runner.durable = Some((dir, group_commit));
        Ok(runner)
    }

    /// Checkpoint the replayed state (no-op error when the runner was not
    /// built [`with_durability`](Self::with_durability)). Returns the
    /// committed epoch.
    pub fn checkpoint(&mut self) -> EngineResult<u64> {
        self.db.checkpoint()
    }

    /// Simulate a process restart: drop the in-memory database on the
    /// floor and recover a fresh one from the durability directory — last
    /// checkpoint plus redo-log replay, piece maps validated, crack state
    /// warm. Replay then continues through the recovered db.
    pub fn restart(&mut self) -> EngineResult<()> {
        let (dir, group_commit) = self
            .durable
            .clone()
            .ok_or_else(crate::durability::not_attached)?;
        self.db = AdaptiveDb::recover(&dir, cracker_core::CrackerConfig::default(), group_commit)?;
        Ok(())
    }

    /// The concurrency mode the replay runs under.
    pub fn mode(&self) -> ConcurrencyMode {
        self.mode
    }

    /// The underlying database (stats, catalog inspection).
    pub fn db(&self) -> &AdaptiveDb {
        &self.db
    }

    /// Consume the runner, keeping the database it drove.
    pub fn into_db(self) -> AdaptiveDb {
        self.db
    }

    /// Answer a buffered batch of select windows in one call through the
    /// latched column's amortized batch path
    /// ([`cracker_core::ConcurrentColumn::select_oids_batch`]): one lock
    /// acquisition per batch (single-lock) or per touched shard per batch
    /// (sharded). `results[i]` answers `windows[i]`.
    pub fn run_select_batch(&mut self, windows: &[Window]) -> Vec<Vec<u32>> {
        let preds: Vec<_> = windows.iter().map(|w| w.to_pred()).collect();
        self.db
            .shared_select_batch(SCENARIO_TABLE, SCENARIO_COLUMN, &preds)
            // lint: allow(unwrap) — the constructor registers this column
            .expect("scenario column registered at construction")
    }
}

impl ScenarioExecutor for DbScenarioRunner {
    fn label(&self) -> String {
        format!("adaptive-db({:?})", self.mode)
    }

    fn run_select(&mut self, w: Window) -> Vec<u32> {
        self.db
            .shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)
            // lint: allow(unwrap) — the constructor registers this column
            .expect("scenario column registered at construction")
            .select_oids(w.to_pred())
    }

    fn run_insert(&mut self, oid: u32, value: i64) {
        self.db
            .stage_insert(SCENARIO_TABLE, SCENARIO_COLUMN, oid, value)
            // lint: allow(unwrap) — the constructor registers this column
            .expect("scenario column registered at construction");
    }

    fn run_delete(&mut self, oid: u32) -> bool {
        self.db
            .stage_delete(SCENARIO_TABLE, SCENARIO_COLUMN, oid)
            // lint: allow(unwrap) — the constructor registers this column
            .expect("scenario column registered at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::scenario::{ScenarioRunner, Shift, ShiftingHotSet, UpdateHeavy, ZipfQueries};
    use workload::Mqs;

    #[test]
    fn crack_engine_replays_differentially() {
        let mut scenario = ZipfQueries::new(5_000, 1_000, 1.1, 48, 3);
        let mut engine = CrackEngine::new(scenario.base().to_vec());
        let report = ScenarioRunner::run_differential(&mut scenario, &mut engine)
            .expect("engine path agrees with the oracle");
        assert_eq!(report.selects, 48);
        engine.column().validate().expect("invariants hold");
    }

    #[test]
    fn db_runner_replays_in_both_lock_modes() {
        for mode in [
            ConcurrencyMode::SingleLock,
            ConcurrencyMode::Sharded { shards: 8 },
        ] {
            let mut scenario = UpdateHeavy::new(Mqs::paper_default(4_000, 32, 0.05), 3.0, 4, 17);
            let mut runner = DbScenarioRunner::new(&scenario, mode).expect("register");
            assert_eq!(runner.mode(), mode);
            let report = ScenarioRunner::run_differential(&mut scenario, &mut runner)
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
            assert_eq!(report.selects, 32);
            assert!(report.inserts + report.deletes > 0, "mix really updated");
            let db = runner.into_db();
            assert_eq!(db.shared_columns(), 1);
            assert!(db.total_crack_stats().queries > 0);
        }
    }

    #[test]
    fn both_modes_see_identical_result_streams() {
        // The same seeded scenario replayed under each mode: per-select
        // result sets must match each other, not just the oracle.
        let make = || ShiftingHotSet::new(4_000, 64, 8, Shift::Drift { step: 1_000 }, 9);
        let mut single = DbScenarioRunner::new(&make(), ConcurrencyMode::SingleLock).unwrap();
        let mut sharded =
            DbScenarioRunner::new(&make(), ConcurrencyMode::Sharded { shards: 4 }).unwrap();
        let mut scenario = make();
        for op in &mut scenario {
            if let workload::scenario::Op::Select(w) = op {
                let mut a = single.run_select(w);
                let mut b = sharded.run_select(w);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "modes disagree on [{}, {})", w.lo, w.hi);
            }
        }
    }
}
