//! Logical plans and the cracker-aware rewrites of §3.3.
//!
//! "The Ξ cracker effectively realizes the select-push-down rewrite rule
//! of the optimizer." This module provides a small logical algebra, the
//! push-down rewrite, an `EXPLAIN`-style printer, and the piece-count
//! arithmetic the paper uses to argue about optimizer pressure ("for a
//! linear k-way join 4(k−1) pieces are added to the cracker index. The Ω
//! cracker adds another 2|g| pieces for a grouping over g attributes").

use crate::query::{AggFunc, JoinStep, QueryTerm, RangeQuery};
use std::fmt::Write as _;

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Base-table access.
    Scan {
        /// Table name.
        table: String,
    },
    /// Selection.
    Select {
        /// The range selection applied.
        query: RangeQuery,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Equi-join of two subplans.
    Join {
        /// The join predicate.
        step: JoinStep,
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Projection.
    Project {
        /// Attributes kept.
        attrs: Vec<String>,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Grouped aggregation.
    GroupBy {
        /// Grouping attribute.
        attr: String,
        /// Aggregate function.
        agg: AggFunc,
        /// Aggregated attribute (None for COUNT).
        agg_attr: Option<String>,
        /// Input plan.
        input: Box<Plan>,
    },
}

impl Plan {
    /// Build the canonical (un-optimized) plan for a DNF term: selections
    /// stacked *on top of* the join tree, exactly the shape eq. (1) of the
    /// paper denotes before any optimization.
    pub fn from_term(term: &QueryTerm) -> Plan {
        // Left-deep join tree over the table list.
        let mut plan = Plan::Scan {
            table: term
                .tables
                .first()
                .cloned()
                .unwrap_or_else(|| "<empty>".into()),
        };
        for step in &term.joins {
            plan = Plan::Join {
                step: step.clone(),
                left: Box::new(plan),
                right: Box::new(Plan::Scan {
                    table: step.right.clone(),
                }),
            };
        }
        for sel in &term.selections {
            plan = Plan::Select {
                query: sel.clone(),
                input: Box::new(plan),
            };
        }
        if let Some((attr, agg, agg_attr)) = &term.group_by {
            plan = Plan::GroupBy {
                attr: attr.clone(),
                agg: *agg,
                agg_attr: agg_attr.clone(),
                input: Box::new(plan),
            };
        }
        if !term.projection.is_empty() {
            plan = Plan::Project {
                attrs: term.projection.clone(),
                input: Box::new(plan),
            };
        }
        plan
    }

    /// The select-push-down rewrite: move every selection down to sit
    /// directly above the scan of its table. After cracking, this is the
    /// plan shape the cracker index serves for free — "localization cost
    /// has dropped to zero" (§3.3).
    pub fn push_down_selections(self) -> Plan {
        let (mut plan, selections) = self.strip_selections();
        for sel in selections {
            plan = plan.attach_to_scan(sel);
        }
        plan
    }

    /// Remove all Select nodes, returning the bare plan plus the stripped
    /// selections (outermost first).
    fn strip_selections(self) -> (Plan, Vec<RangeQuery>) {
        match self {
            Plan::Select { query, input } => {
                let (plan, mut sels) = input.strip_selections();
                sels.push(query);
                (plan, sels)
            }
            Plan::Join { step, left, right } => {
                let (l, mut ls) = left.strip_selections();
                let (r, rs) = right.strip_selections();
                ls.extend(rs);
                (
                    Plan::Join {
                        step,
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                    ls,
                )
            }
            Plan::Project { attrs, input } => {
                let (p, s) = input.strip_selections();
                (
                    Plan::Project {
                        attrs,
                        input: Box::new(p),
                    },
                    s,
                )
            }
            Plan::GroupBy {
                attr,
                agg,
                agg_attr,
                input,
            } => {
                let (p, s) = input.strip_selections();
                (
                    Plan::GroupBy {
                        attr,
                        agg,
                        agg_attr,
                        input: Box::new(p),
                    },
                    s,
                )
            }
            leaf @ Plan::Scan { .. } => (leaf, Vec::new()),
        }
    }

    /// Re-attach a selection directly above the scan of its target table
    /// (or leave the plan unchanged if the table does not occur).
    fn attach_to_scan(self, sel: RangeQuery) -> Plan {
        match self {
            Plan::Scan { table } if table == sel.table => {
                let input = Box::new(Plan::Scan { table });
                Plan::Select { query: sel, input }
            }
            Plan::Scan { table } => Plan::Scan { table },
            Plan::Select { query, input } => Plan::Select {
                query,
                input: Box::new(input.attach_to_scan(sel)),
            },
            Plan::Join { step, left, right } => {
                // Attach on whichever side contains the table; try left
                // first (left-deep trees put earlier tables left).
                if left.mentions_table(&sel.table) {
                    Plan::Join {
                        step,
                        left: Box::new(left.attach_to_scan(sel)),
                        right,
                    }
                } else {
                    Plan::Join {
                        step,
                        left,
                        right: Box::new(right.attach_to_scan(sel)),
                    }
                }
            }
            Plan::Project { attrs, input } => Plan::Project {
                attrs,
                input: Box::new(input.attach_to_scan(sel)),
            },
            Plan::GroupBy {
                attr,
                agg,
                agg_attr,
                input,
            } => Plan::GroupBy {
                attr,
                agg,
                agg_attr,
                input: Box::new(input.attach_to_scan(sel)),
            },
        }
    }

    /// Does this subtree scan the given table?
    pub fn mentions_table(&self, table: &str) -> bool {
        match self {
            Plan::Scan { table: t } => t == table,
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::GroupBy { input, .. } => input.mentions_table(table),
            Plan::Join { left, right, .. } => {
                left.mentions_table(table) || right.mentions_table(table)
            }
        }
    }

    /// Is every Select directly above a Scan? (The post-push-down
    /// normal form.)
    pub fn selections_are_pushed_down(&self) -> bool {
        match self {
            Plan::Scan { .. } => true,
            Plan::Select { input, .. } => {
                matches!(**input, Plan::Scan { .. }) && input.selections_are_pushed_down()
            }
            Plan::Project { input, .. } | Plan::GroupBy { input, .. } => {
                input.selections_are_pushed_down()
            }
            Plan::Join { left, right, .. } => {
                left.selections_are_pushed_down() && right.selections_are_pushed_down()
            }
        }
    }

    /// Pieces this plan would add to the cracker index, per the §3.3
    /// arithmetic: a Ξ over an ordered domain adds up to 3 pieces per
    /// (double-sided) selection, a linear k-way join adds `4(k−1)`, an Ω
    /// adds `2·|g|` for `g` grouping attributes, a Ψ adds 2.
    pub fn added_piece_estimate(&self) -> usize {
        match self {
            Plan::Scan { .. } => 0,
            Plan::Select { query, input } => {
                let own = if query.pred.is_double_sided() { 3 } else { 2 };
                own + input.added_piece_estimate()
            }
            Plan::Join { left, right, .. } => {
                4 + left.added_piece_estimate() + right.added_piece_estimate()
            }
            Plan::Project { input, .. } => 2 + input.added_piece_estimate(),
            Plan::GroupBy { input, .. } => 2 + input.added_piece_estimate(),
        }
    }

    /// `EXPLAIN`-style indented rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out
    }

    fn render(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan { table } => {
                let _ = writeln!(out, "{pad}Scan {table}");
            }
            Plan::Select { query, input } => {
                let _ = writeln!(out, "{pad}Select [{}]", query.to_sql());
                input.render(out, depth + 1);
            }
            Plan::Join { step, left, right } => {
                let _ = writeln!(
                    out,
                    "{pad}Join [{}.{} = {}.{}]",
                    step.left, step.left_attr, step.right, step.right_attr
                );
                left.render(out, depth + 1);
                right.render(out, depth + 1);
            }
            Plan::Project { attrs, input } => {
                let _ = writeln!(out, "{pad}Project [{}]", attrs.join(", "));
                input.render(out, depth + 1);
            }
            Plan::GroupBy { attr, agg, .. } => {
                let _ = writeln!(out, "{pad}GroupBy [{attr}] agg {agg:?}");
                input_of(self).render(out, depth + 1);
            }
        }
    }
}

fn input_of(plan: &Plan) -> &Plan {
    match plan {
        Plan::Select { input, .. } | Plan::Project { input, .. } | Plan::GroupBy { input, .. } => {
            input
        }
        _ => plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cracker_core::RangePred;

    fn two_table_term() -> QueryTerm {
        QueryTerm {
            projection: vec![],
            group_by: None,
            selections: vec![
                RangeQuery::new("r", "a", RangePred::lt(5)),
                RangeQuery::new("s", "b", RangePred::gt(25)),
            ],
            joins: vec![JoinStep {
                left: "r".into(),
                left_attr: "k".into(),
                right: "s".into(),
                right_attr: "k".into(),
            }],
            tables: vec!["r".into(), "s".into()],
        }
    }

    #[test]
    fn canonical_plan_has_selections_on_top() {
        let plan = Plan::from_term(&two_table_term());
        assert!(!plan.selections_are_pushed_down());
        assert!(matches!(plan, Plan::Select { .. }));
    }

    #[test]
    fn push_down_moves_selections_to_scans() {
        let plan = Plan::from_term(&two_table_term()).push_down_selections();
        assert!(plan.selections_are_pushed_down());
        // Both tables still reachable.
        assert!(plan.mentions_table("r"));
        assert!(plan.mentions_table("s"));
        let text = plan.explain();
        // The r-selection must appear under the join, above Scan r.
        let join_line = text.lines().position(|l| l.contains("Join")).unwrap();
        let sel_line = text.lines().position(|l| l.contains("a < 5")).unwrap();
        assert!(sel_line > join_line, "selection below join:\n{text}");
    }

    #[test]
    fn push_down_is_idempotent() {
        let once = Plan::from_term(&two_table_term()).push_down_selections();
        let twice = once.clone().push_down_selections();
        assert_eq!(once, twice);
    }

    #[test]
    fn piece_estimate_matches_paper_arithmetic() {
        // Single double-sided selection: 3 pieces.
        let sel = Plan::from_term(&QueryTerm::single(RangeQuery::new(
            "r",
            "a",
            RangePred::between(1, 5),
        )));
        assert_eq!(sel.added_piece_estimate(), 3);
        // Linear k-way join: 4(k-1) pieces; k=3 tables -> 2 joins -> 8.
        let term = QueryTerm {
            projection: vec![],
            group_by: None,
            selections: vec![],
            joins: vec![
                JoinStep {
                    left: "r1".into(),
                    left_attr: "b".into(),
                    right: "r2".into(),
                    right_attr: "a".into(),
                },
                JoinStep {
                    left: "r2".into(),
                    left_attr: "b".into(),
                    right: "r3".into(),
                    right_attr: "a".into(),
                },
            ],
            tables: vec!["r1".into(), "r2".into(), "r3".into()],
        };
        let plan = Plan::from_term(&term);
        assert_eq!(plan.added_piece_estimate(), 8);
    }

    #[test]
    fn explain_renders_tree() {
        let plan = Plan::from_term(&two_table_term());
        let text = plan.explain();
        assert!(text.contains("Scan r"));
        assert!(text.contains("Scan s"));
        assert!(text.contains("Join [r.k = s.k]"));
        // Indentation grows with depth.
        assert!(text.lines().any(|l| l.starts_with("    ")));
    }

    #[test]
    fn group_by_and_projection_survive_push_down() {
        let mut term = two_table_term();
        term.group_by = Some(("g".into(), AggFunc::Count, None));
        term.projection = vec!["g".into()];
        let plan = Plan::from_term(&term).push_down_selections();
        assert!(matches!(plan, Plan::Project { .. }));
        assert!(plan.selections_are_pushed_down());
        assert!(plan.explain().contains("GroupBy [g]"));
    }

    #[test]
    fn selection_on_absent_table_is_harmless() {
        let plan = Plan::Scan { table: "r".into() };
        let rewritten = plan.attach_to_scan(RangeQuery::new("zzz", "a", RangePred::lt(1)));
        assert_eq!(rewritten, Plan::Scan { table: "r".into() });
    }
}
