//! Engine error type.

use std::fmt;
use storage::StorageError;

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors raised by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Unknown table name.
    UnknownTable(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Unknown column name within a table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column.
        column: String,
    },
    /// The operation needs a column of a different type.
    WrongColumnType {
        /// Column name.
        column: String,
        /// What the operation required.
        expected: String,
    },
    /// Column vectors of a table differ in length.
    RaggedColumns(String),
    /// Underlying storage failure.
    Storage(StorageError),
    /// The optimizer ran out of resources for this plan (models the
    /// "running out of optimizer resource space" failure of Figure 9).
    OptimizerExhausted {
        /// Number of joins requested.
        joins: usize,
        /// Budget that was exceeded.
        budget: usize,
    },
    /// The query observed its governor's cancel token and stopped at a
    /// safe boundary. No partial results were published; crack state is
    /// valid (each piece either untouched or fully cracked).
    Cancelled,
    /// The query overran its governor deadline and stopped at a safe
    /// boundary, with the same state guarantees as [`EngineError::Cancelled`].
    DeadlineExceeded {
        /// The deadline budget the query was given.
        budget: std::time::Duration,
    },
    /// The admission gate refused the query to protect the system: every
    /// session slot stayed busy for the whole bounded wait (or the wait
    /// queue itself was full). Shed load or retry later.
    Overloaded {
        /// Concurrent-session capacity of the gate.
        capacity: usize,
        /// How long the query waited before giving up.
        waited: std::time::Duration,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            EngineError::DuplicateTable(t) => write!(f, "table {t:?} already exists"),
            EngineError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column:?} in table {table:?}")
            }
            EngineError::WrongColumnType { column, expected } => {
                write!(f, "column {column:?} is not of required type {expected}")
            }
            EngineError::RaggedColumns(t) => {
                write!(f, "columns of table {t:?} differ in length")
            }
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::OptimizerExhausted { joins, budget } => write!(
                f,
                "optimizer resource space exhausted: {joins}-way join exceeds budget {budget}"
            ),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::DeadlineExceeded { budget } => {
                write!(f, "query deadline exceeded (budget {budget:?})")
            }
            EngineError::Overloaded { capacity, waited } => write!(
                f,
                "admission gate overloaded: all {capacity} sessions busy for {waited:?}"
            ),
        }
    }
}

impl EngineError {
    /// True when the fault is environmental and retrying the same request
    /// may succeed. Delegates to [`StorageError::is_transient`] for
    /// storage-layer failures; engine-level scheduling refusals
    /// (cancel/deadline/overload) are *not* transient — they carry
    /// intent, and the taxonomy keeps them typed apart.
    pub fn is_transient(&self) -> bool {
        matches!(self, EngineError::Storage(e) if e.is_transient())
    }

    /// True when durable state itself is damaged and needs repair, never
    /// a retry. Only storage can report corruption.
    pub fn is_corruption(&self) -> bool {
        matches!(self, EngineError::Storage(e) if e.is_corruption())
    }

    /// True when the request was refused (or abandoned) to protect the
    /// system under load: the admission gate shed it, its deadline
    /// elapsed, or the storage layer signalled capacity exhaustion.
    pub fn is_overload(&self) -> bool {
        match self {
            EngineError::Overloaded { .. } | EngineError::DeadlineExceeded { .. } => true,
            EngineError::Storage(e) => e.is_overload(),
            _ => false,
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EngineError::UnknownTable("r".into()).to_string(),
            "unknown table \"r\""
        );
        assert_eq!(
            EngineError::OptimizerExhausted {
                joins: 64,
                budget: 12
            }
            .to_string(),
            "optimizer resource space exhausted: 64-way join exceeds budget 12"
        );
    }

    #[test]
    fn storage_errors_convert() {
        let e: EngineError = StorageError::UnknownBat("x".into()).into();
        assert!(matches!(e, EngineError::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn every_variant_has_a_pinned_classification() {
        use std::time::Duration;
        // One row per variant: (error, transient, corruption, overload).
        // Storage wrapping must preserve the storage-layer classification.
        let table: Vec<(EngineError, bool, bool, bool)> = vec![
            (EngineError::UnknownTable("t".into()), false, false, false),
            (EngineError::DuplicateTable("t".into()), false, false, false),
            (
                EngineError::UnknownColumn {
                    table: "t".into(),
                    column: "c".into(),
                },
                false,
                false,
                false,
            ),
            (
                EngineError::WrongColumnType {
                    column: "c".into(),
                    expected: "int".into(),
                },
                false,
                false,
                false,
            ),
            (EngineError::RaggedColumns("t".into()), false, false, false),
            (
                EngineError::Storage(StorageError::PersistIo("io".into())),
                true,
                false,
                false,
            ),
            (
                EngineError::Storage(StorageError::PersistFormat("bad".into())),
                false,
                true,
                false,
            ),
            (
                EngineError::Storage(StorageError::PoolExhausted { capacity: 2 }),
                false,
                false,
                true,
            ),
            (
                EngineError::Storage(StorageError::WalPoisoned("f".into())),
                false,
                false,
                false,
            ),
            (
                EngineError::OptimizerExhausted {
                    joins: 9,
                    budget: 3,
                },
                false,
                false,
                false,
            ),
            (EngineError::Cancelled, false, false, false),
            (
                EngineError::DeadlineExceeded {
                    budget: Duration::from_millis(5),
                },
                false,
                false,
                true,
            ),
            (
                EngineError::Overloaded {
                    capacity: 4,
                    waited: Duration::from_millis(5),
                },
                false,
                false,
                true,
            ),
        ];
        for (e, transient, corruption, overload) in table {
            assert_eq!(e.is_transient(), transient, "{e}: transient");
            assert_eq!(e.is_corruption(), corruption, "{e}: corruption");
            assert_eq!(e.is_overload(), overload, "{e}: overload");
        }
    }
}
