//! Engine error type.

use std::fmt;
use storage::StorageError;

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors raised by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Unknown table name.
    UnknownTable(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Unknown column name within a table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column.
        column: String,
    },
    /// The operation needs a column of a different type.
    WrongColumnType {
        /// Column name.
        column: String,
        /// What the operation required.
        expected: String,
    },
    /// Column vectors of a table differ in length.
    RaggedColumns(String),
    /// Underlying storage failure.
    Storage(StorageError),
    /// The optimizer ran out of resources for this plan (models the
    /// "running out of optimizer resource space" failure of Figure 9).
    OptimizerExhausted {
        /// Number of joins requested.
        joins: usize,
        /// Budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            EngineError::DuplicateTable(t) => write!(f, "table {t:?} already exists"),
            EngineError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column:?} in table {table:?}")
            }
            EngineError::WrongColumnType { column, expected } => {
                write!(f, "column {column:?} is not of required type {expected}")
            }
            EngineError::RaggedColumns(t) => {
                write!(f, "columns of table {t:?} differ in length")
            }
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::OptimizerExhausted { joins, budget } => write!(
                f,
                "optimizer resource space exhausted: {joins}-way join exceeds budget {budget}"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EngineError::UnknownTable("r".into()).to_string(),
            "unknown table \"r\""
        );
        assert_eq!(
            EngineError::OptimizerExhausted {
                joins: 64,
                budget: 12
            }
            .to_string(),
            "optimizer resource space exhausted: 64-way join exceeds budget 12"
        );
    }

    #[test]
    fn storage_errors_convert() {
        let e: EngineError = StorageError::UnknownBat("x".into()).into();
        assert!(matches!(e, EngineError::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
