//! Durability wiring for [`AdaptiveDb`](crate::AdaptiveDb): what a
//! checkpoint of the whole database contains and the live handle pairing a
//! [`CheckpointStore`] with the current epoch's [`RedoLog`].
//!
//! The protocol (documented in `PERSISTENCE.md` at the repository root) is
//! checkpoint + redo log:
//!
//! * [`AdaptiveDb::checkpoint`](crate::AdaptiveDb::checkpoint) writes the
//!   base tables, every cracked copy's piece map, and the pending-update
//!   overlay into an atomic [`storage::checkpoint`] epoch — unchanged
//!   payloads (per a content fingerprint) are carried forward without
//!   rewriting;
//! * between checkpoints, staged inserts/deletes are appended to the
//!   epoch's redo log *before* being applied (write-ahead), fsync'd on the
//!   configured group-commit interval;
//! * [`AdaptiveDb::recover`](crate::AdaptiveDb::recover) reloads the last
//!   committed epoch, restores every piece map with full validation
//!   ([`cracker_core::snapshot`]), and replays the log — so the recovered
//!   database answers *warm*, at the cracked cost the workload had already
//!   paid for, never cold and never silently wrong.

use crate::error::{EngineError, EngineResult};
use serde::{Deserialize, Serialize};
use storage::fault::RetryPolicy;
use storage::wal::RedoLog;
use storage::{CheckpointStore, Manifest, StorageError};

/// Version tag of the [`DbMeta`] payload.
pub const DB_META_VERSION: u32 = 1;

/// Manifest key under which the database-level metadata payload lives.
pub const META_KEY: &str = "__meta__";

/// One registered table in a checkpoint: its name and column names, in
/// schema order. Column payloads live under [`table_key`] entries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Column names in schema order.
    pub columns: Vec<String>,
}

/// The database-level metadata payload of a checkpoint: everything
/// [`AdaptiveDb::recover`](crate::AdaptiveDb::recover) needs to know which
/// other payloads to read and how to rebuild the in-memory shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbMeta {
    /// Payload format version.
    pub version: u32,
    /// Requested shard count of the concurrency mode; `0` = single lock.
    pub concurrency_shards: u64,
    /// Registered tables, sorted by name.
    pub tables: Vec<TableMeta>,
    /// `(table, column)` keys of single-threaded cracked copies.
    pub crackers: Vec<(String, String)>,
    /// `(table, column)` keys of latched shared cracked copies.
    pub shared: Vec<(String, String)>,
}

/// Manifest key of a base-table column payload (`Vec<i64>`).
pub fn table_key(table: &str, column: &str) -> String {
    format!("table/{table}/{column}")
}

/// Manifest key of a single-threaded cracked copy's
/// [`cracker_core::ColumnSnapshot`].
pub fn cracker_key(table: &str, column: &str) -> String {
    format!("cracker/{table}/{column}")
}

/// Manifest key of a shared cracked copy's
/// [`cracker_core::ConcurrentSnapshot`].
pub fn shared_key(table: &str, column: &str) -> String {
    format!("shared/{table}/{column}")
}

/// The live durability handle an [`AdaptiveDb`](crate::AdaptiveDb)
/// carries once attached: the checkpoint store plus the redo log of the
/// current epoch.
#[derive(Debug)]
pub struct Durability {
    /// The checkpoint directory.
    pub(crate) store: CheckpointStore,
    /// Open append handle on the current epoch's redo log.
    pub(crate) log: RedoLog,
    /// Retry policy for transient I/O faults, re-applied to the fresh
    /// log handle after every rotation (the store keeps its own copy).
    pub(crate) retry: RetryPolicy,
    /// Epoch of the last committed checkpoint.
    pub(crate) epoch: u64,
}

impl Durability {
    /// Pair `store` with the redo log the committed `manifest` names,
    /// applying `group_commit` and the store's retry policy to the fresh
    /// log handle.
    pub(crate) fn from_manifest(
        store: CheckpointStore,
        manifest: &Manifest,
        group_commit: usize,
        retry: RetryPolicy,
    ) -> EngineResult<Self> {
        let mut log = RedoLog::open_append(store.log_path(manifest))
            .map_err(EngineError::from)?
            .with_group_commit(group_commit);
        log.set_retry_policy(retry);
        Ok(Durability {
            store,
            log,
            retry,
            epoch: manifest.epoch,
        })
    }

    /// Rotate the live log handle onto `manifest`'s log path, keeping its
    /// injector, retry policy, and group-commit setting (and clearing any
    /// poison — the commit that produced `manifest` folded the overlay
    /// into durable payloads).
    ///
    /// If the new epoch's log cannot be opened, the handle is *poisoned*
    /// instead: the manifest already committed, so appending to the stale
    /// path would silently lose records at recovery. Updates then fail
    /// typed until a later checkpoint rotates successfully.
    pub(crate) fn rotate_to(&mut self, manifest: &Manifest) -> EngineResult<()> {
        match self.log.rotate(self.store.log_path(manifest)) {
            Ok(()) => {
                self.epoch = manifest.epoch;
                Ok(())
            }
            Err(e) => {
                self.log.poison(&format!(
                    "log rotation to epoch {} failed: {e}",
                    manifest.epoch
                ));
                self.epoch = manifest.epoch;
                Err(EngineError::from(e))
            }
        }
    }
}

/// Error for durability entry points called before
/// [`AdaptiveDb::attach_durability`](crate::AdaptiveDb::attach_durability).
pub(crate) fn not_attached() -> EngineError {
    EngineError::Storage(StorageError::Persist(
        "no durability attached — call attach_durability first".to_string(),
    ))
}
