//! Relational schemas.

use serde::{Deserialize, Serialize};
use storage::AtomType;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: AtomType,
}

impl ColumnDef {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, ty: AtomType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }

    /// An integer column (the workhorse of the tapestry experiments).
    pub fn int(name: impl Into<String>) -> Self {
        Self::new(name, AtomType::Int)
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build from column definitions.
    ///
    /// # Panics
    /// Panics on duplicate column names — schemas are validated at
    /// construction so later lookups can be infallible by index.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|p| p.name == c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Schema { columns }
    }

    /// An all-integer schema from names (tapestry tables).
    pub fn ints(names: &[&str]) -> Self {
        Self::new(names.iter().map(|n| ColumnDef::int(*n)).collect())
    }

    /// Number of columns (the benchmark's arity `α`).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column position by name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column definition by position.
    pub fn column(&self, pos: usize) -> &ColumnDef {
        &self.columns[pos]
    }

    /// All columns, in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_lookup() {
        let s = Schema::ints(&["k", "a", "b"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position("a"), Some(1));
        assert_eq!(s.position("z"), None);
        assert_eq!(s.column(0).name, "k");
        assert_eq!(s.names(), vec!["k", "a", "b"]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        Schema::ints(&["a", "a"]);
    }

    #[test]
    fn mixed_types() {
        let s = Schema::new(vec![
            ColumnDef::int("id"),
            ColumnDef::new("score", AtomType::Float),
            ColumnDef::new("label", AtomType::Str),
        ]);
        assert_eq!(s.column(1).ty, AtomType::Float);
        assert_eq!(s.column(2).ty, AtomType::Str);
    }
}
