//! N-ary tables over BATs.
//!
//! "N-ary relational tables are mapped by MonetDB's SQL compiler into a
//! series \[of\] binary tables with attributes head and tail of type
//! `bat[oid,type]`, where `oid` is the surrogate key and `type` the type of
//! the corresponding attribute" (§3.4.2). A [`Table`] is exactly that: one
//! BAT per column, all sharing a dense OID space `0..n`.

use crate::error::{EngineError, EngineResult};
use crate::schema::Schema;
use cracker_core::{ConcurrencyMode, ConcurrentColumn, CrackerConfig};
use std::sync::Arc;
use storage::{Atom, Bat, BatView, Oid};

/// An n-ary relational table decomposed into aligned column BATs.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Arc<Bat>>,
}

impl Table {
    /// Build a table from its schema and column BATs (one per schema
    /// column, equal cardinalities).
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Arc<Bat>>,
    ) -> EngineResult<Self> {
        let name = name.into();
        if columns.len() != schema.arity() {
            return Err(EngineError::RaggedColumns(name));
        }
        let n = columns.first().map_or(0, |b| b.len());
        for (def, bat) in schema.columns().iter().zip(&columns) {
            if bat.len() != n {
                return Err(EngineError::RaggedColumns(name));
            }
            if bat.tail_type() != def.ty {
                return Err(EngineError::WrongColumnType {
                    column: def.name.clone(),
                    expected: def.ty.to_string(),
                });
            }
        }
        Ok(Table {
            name,
            schema,
            columns,
        })
    }

    /// Convenience: an all-integer table from `(name, values)` pairs.
    pub fn from_int_columns(
        name: impl Into<String>,
        cols: Vec<(&str, Vec<i64>)>,
    ) -> EngineResult<Self> {
        let name = name.into();
        let schema = Schema::ints(&cols.iter().map(|(n, _)| *n).collect::<Vec<_>>());
        let columns = cols
            .into_iter()
            .map(|(cn, vals)| Arc::new(Bat::from_ints(format!("{name}_{cn}"), vals)))
            .collect();
        Table::new(name, schema, columns)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, |b| b.len())
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column BAT by name.
    pub fn column(&self, name: &str) -> EngineResult<&Arc<Bat>> {
        let pos = self
            .schema
            .position(name)
            .ok_or_else(|| EngineError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_owned(),
            })?;
        Ok(&self.columns[pos])
    }

    /// Borrow an integer column's values.
    pub fn ints(&self, name: &str) -> EngineResult<&[i64]> {
        Ok(self.column(name)?.ints()?)
    }

    /// A whole-column view.
    pub fn column_view(&self, name: &str) -> EngineResult<BatView> {
        Ok(BatView::whole(Arc::clone(self.column(name)?)))
    }

    /// Build a latched cracked copy of an integer column for concurrent
    /// readers — single-lock or sharded per `mode`. The copy is detached:
    /// it carries this table's dense OIDs but does not observe later
    /// changes to the base BAT, exactly like the cracked copies
    /// [`crate::db::AdaptiveDb`] maintains.
    pub fn concurrent_column(
        &self,
        name: &str,
        config: CrackerConfig,
        mode: ConcurrencyMode,
    ) -> EngineResult<ConcurrentColumn<i64>> {
        let vals = self.ints(name)?.to_vec();
        Ok(ConcurrentColumn::build(vals, config, mode))
    }

    /// The full row (as atoms in schema order) at surrogate `oid` — rows
    /// are reconstructed via positional alignment of the dense OID space.
    pub fn row(&self, oid: Oid) -> EngineResult<Vec<Atom>> {
        let pos = oid as usize;
        self.columns
            .iter()
            .map(|bat| bat.atom_at(pos).map_err(EngineError::from))
            .collect()
    }

    /// Iterate all rows as `(oid, atoms)` — test/debug convenience, not a
    /// hot path.
    pub fn rows(&self) -> impl Iterator<Item = (Oid, Vec<Atom>)> + '_ {
        (0..self.len() as Oid).map(move |oid| {
            let row = self
                .row(oid)
                // lint: allow(unwrap) — OIDs 0..len are dense by construction
                .expect("dense OID space: every position resolves");
            (oid, row)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::AtomType;

    fn sample() -> Table {
        Table::from_int_columns("r", vec![("k", vec![1, 2, 3]), ("a", vec![10, 20, 30])]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.schema().arity(), 2);
        assert_eq!(t.ints("a").unwrap(), &[10, 20, 30]);
        assert_eq!(t.name(), "r");
    }

    #[test]
    fn unknown_column_is_an_error() {
        let t = sample();
        assert!(matches!(
            t.ints("z"),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn ragged_columns_rejected() {
        let schema = Schema::ints(&["k", "a"]);
        let cols = vec![
            Arc::new(Bat::from_ints("k", vec![1, 2])),
            Arc::new(Bat::from_ints("a", vec![1])),
        ];
        assert!(matches!(
            Table::new("r", schema, cols),
            Err(EngineError::RaggedColumns(_))
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        let schema = Schema::new(vec![crate::schema::ColumnDef::new("f", AtomType::Float)]);
        let cols = vec![Arc::new(Bat::from_ints("f", vec![1]))];
        assert!(matches!(
            Table::new("r", schema, cols),
            Err(EngineError::WrongColumnType { .. })
        ));
    }

    #[test]
    fn row_reconstruction_by_surrogate() {
        let t = sample();
        assert_eq!(t.row(1).unwrap(), vec![Atom::Int(2), Atom::Int(20)]);
        assert!(t.row(9).is_err());
    }

    #[test]
    fn rows_iterate_in_oid_order() {
        let t = sample();
        let all: Vec<_> = t.rows().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].0, 2);
        assert_eq!(all[2].1, vec![Atom::Int(3), Atom::Int(30)]);
    }

    #[test]
    fn empty_table() {
        let t = Table::from_int_columns("e", vec![("a", vec![])]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.rows().count(), 0);
    }

    #[test]
    fn concurrent_column_carries_table_oids() {
        use cracker_core::RangePred;
        let t = Table::from_int_columns("r", vec![("a", vec![30, 10, 20, 40])]).unwrap();
        for mode in [
            ConcurrencyMode::SingleLock,
            ConcurrencyMode::Sharded { shards: 2 },
        ] {
            let col = t
                .concurrent_column("a", CrackerConfig::default(), mode)
                .unwrap();
            let mut oids = col.select_oids(RangePred::between(15, 35));
            oids.sort_unstable();
            assert_eq!(oids, vec![0, 2]);
            col.validate().unwrap();
        }
        assert!(t
            .concurrent_column("zzz", CrackerConfig::default(), ConcurrencyMode::SingleLock)
            .is_err());
    }

    #[test]
    fn column_view_is_whole_column() {
        let t = sample();
        let v = t.column_view("k").unwrap();
        assert_eq!(v.len(), 3);
    }
}
