//! Query governance: deadlines, cooperative cancellation, and the glue
//! that ties them to admission control.
//!
//! Cracking does physical reorganization *on the query path*, so "stop
//! this query" is a more delicate request here than in a read-only
//! scan-based engine: killing a query mid-crack could leave a piece map
//! describing positions the value array no longer has. The governor
//! therefore never preempts — it exposes a [`CancelToken`] that the
//! execution layers poll at **safe boundaries** only:
//!
//! * between predicates of a batch (the block-at-a-time executor checks
//!   before each block), and
//! * between crack steps — each `select` against one piece either runs
//!   to completion or is never started, so the piece map stays valid and
//!   every piece is either untouched or fully cracked.
//!
//! A query stopped this way leaves the column in a state
//! [`cracker_core::CrackerIndex::check_pieces`] accepts, and — because
//! cracking is semantically a no-op reorganization — later queries return
//! exactly the answers they would have returned anyway. That is the
//! "graceful" in graceful degradation: cancellation costs the cancelled
//! query its answer, never anybody else's.
//!
//! [`Governor`] bundles a token with an optional deadline and converts
//! both into the typed errors of the taxonomy
//! ([`EngineError::Cancelled`], [`EngineError::DeadlineExceeded`]); its
//! remaining-time view also bounds how long the query may queue at the
//! [`crate::admission::AdmissionGate`], so a query never spends its whole
//! deadline waiting for a slot it can no longer use.

use crate::error::{EngineError, EngineResult};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag. Cloning is cheap (an `Arc`); any clone can
/// cancel, every clone observes it. Polling is a single relaxed-ordering
/// atomic load — cheap enough for per-block boundaries.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; takes effect at the target
    /// query's next safe boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Per-query governance: a [`CancelToken`] plus an optional deadline.
///
/// The governed execution paths call [`Governor::check`] at each safe
/// boundary and abandon the query on `Err`. A governor with no deadline
/// and an untouched token never fails a check.
#[derive(Debug, Clone)]
pub struct Governor {
    cancel: CancelToken,
    /// Wall-clock budget and its expiry, kept together so errors can
    /// report the budget the caller actually asked for.
    deadline: Option<(Duration, Instant)>,
}

impl Default for Governor {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl Governor {
    /// A governor with no deadline and a fresh token: checks always pass
    /// until someone cancels.
    pub fn unbounded() -> Self {
        Governor {
            cancel: CancelToken::new(),
            deadline: None,
        }
    }

    /// A governor whose query must finish within `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        Governor {
            cancel: CancelToken::new(),
            deadline: Some((budget, Instant::now() + budget)),
        }
    }

    /// Attach an externally owned token (e.g. one the session keeps to
    /// cancel the query from another thread).
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// The token governed queries poll; clone it to cancel from elsewhere.
    pub fn token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Time left before the deadline: `None` when unbounded, zero when
    /// already past. This is also the right bound for admission waits —
    /// queue time is query time.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|(_, at)| at.saturating_duration_since(Instant::now()))
    }

    /// The safe-boundary poll: `Err(Cancelled)` once the token fires,
    /// `Err(DeadlineExceeded)` once the budget elapses, `Ok` otherwise.
    /// Cancellation wins ties (it is the more specific intent).
    pub fn check(&self) -> EngineResult<()> {
        if self.cancel.is_cancelled() {
            return Err(EngineError::Cancelled);
        }
        if let Some((budget, at)) = self.deadline {
            if Instant::now() >= at {
                return Err(EngineError::DeadlineExceeded { budget });
            }
        }
        Ok(())
    }

    /// The poll as a plain predicate, the shape the storage-agnostic
    /// cancellable kernels in `cracker_core` take: `true` = keep going.
    pub fn as_guard(&self) -> impl Fn() -> bool + '_ {
        move || self.check().is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_governor_always_passes() {
        let g = Governor::unbounded();
        assert!(g.check().is_ok());
        assert!(g.remaining().is_none());
        assert!((g.as_guard())());
    }

    #[test]
    fn cancellation_is_observed_by_every_clone() {
        let g = Governor::unbounded();
        let handle = g.token();
        let g2 = g.clone();
        handle.cancel();
        assert!(matches!(g.check(), Err(EngineError::Cancelled)));
        assert!(matches!(g2.check(), Err(EngineError::Cancelled)));
        assert!(!(g.as_guard())());
    }

    #[test]
    fn deadline_expiry_is_typed_with_the_original_budget() {
        let budget = Duration::from_millis(1);
        let g = Governor::with_deadline(budget);
        std::thread::sleep(Duration::from_millis(5));
        match g.check() {
            Err(EngineError::DeadlineExceeded { budget: b }) => assert_eq!(b, budget),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(g.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancellation_wins_over_an_expired_deadline() {
        let g = Governor::with_deadline(Duration::from_millis(1));
        g.token().cancel();
        std::thread::sleep(Duration::from_millis(5));
        assert!(matches!(g.check(), Err(EngineError::Cancelled)));
    }

    #[test]
    fn remaining_bounds_admission_waits() {
        let g = Governor::with_deadline(Duration::from_secs(60));
        let rem = g.remaining().unwrap();
        assert!(rem <= Duration::from_secs(60));
        assert!(rem > Duration::from_secs(59), "fresh budget nearly intact");
    }
}
