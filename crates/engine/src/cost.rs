//! Run statistics — the cost units of §2.2.
//!
//! "For a full table scan, we need N reads and σN writes for the query
//! answer. Furthermore, in a cracker approach we may have to write all
//! tuples to their new location, causing another (1−σ)N writes." Every
//! engine reports its work in exactly these units, plus wall-clock, so the
//! experiments can present both.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters reported by one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Tuples read (scanned or partition-inspected).
    pub tuples_read: u64,
    /// Tuples written: result materialization plus reorganization moves.
    pub tuples_written: u64,
    /// Qualifying tuples.
    pub result_count: u64,
    /// Temporary/new tables created (catalog events — the expensive part
    /// of SQL-level cracking, §5.1).
    pub tables_created: u64,
    /// Measured wall-clock time.
    pub elapsed: Duration,
}

impl RunStats {
    /// Accumulate another run into this one.
    pub fn absorb(&mut self, other: &RunStats) {
        self.tuples_read += other.tuples_read;
        self.tuples_written += other.tuples_written;
        self.result_count += other.result_count;
        self.tables_created += other.tables_created;
        self.elapsed += other.elapsed;
    }

    /// Total tuple I/O (reads + writes) — the y-axis unit of Figure 3.
    pub fn tuple_io(&self) -> u64 {
        self.tuples_read + self.tuples_written
    }
}

/// A per-step series of run statistics over a query sequence, with the
/// cumulative views the figures need.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SequenceStats {
    /// Per-step stats, in sequence order.
    pub steps: Vec<RunStats>,
}

impl SequenceStats {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one step.
    pub fn push(&mut self, s: RunStats) {
        self.steps.push(s);
    }

    /// Number of steps recorded.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no steps are recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Sum over all steps.
    pub fn total(&self) -> RunStats {
        let mut acc = RunStats::default();
        for s in &self.steps {
            acc.absorb(s);
        }
        acc
    }

    /// Cumulative totals after each step (for "total response time after k
    /// queries" plots like Figures 10 and 11).
    pub fn cumulative(&self) -> Vec<RunStats> {
        let mut acc = RunStats::default();
        self.steps
            .iter()
            .map(|s| {
                acc.absorb(s);
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(r: u64, w: u64) -> RunStats {
        RunStats {
            tuples_read: r,
            tuples_written: w,
            result_count: 0,
            tables_created: 0,
            elapsed: Duration::from_millis(1),
        }
    }

    #[test]
    fn absorb_adds_fieldwise() {
        let mut a = rs(10, 5);
        a.absorb(&rs(1, 2));
        assert_eq!(a.tuples_read, 11);
        assert_eq!(a.tuples_written, 7);
        assert_eq!(a.tuple_io(), 18);
        assert_eq!(a.elapsed, Duration::from_millis(2));
    }

    #[test]
    fn sequence_totals_and_cumulative() {
        let mut seq = SequenceStats::new();
        seq.push(rs(100, 0));
        seq.push(rs(50, 10));
        seq.push(rs(25, 5));
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.total().tuples_read, 175);
        let cum = seq.cumulative();
        assert_eq!(cum[0].tuples_read, 100);
        assert_eq!(cum[1].tuples_read, 150);
        assert_eq!(cum[2].tuple_io(), 190);
    }

    #[test]
    fn empty_sequence() {
        let seq = SequenceStats::new();
        assert!(seq.is_empty());
        assert_eq!(seq.total(), RunStats::default());
        assert!(seq.cumulative().is_empty());
    }
}
