//! Integration: storage → engine → cracker. Tables built on BATs, queried
//! through the Volcano pipeline and the cracking engine, with Ψ
//! fragmentation and snapshot persistence in the loop.

use dbcracker::cracker_core::project::{psi_crack, psi_reconstruct, VerticalFragment};
use dbcracker::engine::exec::ops::{FilterOp, TableScanOp, XiTapOp};
use dbcracker::engine::exec::{run_count, run_to_vec, Operator};
use dbcracker::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn tapestry_table(n: usize) -> Table {
    let t = Tapestry::generate(n, 2, 0x7E57);
    Table::from_int_columns(
        "r",
        vec![("k", t.column(0).to_vec()), ("a", t.column(1).to_vec())],
    )
    .unwrap()
}

#[test]
fn volcano_filter_agrees_with_crack_engine() {
    let table = tapestry_table(5_000);
    let lo = 100i64;
    let hi = 600i64;
    // Volcano path: scan + filter (row 0 is the oid, column "a" is row 2).
    let scan = Box::new(TableScanOp::new(&table));
    let filter = FilterOp::new(scan, move |row| {
        let a = row[2].as_int().unwrap();
        a >= lo && a < hi
    });
    let volcano_count = run_count(Box::new(filter));
    // Cracking path.
    let mut crack = CrackEngine::new(table.ints("a").unwrap().to_vec());
    let crack_count = crack
        .run(RangePred::half_open(lo, hi), OutputMode::Count)
        .result_count;
    assert_eq!(volcano_count as u64, crack_count);
}

#[test]
fn xi_tap_pieces_replace_the_original_table() {
    // §3.4.1: the Ξ-tap's kept + rejected pieces together replace R.
    let table = tapestry_table(2_000);
    let scan = Box::new(TableScanOp::new(&table));
    let mut tap = XiTapOp::new(scan, |row| row[2].as_int().unwrap() < 500);
    let mut kept = 0usize;
    while tap.next().is_some() {
        kept += 1;
    }
    let rejects = tap.take_rejects();
    assert_eq!(kept + rejects.len(), table.len());
    assert!(rejects.iter().all(|r| r[2].as_int().unwrap() >= 500));
}

#[test]
fn psi_fragments_round_trip_through_engine_tables() {
    let table = tapestry_table(500);
    let mut cols = BTreeMap::new();
    for name in ["k", "a"] {
        cols.insert(name.to_string(), Arc::clone(table.column(name).unwrap()));
    }
    let relation = VerticalFragment::new(cols).unwrap();
    let split = psi_crack(&relation, &["a"]).unwrap();
    assert_eq!(split.projected.attrs(), vec!["a"]);
    assert_eq!(split.rest.attrs(), vec!["k"]);
    let back = psi_reconstruct(&split).unwrap();
    let tuple = back.tuple_by_oid(7).unwrap();
    assert_eq!(tuple["k"], table.row(7).unwrap()[0]);
    assert_eq!(tuple["a"], table.row(7).unwrap()[1]);
}

#[test]
fn snapshot_survives_and_supports_fresh_cracking() {
    // Cracker indices are session-local (§5.2: "not saved between
    // sessions"); the *data* persists and a fresh index is built by the
    // next session's queries.
    let dir = std::env::temp_dir().join(format!("dbcracker-it-{}", std::process::id()));
    let t = Tapestry::generate(3_000, 1, 0xDB);
    let store = StoreCatalog::new();
    store
        .register(Bat::from_ints("r_a", t.column(0).to_vec()))
        .unwrap();
    storage::persist::save_catalog(&store, &dir).unwrap();

    let reloaded = storage::persist::load_catalog(&dir).unwrap();
    let bat = reloaded.get("r_a").unwrap();
    let mut crack = CrackEngine::new(bat.ints().unwrap().to_vec());
    let first = crack.run(RangePred::between(100, 200), OutputMode::Count);
    assert_eq!(first.tuples_read, 3_000, "fresh session, fresh index");
    let repeat = crack.run(RangePred::between(100, 200), OutputMode::Count);
    assert_eq!(repeat.tuples_read, 0);
    assert_eq!(first.result_count, repeat.result_count);
    std::fs::remove_file(dir).ok();
}

#[test]
fn stream_and_materialize_modes_return_the_same_rows() {
    let table = tapestry_table(1_000);
    let mut crack = CrackEngine::new(table.ints("a").unwrap().to_vec());
    let pred = RangePred::between(250, 500);
    let m = crack.run(pred, OutputMode::Materialize);
    let s = crack.run(pred, OutputMode::Stream);
    let c = crack.run(pred, OutputMode::Count);
    assert_eq!(m.result_count, s.result_count);
    assert_eq!(s.result_count, c.result_count);
    assert_eq!(m.tables_created, 1);
    assert_eq!(s.tables_created, 0);
    // Cross-check the rows via the Volcano pipeline.
    let scan = Box::new(TableScanOp::new(&table));
    let rows = run_to_vec(Box::new(FilterOp::new(scan, |row| {
        let a = row[2].as_int().unwrap();
        (250..=500).contains(&a)
    })));
    assert_eq!(rows.len() as u64, m.result_count);
}
