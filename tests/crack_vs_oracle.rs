//! Integration: full multi-query benchmark sequences (workload crate)
//! answered by the cracking engine (engine + cracker-core) must agree
//! with a naive oracle over the tapestry data (storage-independent).

use dbcracker::cracker_core::CrackerColumn;
use dbcracker::prelude::*;
use workload::strolling::StrollMode;

fn oracle_count(column: &[i64], w: &Window) -> u64 {
    column.iter().filter(|&&v| v >= w.lo && v < w.hi).count() as u64
}

fn oracle_oids(column: &[i64], w: &Window) -> Vec<u32> {
    column
        .iter()
        .enumerate()
        .filter(|(_, &v)| v >= w.lo && v < w.hi)
        .map(|(i, _)| i as u32)
        .collect()
}

/// All MQS profiles, including the three strolling modes.
fn all_profiles() -> Vec<Profile> {
    vec![
        Profile::Homerun,
        Profile::Hiking,
        Profile::Strolling(StrollMode::Converge),
        Profile::Strolling(StrollMode::RandomWithReplacement),
        Profile::Strolling(StrollMode::RandomWithoutReplacement),
    ]
}

/// The three concurrency flavours of the cracked column, behind one
/// scenario-executor surface: plain (unlatched), single-lock, sharded.
fn executors(column: &[i64]) -> Vec<(String, Box<dyn ScenarioExecutor>)> {
    let modes = [
        ConcurrencyMode::SingleLock,
        ConcurrencyMode::Sharded { shards: 8 },
    ];
    let mut execs: Vec<(String, Box<dyn ScenarioExecutor>)> = vec![(
        "plain".to_string(),
        Box::new(CrackerColumn::new(column.to_vec())),
    )];
    for mode in modes {
        execs.push((
            format!("{mode:?}"),
            Box::new(ConcurrentColumn::build(
                column.to_vec(),
                CrackerConfig::default(),
                mode,
            )),
        ));
    }
    execs
}

fn check_profile(profile: Profile, seed: u64) {
    let mqs = Mqs {
        alpha: 2,
        n: 20_000,
        k: 40,
        sigma: 0.05,
        rho: Contraction::Exponential,
        delta: Contraction::Linear,
        profile,
    };
    let table = mqs.table(seed);
    let column = table.column(0);
    let mut crack = CrackEngine::new(column.to_vec());
    for (i, w) in mqs.sequence(seed).iter().enumerate() {
        let got = crack.run(w.to_pred(), OutputMode::Count).result_count;
        assert_eq!(
            got,
            oracle_count(column, w),
            "{} step {i}: {w:?}",
            mqs.describe()
        );
    }
    crack.column().validate().expect("invariants hold");
}

#[test]
fn homerun_sequences_agree_with_oracle() {
    for seed in 0..3 {
        check_profile(Profile::Homerun, seed);
    }
}

#[test]
fn hiking_sequences_agree_with_oracle() {
    for seed in 0..3 {
        check_profile(Profile::Hiking, seed);
    }
}

#[test]
fn strolling_sequences_agree_with_oracle() {
    for mode in [
        StrollMode::Converge,
        StrollMode::RandomWithReplacement,
        StrollMode::RandomWithoutReplacement,
    ] {
        check_profile(Profile::Strolling(mode), 7);
    }
}

#[test]
fn all_profiles_agree_with_oracle_in_all_concurrency_modes() {
    // Not just the default column path: every MQS profile replayed
    // against the plain, single-lock, and sharded crackers, with full
    // OID-set comparison per query.
    for profile in all_profiles() {
        let mqs = Mqs {
            alpha: 2,
            n: 10_000,
            k: 24,
            sigma: 0.05,
            rho: Contraction::Exponential,
            delta: Contraction::Linear,
            profile,
        };
        let table = mqs.table(11);
        let column = table.column(0);
        let seq = mqs.sequence(11);
        for (mode, mut exec) in executors(column) {
            for (i, w) in seq.iter().enumerate() {
                let mut got = exec.run_select(*w);
                got.sort_unstable();
                assert_eq!(
                    got,
                    oracle_oids(column, w),
                    "{} step {i} under {mode}: {w:?}",
                    mqs.describe()
                );
            }
        }
    }
}

#[test]
fn scenario_workloads_agree_with_oracle_in_all_concurrency_modes() {
    // The three scenario-engine workloads join the MQS profiles in the
    // same sweep: replay differentially (updates included) under every
    // concurrency flavour.
    type Factory = fn(u64) -> Box<dyn Scenario<Item = Op>>;
    let make: Vec<Factory> = vec![
        |seed| Box::new(ZipfQueries::new(10_000, 2_500, 1.1, 48, seed)),
        |seed| Box::new(ShiftingHotSet::new(10_000, 64, 16, Shift::Jump, seed)),
        |seed| {
            Box::new(UpdateHeavy::new(
                Mqs::paper_default(10_000, 48, 0.05),
                3.0,
                6,
                seed,
            ))
        },
    ];
    for factory in make {
        let probe = factory(21);
        for (mode, mut exec) in executors(probe.base()) {
            let mut scenario = factory(21);
            ScenarioRunner::run_differential(scenario.as_mut(), exec.as_mut())
                .unwrap_or_else(|e| panic!("{mode}: {e}"));
        }
    }
}

#[test]
fn all_three_engines_agree_on_a_long_mixed_sequence() {
    let mqs = Mqs::paper_default(10_000, 64, 0.05);
    let table = mqs.table(3);
    let column = table.column(0);
    let mut scan = ScanEngine::new(column.to_vec());
    let mut sort = SortEngine::new(column.to_vec());
    let mut crack = CrackEngine::new(column.to_vec());
    for w in mqs.sequence(3) {
        let a = scan.run(w.to_pred(), OutputMode::Count).result_count;
        let b = sort.run(w.to_pred(), OutputMode::Count).result_count;
        let c = crack.run(w.to_pred(), OutputMode::Count).result_count;
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}

#[test]
fn cracking_reads_decay_while_scans_stay_flat() {
    // The Figure 10 mechanism, asserted in counters rather than seconds.
    let n = 50_000;
    let t = Tapestry::generate(n, 1, 99);
    let seq = homerun_sequence(n, 32, 0.05, Contraction::Linear, 5);
    let mut crack = CrackEngine::new(t.column(0).to_vec());
    let mut scan = ScanEngine::new(t.column(0).to_vec());
    let mut crack_first = 0;
    let mut crack_last = 0;
    for (i, w) in seq.iter().enumerate() {
        let c = crack.run(w.to_pred(), OutputMode::Count).tuples_read;
        let s = scan.run(w.to_pred(), OutputMode::Count).tuples_read;
        assert_eq!(s, n as u64, "scans never improve");
        if i == 0 {
            crack_first = c;
        }
        if i == seq.len() - 1 {
            crack_last = c;
        }
    }
    assert_eq!(crack_first, n as u64, "first query pays the full touch");
    // The last crack partitions only the piece left by the previous
    // (slightly wider) window — a small fraction of the table.
    assert!(
        crack_last < n as u64 / 10,
        "late homerun queries touch a small fraction: {crack_last}"
    );
}
