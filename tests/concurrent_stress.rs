//! Multi-threaded stress: "hundreds of [queries] issued in rapid
//! succession" (§2.2), concurrently, against the shared cracked column.
//! Every thread checks every answer against the immutable oracle; the
//! final structure must still satisfy all cracker invariants.

use dbcracker::cracker_core::{ShardedCrackerColumn, SharedCrackerColumn};
use dbcracker::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn oracle_count(vals: &[i64], pred: &RangePred<i64>) -> usize {
    vals.iter().filter(|&&v| pred.matches(v)).count()
}

#[test]
fn parallel_query_storm_stays_correct() {
    let n = 50_000;
    let vals = Tapestry::generate(n, 1, 0xC0C0).column(0).to_vec();
    let shared = SharedCrackerColumn::new(vals.clone());
    let threads = 8;
    let queries_per_thread = 200;

    std::thread::scope(|s| {
        for t in 0..threads {
            let shared = &shared;
            let vals = &vals;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64);
                for _ in 0..queries_per_thread {
                    let lo = rng.gen_range(0..n as i64);
                    let width = rng.gen_range(1..=(n as i64 / 20));
                    let pred = RangePred::half_open(lo, lo + width);
                    let got = shared.select_oids(pred).len();
                    assert_eq!(
                        got,
                        oracle_count(vals, &pred),
                        "thread {t} disagreed on [{lo},{})",
                        lo + width
                    );
                }
            });
        }
    });

    shared.validate().expect("invariants hold after the storm");
    let stats = shared.stats();
    // Boundary-reusing queries may ride the shared-lock read-only fast
    // path, which leaves the (write-locked) counters untouched — so the
    // count is a lower bound that still must capture the bulk of the
    // storm.
    let total = threads * queries_per_thread;
    assert!(
        stats.queries <= total && stats.queries >= total / 2,
        "counted {} of {total} queries",
        stats.queries
    );
    assert!(stats.cracks > 0, "the storm physically cracked the store");
}

#[test]
fn readers_and_a_writer_interleave() {
    // Concurrent selects racing staged inserts/deletes: totals must land
    // exactly once the writer finishes.
    let n = 10_000;
    let vals: Vec<i64> = (0..n as i64).rev().collect();
    let shared = SharedCrackerColumn::new(vals);

    std::thread::scope(|s| {
        // Readers hammer a fixed hot range.
        for t in 0..4 {
            let shared = &shared;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(100 + t);
                for _ in 0..300 {
                    let lo = rng.gen_range(0..9_000i64);
                    let c = shared.select_oids(RangePred::half_open(lo, lo + 500)).len();
                    // The writer only adds values above the domain, so
                    // in-domain counts never change.
                    assert_eq!(c, 500);
                }
            });
        }
        // One writer stages out-of-domain inserts then removes them.
        let shared = &shared;
        s.spawn(move || {
            for i in 0..200u32 {
                shared.insert(n as u32 + i, n as i64 + i as i64);
            }
            for i in 0..100u32 {
                assert!(shared.delete(n as u32 + i));
            }
        });
    });

    // After the dust settles: 100 of the 200 staged inserts survive.
    let above = shared.select_oids(RangePred::ge(n as i64)).len();
    assert_eq!(above, 100);
    shared.validate().expect("invariants hold");
}

#[test]
fn sharded_mixed_storm_stays_correct() {
    // Oracle-checked mixed read/crack/update stress over the per-shard-
    // latched column: 8 threads firing straddling predicates (every query
    // window is wider than a shard, so the lock-ordered multi-shard path
    // is exercised continuously), then racing staged updates, with every
    // phase followed by a full invariant validation.
    let n = 50_000usize;
    let vals = Tapestry::generate(n, 1, 0x5AAD).column(0).to_vec();
    let col = ShardedCrackerColumn::new(vals.clone(), 16);
    assert_eq!(col.shard_count(), 16);
    let threads = 8;

    // Phase 1: read/crack storm. Shard width is ~n/16, so widths above
    // that straddle at least one split point.
    std::thread::scope(|s| {
        for t in 0..threads {
            let col = &col;
            let vals = &vals;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xF00D + t as u64);
                for _ in 0..150 {
                    let lo = rng.gen_range(0..(n - n / 8) as i64);
                    let width = rng.gen_range((n / 16) as i64..(n / 4) as i64);
                    let pred = RangePred::half_open(lo, lo + width);
                    assert_eq!(col.count(pred), oracle_count(vals, &pred));
                }
            });
        }
    });
    col.validate()
        .expect("invariants hold after the crack storm");

    // Phase 2: concurrent readers, inserters, and deleters. Writers only
    // touch values above the base domain, so in-domain answers stay
    // oracle-exact throughout.
    std::thread::scope(|s| {
        for t in 0..threads / 2 {
            let col = &col;
            let vals = &vals;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xBEEF + t as u64);
                for _ in 0..100 {
                    let lo = rng.gen_range(0..(n - n / 8) as i64);
                    let width = rng.gen_range((n / 16) as i64..(n / 4) as i64);
                    let pred = RangePred::half_open(lo, lo + width.min(n as i64 - lo));
                    assert_eq!(col.count(pred), oracle_count(vals, &pred));
                }
            });
        }
        // Writers stage values strictly above the base domain (a tapestry
        // column is a permutation of 1..=n, so "above" starts at 2n).
        for w in 0..threads / 2 {
            let col = &col;
            s.spawn(move || {
                for i in 0..200u32 {
                    let oid = (2 * n + w * 1_000 + i as usize) as u32;
                    col.insert(oid, (2 * n + w * 1_000 + i as usize) as i64);
                    if i % 2 == 0 {
                        assert!(col.delete(oid), "freshly staged insert must be found");
                    }
                }
            });
        }
    });
    col.validate()
        .expect("invariants hold after the update storm");

    // Half of each writer's 200 staged inserts survived its deletes.
    let above = col.select_oids(RangePred::ge(2 * n as i64)).len();
    assert_eq!(above, (threads / 2) * 100);

    // Phase 3: merge everything in, then re-check answers and invariants.
    col.merge_pending();
    col.validate().expect("invariants hold after the merge");
    assert_eq!(col.len(), n + (threads / 2) * 100);
    assert_eq!(col.select_oids(RangePred::ge(2 * n as i64)).len(), above);
    assert_eq!(
        col.count(RangePred::le(n as i64)),
        n,
        "the base domain is untouched by the out-of-domain writers"
    );
    assert!(
        col.stats().cracks > 0,
        "the storm physically cracked shards"
    );
}
