//! The differential oracle harness: every scenario (skewed, shifting,
//! update-heavy) replayed in lock-step against the sorted-vector oracle,
//! across every concurrency flavour of the cracker — the plain
//! (unlatched) column, the single-lock shared column, and the sharded
//! per-shard-latched column — plus the engine-level runners. Result sets
//! are compared in full (sorted OID vectors, not counts) after every
//! step; the first divergence fails with the scenario, step, and mode.

use dbcracker::cracker_core::{
    ConcurrencyMode, ConcurrentColumn, CrackerColumn, CrackerConfig, ShardedCrackerColumn,
};
use dbcracker::prelude::*;
use proptest::prelude::*;

/// The scenario roster, rebuilt fresh per executor (the seeding contract
/// makes a rebuild replay the identical op stream).
fn roster(seed: u64) -> Vec<Box<dyn Scenario<Item = Op>>> {
    vec![
        Box::new(ZipfQueries::new(20_000, 5_000, 1.1, 64, seed)),
        Box::new(ShiftingHotSet::new(
            20_000,
            96,
            16,
            Shift::Drift { step: 5_000 },
            seed,
        )),
        Box::new(ShiftingHotSet::new(20_000, 96, 16, Shift::Jump, seed)),
        Box::new(UpdateHeavy::new(
            Mqs::paper_default(20_000, 64, 0.05),
            4.0,
            8,
            seed,
        )),
    ]
}

/// Number of scenarios in [`roster`] — pinned so a roster edit that drops
/// coverage fails loudly.
const ROSTER_LEN: usize = 4;

/// The three concurrency flavours every scenario must survive.
#[derive(Clone, Copy, Debug)]
enum Mode {
    Plain,
    SingleLock,
    Sharded(usize),
}

const MODES: [Mode; 3] = [Mode::Plain, Mode::SingleLock, Mode::Sharded(8)];

fn replay(scenario: &mut dyn Scenario<Item = Op>, mode: Mode) {
    let name = scenario.name();
    let base = scenario.base().to_vec();
    let report = match mode {
        Mode::Plain => {
            let mut col = CrackerColumn::new(base);
            let r = ScenarioRunner::run_differential(scenario, &mut col);
            col.validate().expect("plain column invariants");
            r
        }
        Mode::SingleLock => {
            let mut col = ConcurrentColumn::build(
                base,
                CrackerConfig::default(),
                ConcurrencyMode::SingleLock,
            );
            let r = ScenarioRunner::run_differential(scenario, &mut col);
            col.validate().expect("single-lock invariants");
            r
        }
        Mode::Sharded(shards) => {
            let mut col = ConcurrentColumn::build(
                base,
                CrackerConfig::default(),
                ConcurrencyMode::Sharded { shards },
            );
            let r = ScenarioRunner::run_differential(scenario, &mut col);
            col.validate().expect("sharded invariants");
            r
        }
    };
    let report = report.unwrap_or_else(|e| panic!("{mode:?}: {e}"));
    assert!(report.selects > 0, "{name} under {mode:?} ran no selects");
}

#[test]
fn every_scenario_matches_the_oracle_in_every_mode() {
    for mode in MODES {
        let scenarios = roster(0x0A);
        assert_eq!(scenarios.len(), ROSTER_LEN);
        for mut scenario in scenarios {
            replay(scenario.as_mut(), mode);
        }
    }
}

#[test]
fn engine_level_runners_match_the_oracle_in_both_lock_modes() {
    for mode in [
        ConcurrencyMode::SingleLock,
        ConcurrencyMode::Sharded { shards: 8 },
    ] {
        for mut scenario in roster(0x0C) {
            let mut runner =
                DbScenarioRunner::new(scenario.as_ref(), mode).expect("register scenario table");
            ScenarioRunner::run_differential(scenario.as_mut(), &mut runner)
                .unwrap_or_else(|e| panic!("adaptive-db {mode:?}: {e}"));
        }
    }
}

#[test]
fn engine_crack_engine_matches_the_oracle() {
    for mut scenario in roster(0x0D) {
        let mut engine = CrackEngine::new(scenario.base().to_vec());
        ScenarioRunner::run_differential(scenario.as_mut(), &mut engine)
            .unwrap_or_else(|e| panic!("crack-engine: {e}"));
        engine.column().validate().expect("invariants hold");
    }
}

#[test]
fn granule_sim_replays_every_scenario_deterministically() {
    for mut scenario in roster(0x0E) {
        let name = scenario.name();
        let mut sim = GranuleSim::from_scenario(scenario.as_ref(), 0);
        let costs = sim.run_scenario(scenario.as_mut());
        assert!(!costs.is_empty(), "{name}: no ops replayed");
        // Replaying the rebuilt scenario yields the identical series.
        let mut again = roster(0x0E)
            .into_iter()
            .find(|s| s.name() == name)
            .expect("scenario found by name");
        let mut sim2 = GranuleSim::from_scenario(again.as_ref(), 0);
        assert_eq!(costs, sim2.run_scenario(again.as_mut()), "{name}");
        assert!(sim.piece_count() > 1, "{name}: the sim column was cracked");
    }
}

#[test]
fn sharded_merge_preserves_scenario_answers() {
    // After an update-heavy replay, folding the staged updates into the
    // cracked shards must not change any answer.
    let mut scenario = UpdateHeavy::new(Mqs::paper_default(10_000, 48, 0.05), 6.0, 8, 0x0F);
    let col = ShardedCrackerColumn::new(scenario.base().to_vec(), 8);
    let mut oracle = SortedOracle::new(scenario.base());
    let mut probes: Vec<Window> = Vec::new();
    for op in &mut scenario {
        match op {
            Op::Select(w) => {
                probes.push(w);
                let mut got = col.select_oids(w.to_pred());
                got.sort_unstable();
                assert_eq!(got, oracle.select_oids(w));
            }
            Op::Insert { oid, value } => {
                col.insert(oid, value);
                oracle.insert(oid, value);
            }
            Op::Delete { oid } => {
                assert_eq!(col.delete(oid), oracle.delete(oid));
            }
        }
    }
    col.merge_pending();
    col.validate().expect("invariants hold after the merge");
    for w in probes {
        let mut got = col.select_oids(w.to_pred());
        got.sort_unstable();
        assert_eq!(
            got,
            oracle.select_oids(w),
            "post-merge [{}, {})",
            w.lo,
            w.hi
        );
    }
}

proptest! {
    /// Satellite of the PR-2 `Selection::count` invariant work: arbitrary
    /// interleaved insert/delete/select sequences over the sharded column,
    /// checked step-by-step against the sorted oracle.
    #[test]
    fn prop_sharded_interleaving_matches_oracle(
        vals in proptest::collection::vec(-60i64..60, 8..120),
        ops in proptest::collection::vec((0i64..6, -70i64..70, 1i64..40), 1..50),
        shards in 1i64..6,
    ) {
        let col = ShardedCrackerColumn::new(vals.clone(), shards as usize);
        let mut oracle = SortedOracle::new(&vals);
        let mut live: Vec<u32> = (0..vals.len() as u32).collect();
        let mut next_oid = vals.len() as u32;
        for (kind, a, b) in ops {
            match kind {
                // Selects dominate the mix, as in any real sequence.
                0..=2 => {
                    let w = Window::new(a, a + b);
                    let mut got = col.select_oids(w.to_pred());
                    got.sort_unstable();
                    prop_assert_eq!(got, oracle.select_oids(w), "select [{}, {})", w.lo, w.hi);
                }
                3 | 4 => {
                    let oid = next_oid;
                    next_oid += 1;
                    col.insert(oid, a);
                    oracle.insert(oid, a);
                    live.push(oid);
                }
                _ => {
                    if !live.is_empty() {
                        let victim = live.swap_remove(b as usize % live.len());
                        prop_assert_eq!(col.delete(victim), oracle.delete(victim));
                    }
                }
            }
        }
        col.validate().map_err(TestCaseError::fail)?;
        col.merge_pending();
        col.validate().map_err(TestCaseError::fail)?;
        // Final full-domain audit.
        let w = Window::new(-100, 100);
        let mut got = col.select_oids(w.to_pred());
        got.sort_unstable();
        prop_assert_eq!(got, oracle.select_oids(w));
    }
}
