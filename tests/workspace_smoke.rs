//! Workspace smoke test: pins the facade crate's `prelude` re-export
//! surface by driving the full paper pipeline through it — tapestry
//! generation, a cracking engine fed a homerun sequence, the granule
//! simulation, and the SQL front-end — using only `dbcracker::prelude`
//! names. If a re-export is dropped or renamed, this test (not just the
//! crate-level doctest) fails.

use dbcracker::prelude::*;

#[test]
fn prelude_drives_the_full_pipeline() {
    // Workload layer: a shuffled tapestry column plus a zooming sequence.
    let n = 10_000;
    let tapestry = Tapestry::generate(n, 2, 42);
    let windows = homerun_sequence(n, 8, 0.02, Contraction::Linear, 7);
    assert_eq!(windows.len(), 8);

    // Engine layer: cracking converges; repeats become index-only.
    let mut engine = CrackEngine::new(tapestry.column(0).to_vec());
    for window in &windows {
        let stats = engine.run(window.to_pred(), OutputMode::Count);
        assert!(stats.result_count > 0, "windows always select something");
    }
    let again = engine.run(windows[7].to_pred(), OutputMode::Count);
    assert_eq!(again.tuples_read, 0, "hot range fully isolated");

    // The competing access engines answer identically.
    let pred = RangePred::between(100, 900);
    let mut scan = ScanEngine::new(tapestry.column(0).to_vec());
    let mut sort = SortEngine::new(tapestry.column(0).to_vec());
    assert_eq!(
        scan.run(pred, OutputMode::Count).result_count,
        sort.run(pred, OutputMode::Count).result_count,
    );
    assert_eq!(
        scan.run(pred, OutputMode::Count).result_count,
        engine.run(pred, OutputMode::Count).result_count,
    );

    // Concurrency layer: both latched-column modes answer like the
    // single-threaded engines.
    let shared = SharedCrackerColumn::new(tapestry.column(0).to_vec());
    let sharded = ShardedCrackerColumn::new(tapestry.column(0).to_vec(), 8);
    assert_eq!(shared.count(pred), sharded.count(pred));
    let concurrent = ConcurrentColumn::build(
        tapestry.column(0).to_vec(),
        CrackerConfig::default(),
        ConcurrencyMode::Sharded { shards: 4 },
    );
    assert_eq!(concurrent.count(pred), shared.count(pred));
    concurrent.validate().expect("sharded invariants hold");

    // Simulation layer: the §2.2 granule model runs and reports costs.
    let costs = GranuleSim::new(1_000, 0.1, 3).run(5);
    assert_eq!(costs.len(), 5);
    assert!(costs[0].io() > 0);

    // SQL layer: load a table and run a one-liner through the front-end.
    let mut session = SqlSession::new();
    session
        .load_table(
            "r",
            vec![
                ("k".into(), tapestry.column(0).to_vec()),
                ("a".into(), tapestry.column(1).to_vec()),
            ],
        )
        .expect("fresh session accepts table r");
    let out: QueryOutput = session
        .execute_one("select count(*) from r where a >= 10 and a < 20")
        .expect("well-formed query executes");
    let rows = out.rows().expect("count(*) yields a table");
    let oracle = tapestry
        .column(1)
        .iter()
        .filter(|&&v| (10..20).contains(&v))
        .count() as i64;
    assert_eq!(rows[0][0], oracle, "SQL answer matches the oracle");
}

#[test]
fn prelude_exposes_config_and_policy_types() {
    // Construction through re-exported names only; pins the type surface.
    let config = CrackerConfig::default();
    let column = CrackerColumn::with_config((0..100).rev().collect::<Vec<i64>>(), config);
    assert_eq!(column.len(), 100);
    let _ = (
        CrackMode::ThreeWay,
        FusionPolicy::SmallestPair,
        OutputMode::Materialize,
        StochasticPolicy::DD1R,
    );
    let window = Window::new(1, 10);
    assert_eq!(window.width(), 9);
}
