//! Property-based cross-engine fuzzing: five independent implementations
//! of range selection — full scan, sorted binary search, kernel cracking,
//! SQL-level fragment cracking, and the lock-guarded shared cracker —
//! must agree on every answer for arbitrary data and query sequences,
//! under arbitrary cracker configurations.

use cracker_core::{CrackMode, CrackerConfig, FusionPolicy, RangePred, SharedCrackerColumn};
use engine::{CrackEngine, OutputMode, QueryEngine, ScanEngine, SortEngine, SqlLevelCracker};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = CrackerConfig> {
    (
        proptest::bool::ANY,
        1usize..128,
        prop_oneof![Just(usize::MAX), (2usize..12).boxed().prop_map(|v| v)],
        0u8..3,
        prop_oneof![Just(0usize), 1usize..256],
    )
        .prop_map(|(three_way, cutoff, max_pieces, fusion, sort_below)| {
            CrackerConfig::new()
                .with_mode(if three_way {
                    CrackMode::ThreeWay
                } else {
                    CrackMode::TwoWay
                })
                .with_min_piece_size(cutoff)
                .with_max_pieces(max_pieces)
                .with_fusion(match fusion {
                    0 => FusionPolicy::SmallestPair,
                    1 => FusionPolicy::LeastRecentlyUsed,
                    _ => FusionPolicy::MostBalanced,
                })
                .with_sort_below(sort_below)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn five_engines_agree_on_arbitrary_sequences(
        vals in proptest::collection::vec(-200i64..200, 1..300),
        queries in proptest::collection::vec(
            (-220i64..220, -220i64..220, proptest::bool::ANY, proptest::bool::ANY),
            1..20
        ),
        cfg in config_strategy(),
    ) {
        let mut scan = ScanEngine::new(vals.clone());
        let mut sort = SortEngine::new(vals.clone());
        let mut crack = CrackEngine::with_config(vals.clone(), cfg);
        let mut sql = SqlLevelCracker::new(vals.clone());
        let shared = SharedCrackerColumn::with_config(vals.clone(), cfg);
        for (a, b, inc_lo, inc_hi) in queries {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let pred = RangePred::with_bounds(Some((lo, inc_lo)), Some((hi, inc_hi)));
            let mut want = scan.result_oids(pred);
            want.sort_unstable();
            for (name, got) in [
                ("sort", sort.result_oids(pred)),
                ("crack", crack.result_oids(pred)),
                ("sql", sql.result_oids(pred)),
                ("shared", shared.select_oids(pred)),
            ] {
                let mut got = got;
                got.sort_unstable();
                prop_assert_eq!(&got, &want, "{} disagrees on [{:?}]", name, pred);
            }
            // run() counts agree with oracle too.
            let count = scan.run(pred, OutputMode::Count).result_count;
            prop_assert_eq!(count as usize, want.len());
            let count = crack.run(pred, OutputMode::Count).result_count;
            prop_assert_eq!(count as usize, want.len());
            let count = sql.run(pred, OutputMode::Count).result_count;
            prop_assert_eq!(count as usize, want.len());
        }
        crack.column().validate().map_err(TestCaseError::fail)?;
        shared.validate().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn one_sided_and_unbounded_predicates_agree(
        vals in proptest::collection::vec(-100i64..100, 1..200),
        probes in proptest::collection::vec((-120i64..120, 0u8..5), 1..15),
        cfg in config_strategy(),
    ) {
        let mut scan = ScanEngine::new(vals.clone());
        let mut crack = CrackEngine::with_config(vals, cfg);
        for (v, op) in probes {
            let pred = match op {
                0 => RangePred::lt(v),
                1 => RangePred::le(v),
                2 => RangePred::gt(v),
                3 => RangePred::ge(v),
                _ => RangePred::with_bounds(None, None),
            };
            let mut want = scan.result_oids(pred);
            want.sort_unstable();
            let mut got = crack.result_oids(pred);
            got.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn loss_lessness_survives_any_workload(
        vals in proptest::collection::vec(-50i64..50, 1..200),
        queries in proptest::collection::vec((-60i64..60, -60i64..60), 1..25),
        cfg in config_strategy(),
    ) {
        let mut crack = CrackEngine::with_config(vals.clone(), cfg);
        let mut sql = SqlLevelCracker::new(vals.clone());
        for (a, b) in queries {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            crack.run(RangePred::between(lo, hi), OutputMode::Count);
            sql.run(RangePred::between(lo, hi), OutputMode::Count);
        }
        // Every tuple is still present exactly once in both stores.
        prop_assert_eq!(crack.len(), vals.len());
        prop_assert_eq!(sql.len(), vals.len());
        let mut crack_vals: Vec<i64> = crack.column().values().to_vec();
        crack_vals.sort_unstable();
        let mut orig = vals;
        orig.sort_unstable();
        prop_assert_eq!(crack_vals, orig);
    }
}
