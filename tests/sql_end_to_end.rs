//! End-to-end: SQL statements in, cracked answers out, cross-checked
//! against a naive oracle over the same data.

use dbcracker::prelude::*;
use sql::SqlSession;

/// A session holding a 2-column tapestry table `r(k, a)` plus the raw
/// column data for oracle checks.
fn tapestry_session(n: usize, seed: u64) -> (SqlSession, Vec<i64>, Vec<i64>) {
    let t = Tapestry::generate(n, 2, seed);
    let k = t.column(0).to_vec();
    let a = t.column(1).to_vec();
    let mut s = SqlSession::new();
    s.load_table("r", vec![("k".into(), k.clone()), ("a".into(), a.clone())])
        .unwrap();
    (s, k, a)
}

#[test]
fn a_homerun_sequence_through_sql_matches_the_oracle() {
    let n = 5_000;
    let (mut session, _, a) = tapestry_session(n, 7);
    let windows = workload::homerun::homerun_sequence(n, 12, 0.05, Contraction::Linear, 3);
    for w in &windows {
        let (lo, hi) = (w.lo, w.hi);
        let sql = format!("select count(*) from r where a >= {lo} and a < {hi}");
        let out = session.execute_one(&sql).unwrap();
        let got = out.rows().unwrap()[0][0];
        let want = a.iter().filter(|&&v| (lo..hi).contains(&v)).count() as i64;
        assert_eq!(got, want, "window [{lo},{hi})");
    }
    // One column queried throughout → one cracked column.
    assert_eq!(session.cracked_columns(), 1);
    let stats = session.adaptive().total_crack_stats();
    assert_eq!(stats.queries, windows.len());
    assert!(
        stats.cracks > 0,
        "the sequence physically cracked the store"
    );
}

#[test]
fn conjunctions_disjunctions_and_negations_match_the_oracle() {
    let (mut session, k, a) = tapestry_session(2_000, 11);
    let cases = [
        "a >= 100 and a < 900 and k < 1000",
        "a < 100 or a > 1900",
        "not (a between 500 and 1500)",
        "a <> 1000 and k >= 1990",
        "(a < 300 or a >= 1700) and k between 1 and 1999",
    ];
    for clause in cases {
        let out = session
            .execute_one(&format!("select count(*) from r where {clause}"))
            .unwrap();
        let got = out.rows().unwrap()[0][0];
        let want = k
            .iter()
            .zip(&a)
            .filter(|&(&kv, &av)| oracle(clause, kv, av))
            .count() as i64;
        assert_eq!(got, want, "clause {clause:?}");
    }
}

/// Hand-written oracle for the fixed test clauses.
fn oracle(clause: &str, k: i64, a: i64) -> bool {
    match clause {
        "a >= 100 and a < 900 and k < 1000" => (100..900).contains(&a) && k < 1000,
        "a < 100 or a > 1900" => !(100..=1900).contains(&a),
        "not (a between 500 and 1500)" => !(500..=1500).contains(&a),
        "a <> 1000 and k >= 1990" => a != 1000 && k >= 1990,
        "(a < 300 or a >= 1700) and k between 1 and 1999" => {
            !(300..1700).contains(&a) && (1..=1999).contains(&k)
        }
        other => panic!("no oracle for {other:?}"),
    }
}

#[test]
fn materialization_pipeline_like_figure_1a() {
    let (mut session, _, a) = tapestry_session(1_000, 3);
    // The paper's benchmark query: INSERT INTO newR SELECT * FROM R WHERE ...
    session
        .execute_one("insert into newr select * from r where a >= 10 and a <= 200")
        .unwrap();
    let out = session.execute_one("select count(*) from newr").unwrap();
    let want = a.iter().filter(|&&v| (10..=200).contains(&v)).count() as i64;
    assert_eq!(out.rows().unwrap()[0][0], want);
    // The materialized table is itself crackable.
    let out = session
        .execute_one("select count(*) from newr where a < 50")
        .unwrap();
    let want = a.iter().filter(|&&v| (10..50).contains(&v)).count() as i64;
    assert_eq!(out.rows().unwrap()[0][0], want);
}

#[test]
fn join_through_sql_agrees_with_nested_loop() {
    let mut session = SqlSession::new();
    let r_k: Vec<i64> = (0..200).map(|i| i % 20).collect();
    let r_a: Vec<i64> = (0..200).collect();
    let s_k: Vec<i64> = (0..50).map(|i| i % 10).collect();
    let s_b: Vec<i64> = (0..50).map(|i| i * 3).collect();
    session
        .load_table(
            "r",
            vec![("k".into(), r_k.clone()), ("a".into(), r_a.clone())],
        )
        .unwrap();
    session
        .load_table(
            "s",
            vec![("k".into(), s_k.clone()), ("b".into(), s_b.clone())],
        )
        .unwrap();
    let out = session
        .execute_one("select count(*) from r, s where r.k = s.k and r.a < 100 and s.b >= 30")
        .unwrap();
    let mut want = 0i64;
    for (i, &rk) in r_k.iter().enumerate() {
        for (j, &sk) in s_k.iter().enumerate() {
            if rk == sk && r_a[i] < 100 && s_b[j] >= 30 {
                want += 1;
            }
        }
    }
    assert_eq!(out.rows().unwrap()[0][0], want);
}

#[test]
fn group_by_aggregates_agree_with_manual_grouping() {
    let (mut session, k, a) = tapestry_session(1_000, 19);
    // Bucket k into 10 groups via a materialized helper column is overkill;
    // group directly on k % -- not supported. Use a small value domain table.
    let groups: Vec<i64> = k.iter().map(|v| v % 7).collect();
    session
        .load_table(
            "g",
            vec![("grp".into(), groups.clone()), ("a".into(), a.clone())],
        )
        .unwrap();
    let out = session
        .execute_one("select grp, count(*), sum(a), min(a), max(a) from g group by grp")
        .unwrap();
    let rows = out.rows().unwrap();
    assert_eq!(rows.len(), 7);
    for row in rows {
        let g = row[0];
        let members: Vec<i64> = groups
            .iter()
            .zip(&a)
            .filter(|(&gv, _)| gv == g)
            .map(|(_, &av)| av)
            .collect();
        assert_eq!(row[1], members.len() as i64, "count of group {g}");
        assert_eq!(row[2], members.iter().sum::<i64>(), "sum of group {g}");
        assert_eq!(row[3], *members.iter().min().unwrap(), "min of group {g}");
        assert_eq!(row[4], *members.iter().max().unwrap(), "max of group {g}");
    }
}

#[test]
fn errors_render_with_source_context() {
    let mut session = SqlSession::new();
    session
        .load_table("r", vec![("a".into(), vec![1, 2, 3])])
        .unwrap();
    let src = "select * from r where b < 3";
    let err = session.execute_one(src).unwrap_err();
    let rendered = err.render(src);
    assert!(rendered.contains("no FROM table has a column"));
    assert!(rendered.contains('^'));
}

#[test]
fn successive_sql_queries_leave_the_store_progressively_cracked() {
    let (mut session, _, _) = tapestry_session(10_000, 23);
    let mut pieces_last = 0;
    for step in 0..8 {
        let lo = step * 500;
        let hi = lo + 400;
        session
            .execute_one(&format!(
                "select count(*) from r where a >= {lo} and a < {hi}"
            ))
            .unwrap();
        let stats = session.adaptive().total_crack_stats();
        assert!(stats.cracks >= pieces_last, "cracks only accumulate");
        pieces_last = stats.cracks;
    }
    // Eight disjoint windows → substantially more than one crack.
    assert!(pieces_last >= 8);
}
