//! Crash-injection recovery suite: kill the durability layer at every
//! write boundary, recover, and hold the recovered database to the full
//! differential oracle — answers must be identical to a never-crashed
//! replay, piece maps must validate, and the recovered store must answer
//! *warm* (at cracked cost, not full-scan cost). See `PERSISTENCE.md`.

use dbcracker::engine::scenario::{SCENARIO_COLUMN, SCENARIO_TABLE};
use dbcracker::engine::{AdaptiveDb, DbScenarioRunner, OutputMode, RangeQuery, Table};
use dbcracker::prelude::*;
use std::path::PathBuf;

const TABLE: &str = "t";
const COLUMN: &str = "v";

/// Fresh scratch directory for one test case (removed up front so reruns
/// of a dirty tree start clean).
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dbcracker-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A deterministic pseudo-random stream (splitmix64) for window
/// placement — no RNG crate needed.
struct Mix(u64);
impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn window(&mut self, domain: i64, width: i64) -> Window {
        let lo = (self.next() % (domain - width).max(1) as u64) as i64;
        Window::new(lo, lo + width)
    }
}

fn base_column(n: usize) -> Vec<i64> {
    (0..n as i64).map(|i| (i * 37) % n as i64).collect()
}

fn db_with_table(base: &[i64], mode: ConcurrencyMode) -> AdaptiveDb {
    let mut db = AdaptiveDb::new().with_concurrency(mode);
    db.register(Table::from_int_columns(TABLE, vec![(COLUMN, base.to_vec())]).unwrap())
        .unwrap();
    db
}

/// The recovered db must give oracle-identical answers on both query
/// paths (plain cracker and latched shared cracker) for every probe
/// window, and its piece maps must pass full validation.
fn assert_matches_oracle(db: &mut AdaptiveDb, oracle: &SortedOracle, windows: &[Window]) {
    for &w in windows {
        let want = oracle.select_oids(w);
        let (mut plain, _) = db
            .select(
                &RangeQuery::new(TABLE, COLUMN, w.to_pred()),
                OutputMode::Stream,
            )
            .unwrap();
        plain.sort_unstable();
        assert_eq!(plain, want, "plain path diverged on [{}, {})", w.lo, w.hi);
        let shared = db.shared_cracker(TABLE, COLUMN).unwrap();
        let mut latched = shared.select_oids(w.to_pred());
        latched.sort_unstable();
        assert_eq!(
            latched, want,
            "shared path diverged on [{}, {})",
            w.lo, w.hi
        );
    }
    db.shared_cracker(TABLE, COLUMN)
        .unwrap()
        .validate()
        .expect("recovered piece map must validate");
}

#[test]
fn checkpoint_recover_roundtrip_matches_oracle_in_both_modes() {
    let n = 8_000;
    let base = base_column(n);
    for (mode, tag) in [
        (ConcurrencyMode::SingleLock, "single"),
        (ConcurrencyMode::Sharded { shards: 4 }, "sharded"),
    ] {
        let dir = scratch(&format!("roundtrip-{tag}"));
        let mut oracle = SortedOracle::new(&base);
        let mut db = db_with_table(&base, mode);
        let mut mix = Mix(7);
        // Crack both copies before attaching, so the checkpoint carries a
        // non-trivial piece map.
        for _ in 0..12 {
            let w = mix.window(n as i64, 400);
            db.select(
                &RangeQuery::new(TABLE, COLUMN, w.to_pred()),
                OutputMode::Count,
            )
            .unwrap();
            db.shared_cracker(TABLE, COLUMN).unwrap().count(w.to_pred());
        }
        db.attach_durability(&dir, 1).unwrap();
        // Updates after the initial checkpoint live only in the redo log.
        for i in 0..60u32 {
            let oid = n as u32 + i;
            let value = (mix.next() % n as u64) as i64;
            db.stage_insert(TABLE, COLUMN, oid, value).unwrap();
            oracle.insert(oid, value);
            if i % 3 == 0 {
                let victim = (mix.next() % n as u64) as u32;
                let found = db.stage_delete(TABLE, COLUMN, victim).unwrap();
                assert_eq!(found, oracle.delete(victim));
            }
        }
        // A checkpoint absorbs the overlay; more updates go to the new log.
        let epoch = db.checkpoint().unwrap();
        assert!(epoch >= 2);
        for i in 60..90u32 {
            let oid = n as u32 + i;
            db.stage_insert(TABLE, COLUMN, oid, 5).unwrap();
            oracle.insert(oid, 5);
        }
        drop(db);
        let mut rec = AdaptiveDb::recover(&dir, CrackerConfig::default(), 1).unwrap();
        assert_eq!(rec.concurrency(), mode, "mode survives recovery");
        let probes: Vec<Window> = (0..20).map(|_| mix.window(n as i64, 700)).collect();
        assert_matches_oracle(&mut rec, &oracle, &probes);
        // The recovered db keeps logging: another round trip still agrees.
        rec.stage_insert(TABLE, COLUMN, n as u32 + 500, -3).unwrap();
        oracle.insert(n as u32 + 500, -3);
        drop(rec);
        let mut rec2 = AdaptiveDb::recover(&dir, CrackerConfig::default(), 1).unwrap();
        assert_matches_oracle(&mut rec2, &oracle, &probes);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn checkpoint_sees_overlay_swap_that_preserves_length() {
    // Regression for a fingerprint collision: deleting a staged insert
    // cancels it, so cancel + one fresh staged insert leaves the overlay
    // *length* (and every monotone layout counter) unchanged between
    // checkpoints. A length-based fingerprint let the second checkpoint
    // carry the stale overlay payload forward while rotating the redo log
    // away — recovery then resurrected the cancelled insert and lost the
    // fresh one, silently. The content-hashing fingerprint must rewrite.
    let n = 2_000;
    let base = base_column(n);
    let dir = scratch("overlay-swap");
    let mut oracle = SortedOracle::new(&base);
    let mut db = db_with_table(&base, ConcurrencyMode::SingleLock);
    // Create the shared copy up front so staged updates forward to it.
    db.shared_cracker(TABLE, COLUMN).unwrap();
    db.attach_durability(&dir, 1).unwrap();

    // Stage insert X; checkpoint so X lands in the overlay payload.
    let x = n as u32 + 1;
    db.stage_insert(TABLE, COLUMN, x, 111).unwrap();
    oracle.insert(x, 111);
    db.checkpoint().unwrap();

    // Cancel X, stage fresh Z: overlay length is back to 1 and no layout
    // counter moved. Checkpoint again — the WAL records for both updates
    // rotate away, so the payload *must* be rewritten.
    let z = n as u32 + 2;
    assert!(db.stage_delete(TABLE, COLUMN, x).unwrap());
    assert!(oracle.delete(x));
    db.stage_insert(TABLE, COLUMN, z, 222).unwrap();
    oracle.insert(z, 222);
    db.checkpoint().unwrap();
    drop(db);

    let mut rec = AdaptiveDb::recover(&dir, CrackerConfig::default(), 1).unwrap();
    let mut mix = Mix(41);
    let mut probes: Vec<Window> = (0..8).map(|_| mix.window(n as i64, 400)).collect();
    // Windows that pin X absent and Z present explicitly.
    probes.push(Window::new(110, 112));
    probes.push(Window::new(221, 223));
    assert_matches_oracle(&mut rec, &oracle, &probes);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejected_update_leaves_no_poison_record_in_the_log() {
    // Regression: an update against an unknown table/column was appended
    // to the redo log *before* the target resolved, so one rejected
    // update durably logged a record that every future recovery replayed
    // — and failed on — permanently. Validation now precedes the append.
    let n = 1_000;
    let base = base_column(n);
    let dir = scratch("poison");
    let mut oracle = SortedOracle::new(&base);
    let mut db = db_with_table(&base, ConcurrencyMode::SingleLock);
    // Create the shared copy up front so staged updates forward to it.
    db.shared_cracker(TABLE, COLUMN).unwrap();
    db.attach_durability(&dir, 1).unwrap();
    db.stage_insert(TABLE, COLUMN, n as u32, 7).unwrap();
    oracle.insert(n as u32, 7);
    // Rejected updates: unknown table, unknown column. Each must error
    // without logging anything.
    assert!(db.stage_insert("no_such_table", COLUMN, 1, 1).is_err());
    assert!(db.stage_insert(TABLE, "no_such_column", 1, 1).is_err());
    assert!(db.stage_delete("no_such_table", COLUMN, 1).is_err());
    // Valid updates keep flowing after the rejections.
    db.stage_insert(TABLE, COLUMN, n as u32 + 1, 9).unwrap();
    oracle.insert(n as u32 + 1, 9);
    drop(db);
    // Recovery replays the log — a poison record would fail it here.
    let mut rec = AdaptiveDb::recover(&dir, CrackerConfig::default(), 1).unwrap();
    let mut mix = Mix(43);
    let probes: Vec<Window> = (0..8).map(|_| mix.window(n as i64, 300)).collect();
    assert_matches_oracle(&mut rec, &oracle, &probes);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_at_every_checkpoint_boundary_recovers_to_last_durable_state() {
    // Arm the crash countdown at every durable-write boundary of a
    // checkpoint in turn. Whether the checkpoint died or committed, the
    // recovered database must be oracle-identical: every staged update
    // was redo-logged (group commit = 1) before it applied, so no crash
    // point may lose state or leave it silently wrong.
    let n = 4_000;
    let base = base_column(n);
    let mut committed = 0;
    let mut died = 0;
    for k in 0..10u32 {
        let dir = scratch(&format!("ckpt-crash-{k}"));
        let mut oracle = SortedOracle::new(&base);
        let mut db = db_with_table(&base, ConcurrencyMode::SingleLock);
        let mut mix = Mix(1000 + k as u64);
        db.attach_durability(&dir, 1).unwrap();
        for _ in 0..6 {
            let w = mix.window(n as i64, 300);
            db.select(
                &RangeQuery::new(TABLE, COLUMN, w.to_pred()),
                OutputMode::Count,
            )
            .unwrap();
            db.shared_cracker(TABLE, COLUMN).unwrap().count(w.to_pred());
        }
        for i in 0..20u32 {
            let oid = n as u32 + i;
            db.stage_insert(TABLE, COLUMN, oid, i as i64).unwrap();
            oracle.insert(oid, i as i64);
        }
        assert!(db.arm_checkpoint_crash(k));
        match db.checkpoint() {
            Ok(_) => committed += 1,
            Err(_) => died += 1,
        }
        drop(db);
        let mut rec = AdaptiveDb::recover(&dir, CrackerConfig::default(), 1).unwrap();
        let probes: Vec<Window> = (0..12).map(|_| mix.window(n as i64, 500)).collect();
        assert_matches_oracle(&mut rec, &oracle, &probes);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(died > 0, "the low countdowns must kill the checkpoint");
    assert!(committed > 0, "the high countdowns must let it commit");
}

#[test]
fn crash_mid_log_append_loses_only_the_torn_record() {
    let n = 2_000;
    let base = base_column(n);
    let dir = scratch("log-crash");
    let mut oracle = SortedOracle::new(&base);
    let mut db = db_with_table(&base, ConcurrencyMode::SingleLock);
    db.attach_durability(&dir, 1).unwrap();
    for i in 0..10u32 {
        let oid = n as u32 + i;
        db.stage_insert(TABLE, COLUMN, oid, 100 + i as i64).unwrap();
        oracle.insert(oid, 100 + i as i64);
    }
    // The next append dies mid-write: the record is torn, nothing applies
    // — in memory or in the oracle.
    assert!(db.arm_log_crash(0));
    assert!(db.stage_insert(TABLE, COLUMN, 9_999, 42).is_err());
    drop(db);
    let mut rec = AdaptiveDb::recover(&dir, CrackerConfig::default(), 1).unwrap();
    let mut mix = Mix(99);
    let probes: Vec<Window> = (0..10).map(|_| mix.window(n as i64, 300)).collect();
    assert_matches_oracle(&mut rec, &oracle, &probes);
    // The torn tail was repaired: post-recovery updates append cleanly
    // and survive another crash/recover cycle.
    rec.stage_insert(TABLE, COLUMN, 9_999, 42).unwrap();
    oracle.insert(9_999, 42);
    drop(rec);
    let mut rec2 = AdaptiveDb::recover(&dir, CrackerConfig::default(), 1).unwrap();
    assert_matches_oracle(&mut rec2, &oracle, &probes);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_is_warm_not_cold() {
    // The whole point of checkpointing the piece map: a recovered store
    // repeats a pre-crash query at cracked cost, not full-scan cost. Costs
    // are pinned via touched-tuple counters, not wall clock.
    let n = 50_000;
    let base = base_column(n);
    let dir = scratch("warm");
    let mut db = db_with_table(&base, ConcurrencyMode::SingleLock);
    let hot = Window::new(20_000, 20_600);
    let mut mix = Mix(5);
    for _ in 0..30 {
        let w = mix.window(n as i64, 800);
        db.select(
            &RangeQuery::new(TABLE, COLUMN, w.to_pred()),
            OutputMode::Count,
        )
        .unwrap();
    }
    db.select(
        &RangeQuery::new(TABLE, COLUMN, hot.to_pred()),
        OutputMode::Count,
    )
    .unwrap();
    let pieces_before = {
        let shared = db.shared_cracker(TABLE, COLUMN).unwrap();
        shared.count(hot.to_pred());
        shared.piece_count()
    };
    db.attach_durability(&dir, 1).unwrap();
    drop(db);

    let mut rec = AdaptiveDb::recover(&dir, CrackerConfig::default(), 1).unwrap();
    assert_eq!(
        rec.shared_cracker(TABLE, COLUMN).unwrap().piece_count(),
        pieces_before,
        "every crack boundary must survive recovery"
    );
    // Warm: repeating the hot query on the recovered plain cracker.
    let before = rec.total_crack_stats().tuples_touched;
    rec.select(
        &RangeQuery::new(TABLE, COLUMN, hot.to_pred()),
        OutputMode::Count,
    )
    .unwrap();
    let warm_cost = rec.total_crack_stats().tuples_touched - before;

    // Cold: the same query on a fresh, never-cracked db.
    let mut cold = db_with_table(&base, ConcurrencyMode::SingleLock);
    let before = cold.total_crack_stats().tuples_touched;
    cold.select(
        &RangeQuery::new(TABLE, COLUMN, hot.to_pred()),
        OutputMode::Count,
    )
    .unwrap();
    let cold_cost = cold.total_crack_stats().tuples_touched - before;

    assert!(
        warm_cost * 10 < cold_cost,
        "recovered query touched {warm_cost} tuples; cold scan touched {cold_cost} — recovery came back cold"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenario_replay_survives_a_mid_stream_restart() {
    // Replay a seeded update-heavy scenario through the durable runner,
    // checkpoint + restart halfway, and differentially check every
    // post-restart select against the oracle.
    for (mode, tag) in [
        (ConcurrencyMode::SingleLock, "single"),
        (ConcurrencyMode::Sharded { shards: 4 }, "sharded"),
    ] {
        let dir = scratch(&format!("scenario-{tag}"));
        let mut scenario = UpdateHeavy::new(Mqs::paper_default(6_000, 40, 0.05), 2.0, 3, 23);
        let mut oracle = SortedOracle::new(scenario.base());
        let mut runner =
            DbScenarioRunner::with_durability(&scenario, mode, &dir, 1).expect("attach");
        let ops: Vec<Op> = (&mut scenario).collect();
        let halfway = ops.len() / 2;
        let mut selects_checked = 0;
        for (i, op) in ops.into_iter().enumerate() {
            if i == halfway {
                runner.checkpoint().expect("mid-stream checkpoint");
                runner.restart().expect("recover from checkpoint");
            }
            match op {
                Op::Select(w) => {
                    let mut got = runner.run_select(w);
                    got.sort_unstable();
                    assert_eq!(
                        got,
                        oracle.select_oids(w),
                        "{tag}: post-restart select [{}, {}) diverged",
                        w.lo,
                        w.hi
                    );
                    selects_checked += 1;
                }
                Op::Insert { oid, value } => {
                    runner.run_insert(oid, value);
                    oracle.insert(oid, value);
                }
                Op::Delete { oid } => {
                    assert_eq!(runner.run_delete(oid), oracle.delete(oid), "{tag}: delete");
                }
            }
        }
        assert!(selects_checked >= 20, "scenario must actually select");
        // One more unannounced restart at stream end still agrees.
        runner.restart().expect("second recovery");
        let w = Window::new(1_000, 1_500);
        let mut got = runner.run_select(w);
        got.sort_unstable();
        assert_eq!(got, oracle.select_oids(w));
        let mut db = runner.into_db();
        assert_eq!(db.catalog().table(SCENARIO_TABLE).unwrap().len(), 6_000);
        assert!(db
            .shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)
            .unwrap()
            .validate()
            .is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
