//! Integration: the two "open issue" extensions — updates during a query
//! sequence and piece-budget fusion — running together against a live
//! workload, with a shadow model as the oracle.

use dbcracker::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use workload::strolling::{strolling_sequence, StrollMode};

#[test]
fn updates_during_a_strolling_sequence_stay_correct() {
    let n = 10_000usize;
    let t = Tapestry::generate(n, 1, 0xF00D);
    let mut rng = SmallRng::seed_from_u64(0x11);
    let cfg = CrackerConfig::new().with_merge_threshold(500);
    let mut col = CrackerColumn::with_config(t.column(0).to_vec(), cfg);
    let mut model: BTreeMap<u32, i64> = (0..n as u32)
        .map(|i| (i, t.column(0)[i as usize]))
        .collect();
    let mut next_oid = n as u32;

    for w in strolling_sequence(n, 60, 0.05, Contraction::Linear, StrollMode::Converge, 0x22) {
        // Interleave a burst of updates.
        for _ in 0..50 {
            let v = rng.gen_range(1..=n as i64);
            col.insert(next_oid, v);
            model.insert(next_oid, v);
            next_oid += 1;
        }
        for _ in 0..20 {
            let keys: Vec<u32> = model.keys().copied().collect();
            let victim = keys[rng.gen_range(0..keys.len())];
            assert!(col.delete(victim));
            model.remove(&victim);
        }
        // Query both the column and the shadow model.
        let got = col.count(w.to_pred());
        let want = model.values().filter(|&&v| v >= w.lo && v < w.hi).count();
        assert_eq!(got, want, "window {w:?}");
    }
    col.merge_pending();
    col.validate().unwrap();
    assert_eq!(col.len(), model.len());
    assert!(col.stats().merges > 0, "threshold merges must have fired");
}

#[test]
fn fusion_budget_holds_under_updates_and_queries() {
    let n = 5_000usize;
    let t = Tapestry::generate(n, 1, 0xFA57);
    for policy in [
        FusionPolicy::SmallestPair,
        FusionPolicy::LeastRecentlyUsed,
        FusionPolicy::MostBalanced,
    ] {
        let cfg = CrackerConfig::new()
            .with_max_pieces(8)
            .with_fusion(policy)
            .with_merge_threshold(300);
        let mut col = CrackerColumn::with_config(t.column(0).to_vec(), cfg);
        for (i, w) in strolling_sequence(n, 50, 0.1, Contraction::Linear, StrollMode::Converge, 9)
            .iter()
            .enumerate()
        {
            col.insert(n as u32 + i as u32, (i as i64 * 37) % n as i64 + 1);
            let sel = col.select(w.to_pred());
            assert!(sel.count() > 0 || w.width() == 0);
            assert!(
                col.piece_count() <= 8,
                "{policy:?}: budget violated at step {i}"
            );
        }
        col.merge_pending();
        col.validate().unwrap();
    }
}

#[test]
fn heavy_churn_then_full_drain() {
    // Insert and delete everything; the column must end empty and valid.
    let mut col = CrackerColumn::new((0..1000).collect::<Vec<i64>>());
    col.select(RangePred::between(100, 300));
    for oid in 0..1000u32 {
        assert!(col.delete(oid));
    }
    col.merge_pending();
    assert_eq!(col.len(), 0);
    assert_eq!(col.count(RangePred::between(0, 1000)), 0);
    col.validate().unwrap();
    // And it can be refilled.
    for (i, v) in (0..500i64).enumerate() {
        col.insert(2000 + i as u32, v);
    }
    col.merge_pending();
    assert_eq!(col.len(), 500);
    assert_eq!(col.count(RangePred::lt(250)), 250);
}
