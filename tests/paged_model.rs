//! Model-based testing of the paged substrate: an arbitrary interleaving
//! of column operations through a (often pathologically small) buffer
//! pool must behave exactly like a plain `Vec<i64>`.

use dbcracker::storage::{BufferPool, MemDisk, PagedColumn};
use proptest::prelude::*;

/// One operation against the column.
#[derive(Debug, Clone)]
enum Op {
    Get(usize),
    Set(usize, i64),
    Swap(usize, usize),
    FoldSum(usize, usize),
    CountBelow(i64),
    Flush,
    /// Drop the pool and rebuild it over the same disk (everything must
    /// have been made durable by the preceding Flush we insert).
    Reopen,
}

/// Raw indices are drawn wide and re-scaled modulo the actual column
/// length inside the test.
fn op_strategy() -> impl Strategy<Value = Op> {
    const W: usize = 1 << 16;
    prop_oneof![
        (0..W).prop_map(Op::Get),
        (0..W, -100i64..100).prop_map(|(i, v)| Op::Set(i, v)),
        (0..W, 0..W).prop_map(|(a, b)| Op::Swap(a, b)),
        (0..W, 0..W).prop_map(|(a, b)| Op::FoldSum(a.min(b), a.max(b))),
        (-120i64..120).prop_map(Op::CountBelow),
        Just(Op::Flush),
        Just(Op::Reopen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn paged_column_behaves_like_a_vec(
        init in proptest::collection::vec(-100i64..100, 1..200),
        ops in proptest::collection::vec(op_strategy(), 1..60),
        frames in 1usize..6,
    ) {
        let n = init.len();
        // Re-scale op indices into the real column length.
        let scale = |i: usize| i % n;
        let mut model = init.clone();
        // 64-byte pages (7 values) so every few positions is a boundary.
        let mut pool = BufferPool::new(MemDisk::with_page_size(64), frames);
        let col = PagedColumn::create(&mut pool, &init).unwrap();

        for op in &ops {
            match *op {
                Op::Get(i) => {
                    let i = scale(i);
                    prop_assert_eq!(col.get(&mut pool, i).unwrap(), model[i]);
                }
                Op::Set(i, v) => {
                    let i = scale(i);
                    col.set(&mut pool, i, v).unwrap();
                    model[i] = v;
                }
                Op::Swap(a, b) => {
                    let (a, b) = (scale(a), scale(b));
                    col.swap(&mut pool, a, b).unwrap();
                    model.swap(a, b);
                }
                Op::FoldSum(lo, hi) => {
                    let (lo, hi) = (scale(lo), scale(hi).max(scale(lo)));
                    let got = col
                        .fold_range(&mut pool, lo, hi, 0i64, |a, v| a + v)
                        .unwrap();
                    let want: i64 = model[lo..hi].iter().sum();
                    prop_assert_eq!(got, want);
                }
                Op::CountBelow(v) => {
                    let got = col.count_matching(&mut pool, |x| x < v).unwrap();
                    let want = model.iter().filter(|&&x| x < v).count();
                    prop_assert_eq!(got, want);
                }
                Op::Flush => pool.flush().unwrap(),
                Op::Reopen => {
                    // Durability boundary: flush, tear the pool down, and
                    // rebuild over the surviving store.
                    pool.flush().unwrap();
                    let disk = std::mem::replace(
                        pool.store_mut(),
                        MemDisk::with_page_size(64),
                    );
                    pool = BufferPool::new(disk, frames);
                }
            }
        }
        // Final state agrees wholesale.
        prop_assert_eq!(col.to_vec(&mut pool).unwrap(), model);
    }
}

#[test]
fn float_columns_crack_sideways_and_stochastically() {
    // The extension modules are generic over CrackValue; exercise them
    // with the float wrapper the sensor workloads use.
    use dbcracker::cracker_core::sideways::CrackerMap;
    use dbcracker::cracker_core::stochastic::{StochasticCracker, StochasticPolicy};
    use dbcracker::cracker_core::value_trait::OrdF64;
    use dbcracker::prelude::RangePred;

    let readings: Vec<OrdF64> = (0..2_000)
        .map(|i| OrdF64::new(((i * 7919) % 2_000) as f64 / 10.0))
        .collect();

    let mut st = StochasticCracker::new(readings.clone(), StochasticPolicy::DD1R, 4);
    let pred = RangePred::between(OrdF64::new(25.0), OrdF64::new(75.0));
    let want = readings.iter().filter(|&&v| pred.matches(v)).count();
    assert_eq!(st.count(pred), want);
    st.column().validate().unwrap();

    let payload: Vec<OrdF64> = readings.iter().map(|v| OrdF64::new(v.0 * 2.0)).collect();
    let mut map = CrackerMap::new(readings.clone(), payload);
    let r = map.select(pred);
    assert_eq!(r.len(), want);
    for &v in map.project(r) {
        assert!((50.0..=150.0).contains(&v.0), "payload = 2x head in range");
    }
    map.validate().unwrap();
}
