//! Differential oracle for the block-at-a-time operator pipeline: every
//! plan shape answered by the vectorized tree must be indistinguishable
//! from the tuple-at-a-time reference — identical rows for selections,
//! projections, group-bys, and join chains up to 128 joins; identical
//! Ξ-tap byproduct (kept *and* reject pieces); identical crack state
//! left behind across the plain, single-lock, and sharded column
//! flavours; and a cancelled morsel pool must surface no partial
//! answer. Random operator trees are fuzzed through both pipelines.

use dbcracker::cracker_core::{ConcurrencyMode, RangePred};
use dbcracker::engine::chain::{permutation_chain, run_chain_with, ChainStrategy};
use dbcracker::engine::exec::join::HashJoinOp;
use dbcracker::engine::exec::morsel::morsel_select_oids_guarded;
use dbcracker::engine::exec::ops::{FilterOp, ProjectOp, RowsOp, XiTapOp};
use dbcracker::engine::exec::planner::{execute_plan_count_with, execute_plan_with};
use dbcracker::engine::exec::vector::{
    run_vector_to_vec, VecFilter, VecHashJoin, VecProject, VecRowsOp, VecXiTap, VectorOperator,
};
use dbcracker::engine::exec::{run_to_vec, ExecMode, Operator, Row};
use dbcracker::engine::plan::Plan;
use dbcracker::engine::query::{AggFunc, JoinStep, QueryTerm};
use dbcracker::engine::{
    AdaptiveDb, DbCatalog, EngineError, Governor, OutputMode, RangeQuery, Table,
};
use dbcracker::storage::Atom;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

const MODES: [ExecMode; 2] = [ExecMode::Vector, ExecMode::Tuple];

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
    rows
}

fn catalog() -> DbCatalog {
    let mut c = DbCatalog::new();
    c.register(
        Table::from_int_columns(
            "r",
            vec![
                ("k", (0..200).map(|i| i % 10).collect()),
                ("a", (0..200).rev().collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(
        Table::from_int_columns(
            "s",
            vec![
                ("k", (0..40).map(|i| i % 5).collect()),
                ("b", (0..40).map(|i| i * 3).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c
}

/// Execute `plan` under both pipelines and assert sorted-row equality
/// (and count equality through the non-materializing entry point).
fn assert_modes_agree(plan: &Plan, cat: &DbCatalog) -> Vec<Row> {
    let v = sorted(execute_plan_with(plan, cat, ExecMode::Vector).unwrap());
    let t = sorted(execute_plan_with(plan, cat, ExecMode::Tuple).unwrap());
    assert_eq!(v, t, "vector and tuple pipelines must agree on {plan:?}");
    for mode in MODES {
        assert_eq!(
            execute_plan_count_with(plan, cat, mode).unwrap(),
            v.len(),
            "{mode:?} count"
        );
    }
    v
}

#[test]
fn selections_projections_and_groups_agree() {
    let cat = catalog();
    let scan = || Box::new(Plan::Scan { table: "r".into() });
    // Bare scan.
    assert_eq!(assert_modes_agree(&scan(), &cat).len(), 200);
    // Selection bands, including empty and full.
    for pred in [
        RangePred::between(50, 120),
        RangePred::lt(0),
        RangePred::ge(0),
        RangePred::eq(7),
    ] {
        let plan = Plan::Select {
            query: RangeQuery::new("r", "a", pred),
            input: scan(),
        };
        assert_modes_agree(&plan, &cat);
    }
    // Projection (reorder + duplicate-free narrow).
    let plan = Plan::Project {
        attrs: vec!["a".into(), "k".into()],
        input: Box::new(Plan::Select {
            query: RangeQuery::new("r", "a", RangePred::between(10, 60)),
            input: scan(),
        }),
    };
    assert_modes_agree(&plan, &cat);
    // Group-bys over every aggregate, keyed on an Oid lane too.
    for (agg, agg_attr) in [
        (AggFunc::Count, None),
        (AggFunc::Sum, Some("a".to_string())),
        (AggFunc::Min, Some("a".to_string())),
        (AggFunc::Max, Some("a".to_string())),
    ] {
        let plan = Plan::GroupBy {
            attr: "k".into(),
            agg,
            agg_attr: agg_attr.clone(),
            input: scan(),
        };
        let rows = assert_modes_agree(&plan, &cat);
        assert_eq!(rows.len(), 10, "{agg:?} groups");
    }
    // Group keyed on the surrogate `_oid` column (Oid lane path).
    let plan = Plan::GroupBy {
        attr: "_oid".into(),
        agg: AggFunc::Count,
        agg_attr: None,
        input: Box::new(Plan::Select {
            query: RangeQuery::new("r", "a", RangePred::lt(5)),
            input: scan(),
        }),
    };
    assert_eq!(assert_modes_agree(&plan, &cat).len(), 5);
}

#[test]
fn planner_join_terms_agree() {
    let cat = catalog();
    let term = QueryTerm {
        projection: vec![],
        group_by: None,
        selections: vec![RangeQuery::new("r", "a", RangePred::lt(120))],
        joins: vec![JoinStep {
            left: "r".into(),
            left_attr: "k".into(),
            right: "s".into(),
            right_attr: "k".into(),
        }],
        tables: vec!["r".into(), "s".into()],
    };
    let plan = Plan::from_term(&term).push_down_selections();
    let rows = assert_modes_agree(&plan, &cat);
    assert!(!rows.is_empty());
}

/// Build a `k`-relation join chain (each relation `(a, b)` with `a` the
/// identity and `b` a permutation) as a left-deep operator tree in both
/// pipelines and compare. Exercises chain depths the paper's Figure 9
/// drives: 2, 16, and 128 joins.
#[test]
fn join_chains_of_2_16_and_128_agree() {
    let n = 64i64;
    let perm: Vec<i64> = (0..n).map(|i| (i * 11 + 5) % n).collect();
    let rel_rows: Vec<Row> = (0..n)
        .map(|i| vec![Atom::Int(i), Atom::Int(perm[i as usize])])
        .collect();
    for k in [2usize, 16, 128] {
        let mut t: Box<dyn Operator> = Box::new(RowsOp::new(rel_rows.clone(), 2));
        let mut v: Box<dyn VectorOperator> = Box::new(VecRowsOp::new(rel_rows.clone(), 2));
        let mut arity = 2;
        for _ in 1..k {
            // Join the running tree's trailing `b` column to the next
            // copy's leading `a` column.
            t = Box::new(HashJoinOp::new(
                t,
                arity - 1,
                Box::new(RowsOp::new(rel_rows.clone(), 2)),
                0,
            ));
            v = Box::new(VecHashJoin::new(
                v,
                arity - 1,
                Box::new(VecRowsOp::new(rel_rows.clone(), 2)),
                0,
            ));
            arity += 2;
        }
        let tuple = sorted(run_to_vec(t));
        let vector = sorted(run_vector_to_vec(v));
        assert_eq!(tuple.len(), n as usize, "permutation joins are 1:1");
        assert_eq!(vector, tuple, "chain of {k} joins");
        // The chain evaluator agrees on cardinality in both modes too.
        let rels = permutation_chain(&perm, k);
        for mode in MODES {
            let report = run_chain_with(&rels, ChainStrategy::HashChain, mode).unwrap();
            assert_eq!(report.rows, n as usize, "{mode:?} chain of {k}");
        }
    }
}

#[test]
fn xi_tap_byproduct_is_identical_in_both_pipelines() {
    let rows: Vec<Row> = (0..2_500i64)
        .map(|i| vec![Atom::Int((i * 37) % 1_000), Atom::Int(i)])
        .collect();
    let pred = RangePred::between(200, 599);
    let mut tuple_tap = XiTapOp::new(Box::new(RowsOp::new(rows.clone(), 2)), move |row: &Row| {
        row[0].as_int().is_some_and(|v| pred.matches(v))
    });
    let mut tuple_kept = Vec::new();
    while let Some(row) = tuple_tap.next() {
        tuple_kept.push(row);
    }
    let tuple_rejects = tuple_tap.take_rejects();

    let mut vec_tap = VecXiTap::new(Box::new(VecRowsOp::new(rows.clone(), 2)), 0, pred);
    let mut vec_kept = Vec::new();
    let mut block = dbcracker::engine::exec::vector::RowBlock::new();
    while vec_tap.next_block(&mut block) > 0 {
        block.append_rows_to(&mut vec_kept);
    }
    let vec_rejects = vec_tap.take_rejects();

    // Both pipelines preserve input order, so equality is exact — no
    // sorting. Kept + rejects re-assemble the input ("taken together,
    // the pieces can be used to replace the original tables", §3.4.1).
    assert_eq!(vec_kept, tuple_kept);
    assert_eq!(vec_rejects, tuple_rejects);
    assert_eq!(vec_kept.len() + vec_rejects.len(), rows.len());
}

/// The pipeline choice must not perturb crack state: the same query
/// stream through the plain, single-lock, and sharded flavours leaves
/// identical piece counts and crack tallies whichever pipeline consumed
/// the answers.
#[test]
fn pipeline_choice_leaves_identical_crack_state_across_flavours() {
    fn run(exec: ExecMode, mode: ConcurrencyMode) -> (Vec<Vec<Row>>, usize, usize) {
        let vals: Vec<i64> = (0..30_000).map(|i| (i * 7919) % 30_000).collect();
        let mut db = AdaptiveDb::new().with_concurrency(mode);
        db.register(Table::from_int_columns("t", vec![("v", vals)]).unwrap())
            .unwrap();
        let mut outs = Vec::new();
        for i in 0..24i64 {
            let lo = (i * 997) % 25_000;
            let pred = RangePred::between(lo, lo + 1_500);
            // Crack both the plain and the latched copies.
            db.select(&RangeQuery::new("t", "v", pred), OutputMode::Count)
                .unwrap();
            db.shared_cracker("t", "v").unwrap().count(pred);
            // Answer rows through the pipeline under test.
            let plan = Plan::Select {
                query: RangeQuery::new("t", "v", pred),
                input: Box::new(Plan::Scan { table: "t".into() }),
            };
            outs.push(sorted(
                execute_plan_with(&plan, db.catalog(), exec).unwrap(),
            ));
        }
        let pieces = db.shared_cracker("t", "v").unwrap().piece_count();
        (outs, pieces, db.total_crack_stats().cracks)
    }
    for mode in [
        ConcurrencyMode::SingleLock,
        ConcurrencyMode::Sharded { shards: 8 },
    ] {
        let (rows_v, pieces_v, cracks_v) = run(ExecMode::Vector, mode);
        let (rows_t, pieces_t, cracks_t) = run(ExecMode::Tuple, mode);
        assert_eq!(rows_v, rows_t, "{mode:?} answers");
        assert_eq!(pieces_v, pieces_t, "{mode:?} piece counts");
        assert_eq!(cracks_v, cracks_t, "{mode:?} crack tallies");
    }
}

/// Morsel-pool extension of the cancellation oracle: a guard tripping at
/// any poll leaves no partial answer (the run reports `None`), the
/// column stays structurally valid, and a full re-run still answers
/// exactly like the sequential walk. The governed engine surface turns
/// the trip into its typed error.
#[test]
fn morsel_cancellation_yields_no_partial_answers() {
    let vals: Vec<i64> = (0..40_000).map(|i| (i * 131) % 40_000).collect();
    let mut db = AdaptiveDb::new().with_concurrency(ConcurrencyMode::Sharded { shards: 8 });
    db.register(Table::from_int_columns("t", vec![("v", vals)]).unwrap())
        .unwrap();
    let pred = RangePred::between(100, 35_000);
    {
        let col = db.shared_cracker("t", "v").unwrap();
        let sharded = col.as_sharded().expect("built sharded");
        for cancel_at in 0..14u64 {
            let polls = AtomicU64::new(0);
            let res = morsel_select_oids_guarded(sharded, pred, 8, None, &|| {
                polls.fetch_add(1, Ordering::Relaxed) < cancel_at
            });
            if let Some(oids) = res {
                assert_eq!(oids, sharded.select_oids(pred), "complete or nothing");
            }
            col.validate()
                .expect("piece maps intact after cancellation");
        }
        let full = morsel_select_oids_guarded(sharded, pred, 8, None, &|| true)
            .expect("untripped guard answers");
        assert_eq!(full, sharded.select_oids(pred));
    }
    // The governed engine surface: typed error, no partial answer.
    let g = Governor::unbounded();
    g.token().cancel();
    assert!(matches!(
        db.select_morsel("t", "v", pred, 8, &g, 1),
        Err(EngineError::Cancelled)
    ));
    // And a healthy governor answers like the sequential walk.
    let seq = db.shared_cracker("t", "v").unwrap().select_oids(pred);
    let par = db
        .select_morsel("t", "v", pred, 8, &Governor::unbounded(), 1)
        .unwrap();
    assert_eq!(par, seq);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random filter/project stacks over random rows: both pipelines
    /// must produce byte-identical output (order included — every
    /// operator is order-preserving).
    #[test]
    fn random_operator_trees_agree(
        rows in proptest::collection::vec(proptest::collection::vec(-50i64..50, 3..4), 0..120),
        stages in proptest::collection::vec(
            (0u8..2, 0usize..3, -60i64..60, 0i64..40, 1usize..3),
            0..5,
        ),
    ) {
        let arity = 3usize;
        let base: Vec<Row> = rows
            .iter()
            .map(|r| r.iter().map(|&v| Atom::Int(v)).collect())
            .collect();
        let mut t: Box<dyn Operator> = Box::new(RowsOp::new(base.clone(), arity));
        let mut v: Box<dyn VectorOperator> = Box::new(VecRowsOp::new(base, arity));
        for &(kind, col, lo, width, rot) in &stages {
            if kind == 0 {
                let pred = RangePred::between(lo, lo + width);
                t = Box::new(FilterOp::new(t, move |row: &Row| {
                    row[col].as_int().is_some_and(|x| pred.matches(x))
                }));
                v = Box::new(VecFilter::new(v, col, pred));
            } else {
                // A rotation keeps the arity at 3 so later stage columns
                // stay valid whatever order the stages drew.
                let indices: Vec<usize> = (0..arity).map(|i| (i + rot) % arity).collect();
                t = Box::new(ProjectOp::new(t, indices.clone()));
                v = Box::new(VecProject::new(v, indices));
            }
        }
        let tuple = run_to_vec(t);
        let vector = run_vector_to_vec(v);
        prop_assert_eq!(tuple, vector);
    }
}
