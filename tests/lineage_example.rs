//! Integration: the paper's §3.2 / Figure 5 example — three SQL queries,
//! real data, all four layers (storage tables, cracker operators, lineage
//! administration) cooperating, with the loss-less property verified.

use dbcracker::cracker_core::join::{join_matched, wedge_crack, PairColumn};
use dbcracker::cracker_core::lineage::{CrackOp, LineageGraph};
use dbcracker::prelude::*;

struct Session {
    r_k: Vec<i64>,
    r_a: Vec<i64>,
    s_k: Vec<i64>,
    s_b: Vec<i64>,
}

fn session() -> Session {
    Session {
        r_k: (0..100).map(|i| i % 50).collect(),
        r_a: (0..100).map(|i| (i * 13 + 5) % 100).collect(),
        s_k: (0..80).map(|i| i % 40).collect(),
        s_b: (0..80).map(|i| (i * 7) % 60).collect(),
    }
}

#[test]
fn figure5_session_end_to_end() {
    let data = session();
    let mut lineage = LineageGraph::new();
    let r_root = lineage.add_root("R");
    let s_root = lineage.add_root("S");

    // Q1: select * from R where R.a < 10.
    let mut r_col = CrackerColumn::new(data.r_a.clone());
    let q1 = r_col.select(RangePred::lt(10));
    let expected_q1 = data.r_a.iter().filter(|&&a| a < 10).count();
    assert_eq!(q1.count(), expected_q1);
    let out = lineage.apply(CrackOp::Xi("R.a<10".into()), &[r_root], &[2]);
    let r2 = out[0][1];

    // Q2: select * from R, S where R.k = S.k and R.a < 5.
    let q2 = r_col.select(RangePred::lt(5));
    let out = lineage.apply(CrackOp::Xi("R.a<5".into()), &[r2], &[2]);
    let r4 = out[0][1];
    let qualifying = r_col.selection_oids(&q2);
    let mut r_join = PairColumn::from_pairs(
        qualifying.iter().map(|&o| data.r_k[o as usize]).collect(),
        qualifying.clone(),
    );
    let mut s_join = PairColumn::new(data.s_k.clone());
    let (rn, sn) = (r_join.len(), s_join.len());
    let wedge = wedge_crack(&mut r_join, &mut s_join, 0..rn, 0..sn);
    let pairs = join_matched(&r_join, &s_join, &wedge);
    // Oracle: nested-loop join of the filtered R against S.
    let mut expected_pairs = 0;
    for (i, &a) in data.r_a.iter().enumerate() {
        if a < 5 {
            expected_pairs += data.s_k.iter().filter(|&&k| k == data.r_k[i]).count();
        }
    }
    assert_eq!(pairs.len(), expected_pairs);
    let out = lineage.apply(CrackOp::Wedge("R.k=S.k".into()), &[r4, s_root], &[2, 2]);
    let (s3, s4) = (out[1][0], out[1][1]);

    // Q3: select * from S where S.b > 25 — inspects both S pieces.
    let mut s_col = CrackerColumn::new(data.s_b.clone());
    let q3 = s_col.select(RangePred::gt(25));
    assert_eq!(q3.count(), data.s_b.iter().filter(|&&b| b > 25).count());
    lineage.apply(CrackOp::Xi("S.b>25".into()), &[s3, s4], &[2, 2]);

    // The reconstruction sets of Figure 5 (same DAG shape; see the module
    // docs of cracker_core::lineage for the labelling convention).
    let r_leaves: Vec<&str> = lineage
        .reconstruction_set("R")
        .into_iter()
        .map(|p| lineage.label(p))
        .collect();
    assert_eq!(r_leaves, vec!["R[1]", "R[3]", "R[5]", "R[6]"]);
    assert_eq!(lineage.reconstruction_set("S").len(), 4);

    // Loss-less: the cracked stores still hold every original tuple.
    let mut r_now: Vec<i64> = r_col.values().to_vec();
    r_now.sort_unstable();
    let mut r_orig = data.r_a.clone();
    r_orig.sort_unstable();
    assert_eq!(r_now, r_orig);

    let mut s_all: Vec<i64> = s_join.values().to_vec();
    s_all.sort_unstable();
    let mut s_orig = data.s_k.clone();
    s_orig.sort_unstable();
    assert_eq!(s_all, s_orig, "wedge pieces union to original S.k");
}

#[test]
fn figure6_alternate_order_same_answers() {
    // Interchanging the Ξ and ^ of query 2 (Figure 6) changes the piece
    // graph but not any answer.
    let data = session();

    // Order A: filter then wedge (as in figure5 test).
    let mut r_col_a = CrackerColumn::new(data.r_a.clone());
    r_col_a.select(RangePred::lt(10));
    let q2a = r_col_a.select(RangePred::lt(5));
    let oids_a = {
        let mut v = r_col_a.selection_oids(&q2a);
        v.sort_unstable();
        v
    };

    // Order B: wedge R against S first, then filter.
    let mut r_join = PairColumn::new(data.r_k.clone());
    let mut s_join = PairColumn::new(data.s_k.clone());
    let (rn, sn) = (r_join.len(), s_join.len());
    wedge_crack(&mut r_join, &mut s_join, 0..rn, 0..sn);
    let mut r_col_b = CrackerColumn::new(data.r_a.clone());
    let q2b = r_col_b.select(RangePred::lt(5));
    let oids_b = {
        let mut v = r_col_b.selection_oids(&q2b);
        v.sort_unstable();
        v
    };
    assert_eq!(oids_a, oids_b, "operator order must not change answers");
}
