//! Chaos suite: deterministic I/O fault injection at every named fault
//! point, governor disturbances (cancel / deadline / shed / panic), and
//! seeded whole-schedule chaos replays — all pinned to the sorted
//! differential oracle. The contract under test (see `ROBUSTNESS.md`):
//! every armed fault either retries to success or surfaces a *typed*
//! error, the column always validates afterwards, and no disturbed or
//! failed operation ever changes a later observable answer.

use dbcracker::engine::scenario::{SCENARIO_COLUMN, SCENARIO_TABLE};
use dbcracker::engine::{AdaptiveDb, EngineError, OutputMode, RangeQuery, Table};
use dbcracker::prelude::*;
use dbcracker::storage::fault::{self, FaultKind};
use std::path::PathBuf;

const TABLE: &str = "t";
const COLUMN: &str = "v";

/// Fresh scratch directory for one test case (removed up front so reruns
/// of a dirty tree start clean).
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dbcracker-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A deterministic pseudo-random stream (splitmix64) for window
/// placement — no RNG crate needed.
struct Mix(u64);
impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn window(&mut self, domain: i64, width: i64) -> Window {
        let lo = (self.next() % (domain - width).max(1) as u64) as i64;
        Window::new(lo, lo + width)
    }
}

fn base_column(n: usize) -> Vec<i64> {
    (0..n as i64).map(|i| (i * 37) % n as i64).collect()
}

fn db_with_table(base: &[i64], mode: ConcurrencyMode) -> AdaptiveDb {
    let mut db = AdaptiveDb::new().with_concurrency(mode);
    db.register(Table::from_int_columns(TABLE, vec![(COLUMN, base.to_vec())]).unwrap())
        .unwrap();
    db
}

/// Both query paths must be oracle-identical on every probe window and
/// the shared piece map must pass full validation.
fn assert_matches_oracle(db: &mut AdaptiveDb, oracle: &SortedOracle, windows: &[Window]) {
    for &w in windows {
        let want = oracle.select_oids(w);
        let (mut plain, _) = db
            .select(
                &RangeQuery::new(TABLE, COLUMN, w.to_pred()),
                OutputMode::Stream,
            )
            .unwrap();
        plain.sort_unstable();
        assert_eq!(plain, want, "plain path diverged on [{}, {})", w.lo, w.hi);
        let mut latched = db
            .shared_cracker(TABLE, COLUMN)
            .unwrap()
            .select_oids(w.to_pred());
        latched.sort_unstable();
        assert_eq!(
            latched, want,
            "shared path diverged on [{}, {})",
            w.lo, w.hi
        );
    }
    db.shared_cracker(TABLE, COLUMN)
        .unwrap()
        .validate()
        .expect("piece map must validate");
}

/// A failed operation must surface through the error taxonomy: transient,
/// corruption, overload, or (for hard faults like a full disk and for a
/// poisoned log) a typed storage error — never a panic, never a stringly
/// untyped escape.
fn assert_typed(context: &str, e: &EngineError) {
    assert!(
        e.is_transient()
            || e.is_corruption()
            || e.is_overload()
            || matches!(e, EngineError::Storage(_)),
        "{context}: untyped error {e:?}"
    );
}

/// Arm every named fault point with every fault kind in turn, drive
/// updates and a checkpoint through the armed injector, and require:
/// the operation either retried to success or failed typed; afterwards
/// the database (and a recovery of it) answers oracle-identically.
#[test]
fn every_fault_point_retries_to_success_or_surfaces_typed_errors() {
    let n = 1_500;
    let base = base_column(n);
    let kinds = [
        FaultKind::Eio,
        FaultKind::ShortWrite,
        FaultKind::FsyncFail,
        FaultKind::Enospc,
    ];
    let mut fault_failures = 0usize;
    let mut fault_retried_away = 0usize;
    for (pi, &point) in fault::ALL_POINTS.iter().enumerate() {
        for (ki, &kind) in kinds.iter().enumerate() {
            let tag = format!("point{pi}-kind{ki}");
            let dir = scratch(&tag);
            let mut oracle = SortedOracle::new(&base);
            let mut db = db_with_table(&base, ConcurrencyMode::SingleLock);
            let mut mix = Mix(100 + (pi * 7 + ki) as u64);
            // Crack both copies so checkpoints carry real piece maps.
            for _ in 0..4 {
                let w = mix.window(n as i64, 200);
                db.select(
                    &RangeQuery::new(TABLE, COLUMN, w.to_pred()),
                    OutputMode::Count,
                )
                .unwrap();
                db.shared_cracker(TABLE, COLUMN).unwrap().count(w.to_pred());
            }
            db.attach_durability(&dir, 1).unwrap();
            assert!(
                db.arm_io_fault(point, 0, kind, 1),
                "{tag}: {point} must be armable once durability is attached"
            );
            let mut hit_error = false;
            // Updates exercise the wal.* points; the checkpoint exercises
            // the ckpt.* points (and wal.open at log rotation).
            for i in 0..6u32 {
                let oid = n as u32 + i;
                match db.stage_insert(TABLE, COLUMN, oid, i as i64) {
                    Ok(()) => oracle.insert(oid, i as i64),
                    Err(e) => {
                        assert_typed(&format!("{tag}: insert under {point}"), &e);
                        hit_error = true;
                    }
                }
            }
            if let Err(e) = db.checkpoint() {
                assert_typed(&format!("{tag}: checkpoint under {point}"), &e);
                hit_error = true;
            }
            // The fault has fired (fires = 1) by now if its point was on
            // the path. A poisoned log heals at the next successful
            // rotation; give it two chances before requiring clean flow.
            let mut rounds = 0;
            while db.wal_poisoned().is_some() && rounds < 2 {
                let _ = db.checkpoint();
                rounds += 1;
            }
            assert!(
                db.wal_poisoned().is_none(),
                "{tag}: log stayed poisoned after two rotations"
            );
            match db.stage_insert(TABLE, COLUMN, n as u32 + 50, 7) {
                Ok(()) => oracle.insert(n as u32 + 50, 7),
                Err(e) => panic!("{tag}: update after degradation window: {e}"),
            }
            assert!(
                db.io_faults_injected() >= 1,
                "{tag}: the armed fault never fired — {point} is not on the durable path"
            );
            if hit_error {
                fault_failures += 1;
            } else {
                fault_retried_away += 1;
            }
            // The survived database answers right...
            let probes: Vec<Window> = (0..6).map(|_| mix.window(n as i64, 350)).collect();
            assert_matches_oracle(&mut db, &oracle, &probes);
            drop(db);
            // ...and so does a recovery from whatever it left on disk.
            let mut rec = AdaptiveDb::recover(&dir, CrackerConfig::default(), 1)
                .unwrap_or_else(|e| panic!("{tag}: recovery after {kind:?} at {point}: {e}"));
            assert_matches_oracle(&mut rec, &oracle, &probes);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    // Transient kinds (EIO, short write) retry away under the default
    // policy; hard kinds (ENOSPC) and fsync failures must surface. Both
    // classes must appear across the sweep or the matrix is not really
    // exercising the taxonomy.
    assert!(
        fault_retried_away > 0,
        "no armed fault was absorbed by retry — the retry policy is dead"
    );
    assert!(
        fault_failures > 0,
        "no armed fault surfaced an error — the injector is not wired in"
    );
}

/// Seeded whole-schedule chaos replays through the durable runner in both
/// concurrency modes: `run_chaos` pins every clean select to the oracle
/// and errors on any divergence, so `Ok` here *is* the oracle check.
#[test]
fn seeded_chaos_replay_stays_pinned_in_both_modes() {
    for (mode, tag) in [
        (ConcurrencyMode::SingleLock, "single"),
        (ConcurrencyMode::Sharded { shards: 4 }, "sharded"),
    ] {
        let mut total = ChaosReport::default();
        for seed in [3u64, 17, 4242] {
            let dir = scratch(&format!("seeded-{tag}-{seed}"));
            let mut scenario = UpdateHeavy::new(Mqs::paper_default(4_000, 60, 0.05), 2.0, 3, seed);
            let mut runner =
                DbScenarioRunner::with_durability(&scenario, mode, &dir, 1).expect("attach");
            let schedule = ChaosSchedule::seeded(260, seed.wrapping_mul(31), 0.5);
            let report = runner
                .run_chaos(&mut scenario, &schedule)
                .unwrap_or_else(|e| panic!("{tag} seed {seed}: {e}"));
            total.selects += report.selects;
            total.faults_armed += report.faults_armed;
            total.checkpoints += report.checkpoints;
            total.restarts += report.restarts;
            total.cancelled += report.cancelled + report.deadline_exceeded + report.shed;
            total.failed_updates += report.failed_updates;
            total.updates += report.updates;
            std::fs::remove_dir_all(&dir).ok();
        }
        assert!(
            total.selects > 50,
            "{tag}: clean selects were oracle-checked"
        );
        assert!(total.updates > 50, "{tag}: updates flowed");
        assert!(total.faults_armed > 0, "{tag}: faults were armed");
        assert!(total.checkpoints > 0, "{tag}: checkpoints committed");
        assert!(total.restarts > 0, "{tag}: crash/recovery cycles ran");
        assert!(total.cancelled > 0, "{tag}: governor disturbances fired");
    }
}

/// A cancelled, deadline-expired, shed, or panicked query must leave no
/// trace: a chaos replay whose only actions are governor disturbances
/// plus checkpoint/restart cycles must end in exactly the state of a calm
/// replay of the same scenario.
#[test]
fn disturbed_queries_never_alter_later_observable_results() {
    for (mode, tag) in [
        (ConcurrencyMode::SingleLock, "single"),
        (ConcurrencyMode::Sharded { shards: 4 }, "sharded"),
    ] {
        let dir = scratch(&format!("no-trace-{tag}"));
        let make = || UpdateHeavy::new(Mqs::paper_default(3_000, 50, 0.05), 2.0, 3, 29);
        // Disturbances only — no I/O faults, so every update succeeds in
        // both runners and the end states are comparable.
        let schedule = ChaosSchedule::from_actions(
            (0..160usize)
                .filter_map(|s| match s % 8 {
                    0 => Some((s, ChaosAction::CancelNext)),
                    2 => Some((s, ChaosAction::DeadlineNext)),
                    4 => Some((s, ChaosAction::ShedNext)),
                    5 => Some((s, ChaosAction::PanicNext)),
                    6 => Some((s, ChaosAction::Checkpoint)),
                    7 if s % 16 == 7 => Some((s, ChaosAction::Restart)),
                    _ => None,
                })
                .collect(),
        );
        let mut scenario = make();
        let mut chaotic =
            DbScenarioRunner::with_durability(&scenario, mode, &dir, 1).expect("attach");
        let report = chaotic
            .run_chaos(&mut scenario, &schedule)
            .unwrap_or_else(|e| panic!("{tag}: {e}"));
        assert_eq!(report.failed_updates, 0, "{tag}: no faults, no failures");
        assert!(
            report.cancelled > 0 && report.deadline_exceeded > 0 && report.shed > 0,
            "{tag}: every disturbance kind must fire: {report:?}"
        );
        assert!(report.restarts > 0, "{tag}: restarts interleaved");

        let mut calm_scenario = make();
        let mut calm = DbScenarioRunner::new(&calm_scenario, mode).expect("calm twin");
        ScenarioRunner::run_differential(&mut calm_scenario, &mut calm).expect("calm replay");

        let mut mix = Mix(77);
        let mut chaotic_db = chaotic.into_db();
        let mut calm_db = calm.into_db();
        for _ in 0..12 {
            let w = mix.window(3_000, 400);
            let want = {
                let mut v = calm_db
                    .shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)
                    .unwrap()
                    .select_oids(w.to_pred());
                v.sort_unstable();
                v
            };
            let mut got = chaotic_db
                .shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)
                .unwrap()
                .select_oids(w.to_pred());
            got.sort_unstable();
            assert_eq!(
                got, want,
                "{tag}: disturbed history changed [{}, {})",
                w.lo, w.hi
            );
        }
        chaotic_db
            .shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)
            .unwrap()
            .validate()
            .expect("chaotic column validates");
        std::fs::remove_dir_all(&dir).ok();
    }
}
