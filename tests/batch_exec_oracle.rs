//! Oracle checks for the batched execution paths: a batch of predicates
//! answered through the latch-amortized batch entry points must be
//! indistinguishable from the same predicates answered one statement at
//! a time — identical (sorted) OID sets *and* an identical final cracked
//! layout — across the plain, single-lock, and sharded flavours. The
//! scenario roster is also replayed through the batch path against the
//! sorted-vector oracle, and the prepared-statement pipeline is pinned
//! to literal SQL execution.

use dbcracker::cracker_core::{ConcurrencyMode, ConcurrentColumn, CrackerConfig, RangePred};
use dbcracker::engine::scenario::{SCENARIO_COLUMN, SCENARIO_TABLE};
use dbcracker::engine::{AdaptiveDb, Table};
use dbcracker::prelude::*;
use dbcracker::sql::SqlSession;
use proptest::prelude::*;

/// The scenario roster, rebuilt fresh per executor (the seeding contract
/// makes a rebuild replay the identical op stream).
fn roster(seed: u64) -> Vec<Box<dyn Scenario<Item = Op>>> {
    vec![
        Box::new(ZipfQueries::new(20_000, 5_000, 1.1, 64, seed)),
        Box::new(ShiftingHotSet::new(
            20_000,
            96,
            16,
            Shift::Drift { step: 5_000 },
            seed,
        )),
        Box::new(ShiftingHotSet::new(20_000, 96, 16, Shift::Jump, seed)),
        Box::new(UpdateHeavy::new(
            Mqs::paper_default(20_000, 64, 0.05),
            4.0,
            8,
            seed,
        )),
    ]
}

/// Replay one scenario through [`DbScenarioRunner::run_select_batch`]:
/// consecutive selects are buffered and flushed as one batch (before any
/// update, so the oracle's state matches every buffered window), each
/// answer compared in full against the sorted-vector oracle.
fn replay_batched(mode: ConcurrencyMode, mut scenario: Box<dyn Scenario<Item = Op>>) {
    /// Flush cap: below the scenario query counts, so replays exercise
    /// both full and partial batches.
    const BATCH_CAP: usize = 32;

    fn flush(
        runner: &mut DbScenarioRunner,
        wins: &mut Vec<Window>,
        oracle: &SortedOracle,
        name: &str,
    ) {
        if wins.is_empty() {
            return;
        }
        let got = runner.run_select_batch(wins);
        for (w, mut g) in wins.iter().zip(got) {
            g.sort_unstable();
            assert_eq!(
                g,
                oracle.select_oids(*w),
                "{name}: batched select [{}, {})",
                w.lo,
                w.hi
            );
        }
        wins.clear();
    }

    let name = scenario.name();
    let mut runner = DbScenarioRunner::new(scenario.as_ref(), mode).expect("register scenario");
    let mut oracle = SortedOracle::new(scenario.base());
    let mut wins: Vec<Window> = Vec::new();
    let mut selects = 0usize;
    for op in &mut scenario {
        match op {
            Op::Select(w) => {
                wins.push(w);
                selects += 1;
                if wins.len() == BATCH_CAP {
                    flush(&mut runner, &mut wins, &oracle, &name);
                }
            }
            Op::Insert { oid, value } => {
                flush(&mut runner, &mut wins, &oracle, &name);
                runner.run_insert(oid, value);
                oracle.insert(oid, value);
            }
            Op::Delete { oid } => {
                flush(&mut runner, &mut wins, &oracle, &name);
                assert_eq!(runner.run_delete(oid), oracle.delete(oid), "{name}: delete");
            }
        }
    }
    flush(&mut runner, &mut wins, &oracle, &name);
    assert!(selects > 0, "{name}: scenario ran no selects");
    let mut db = runner.into_db();
    db.shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)
        .expect("scenario column registered")
        .validate()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
}

#[test]
fn scenario_roster_replayed_through_the_batch_path_matches_the_oracle() {
    for mode in [
        ConcurrencyMode::SingleLock,
        ConcurrencyMode::Sharded { shards: 8 },
    ] {
        for scenario in roster(0x6A) {
            replay_batched(mode, scenario);
        }
    }
}

/// The batch path must leave the *same cracked layout* as
/// statement-at-a-time execution, not just return the same answers: the
/// boundaries a batch installs are exactly the union of its predicates'
/// bounds, independent of per-shard reordering.
#[test]
fn batch_and_statement_replays_converge_to_the_same_piece_count() {
    for mode in [
        ConcurrencyMode::SingleLock,
        ConcurrencyMode::Sharded { shards: 8 },
    ] {
        for (batched, mut one_at_a_time) in roster(0x6B).into_iter().zip(roster(0x6B)) {
            let name = batched.name();
            let mut stmt_runner =
                DbScenarioRunner::new(one_at_a_time.as_ref(), mode).expect("register scenario");
            ScenarioRunner::run_differential(one_at_a_time.as_mut(), &mut stmt_runner)
                .unwrap_or_else(|e| panic!("{name} {mode:?}: {e}"));
            let stmt_pieces = stmt_runner
                .into_db()
                .shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)
                .expect("scenario column registered")
                .piece_count();

            // `replay_batched` re-runs the identical op stream (the
            // seeding contract) through the batch entry point…
            let mut runner = DbScenarioRunner::new(batched.as_ref(), mode).expect("register");
            let mut scenario = batched;
            let mut wins: Vec<Window> = Vec::new();
            for op in &mut scenario {
                match op {
                    Op::Select(w) => wins.push(w),
                    Op::Insert { oid, value } => {
                        runner.run_select_batch(&wins);
                        wins.clear();
                        runner.run_insert(oid, value);
                    }
                    Op::Delete { oid } => {
                        runner.run_select_batch(&wins);
                        wins.clear();
                        runner.run_delete(oid);
                    }
                }
            }
            runner.run_select_batch(&wins);
            let batch_pieces = runner
                .into_db()
                .shared_cracker(SCENARIO_TABLE, SCENARIO_COLUMN)
                .expect("scenario column registered")
                .piece_count();

            // …and must arrive at the identical boundary set.
            assert_eq!(
                stmt_pieces, batch_pieces,
                "{name} {mode:?}: batch and statement replays cracked differently"
            );
        }
    }
}

/// Prepared execution (parse/lower once, bind many) must be
/// indistinguishable from re-parsing the literal SQL per query — both in
/// the rows returned and in reaching the same session state.
#[test]
fn prepared_execution_matches_literal_sql() {
    let vals: Vec<i64> = (0..4_000)
        .map(|i| (i * 2_654_435_761u64 as i64) % 4_000)
        .collect();
    let mut prepared_sess = SqlSession::new();
    let mut literal_sess = SqlSession::new();
    for sess in [&mut prepared_sess, &mut literal_sess] {
        sess.load_table("t", vec![("v".to_owned(), vals.clone())])
            .expect("fresh table");
    }
    let prepared = prepared_sess
        .prepare("select v from t where v >= ? and v < ?")
        .expect("prepare");
    let bindings: Vec<Vec<i64>> = (0..48)
        .map(|i| {
            let lo = (i * 167) % 3_900;
            vec![lo, lo + 40]
        })
        .collect();
    let batch = prepared_sess
        .execute_prepared_many(&prepared, &bindings)
        .expect("prepared batch");
    assert_eq!(batch.len(), bindings.len());
    for (b, got) in bindings.iter().zip(batch) {
        let want = literal_sess
            .execute_one(&format!(
                "select v from t where v >= {} and v < {}",
                b[0], b[1]
            ))
            .expect("literal select");
        let (QueryOutput::Table { rows: mut r1, .. }, QueryOutput::Table { rows: mut r2, .. }) =
            (got, want)
        else {
            panic!("selects must produce tables");
        };
        r1.sort_unstable();
        r2.sort_unstable();
        assert_eq!(r1, r2, "binding {b:?}");
    }
}

/// `execute` parses the whole source before running any of it: a syntax
/// error in the last statement must leave the session untouched, even
/// when earlier statements are valid DDL.
#[test]
fn execute_is_syntactically_atomic_across_the_statement_list() {
    let mut sess = SqlSession::new();
    sess.execute("create table early (v integer)")
        .expect("valid statement list");
    sess.execute("create table late (v integer); selec nonsense from nowhere")
        .expect_err("trailing syntax error must fail the whole list");
    // The valid leading CREATE must not have run.
    sess.execute("create table late (v integer)")
        .expect("`late` must not exist — the failed list may not partially apply");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch ≡ statement-at-a-time on the concurrent column: same sorted
    /// OID set per predicate, same final piece count, invariants intact —
    /// under both lock modes.
    #[test]
    fn prop_concurrent_batch_equals_statement_at_a_time(
        vals in proptest::collection::vec(-120i64..120, 16..200),
        preds in proptest::collection::vec((-130i64..130, 1i64..60), 1..40),
        shards in 1usize..6,
    ) {
        let preds: Vec<RangePred<i64>> = preds
            .iter()
            .map(|&(lo, w)| RangePred::half_open(lo, lo + w))
            .collect();
        for mode in [ConcurrencyMode::SingleLock, ConcurrencyMode::Sharded { shards }] {
            let stmt = ConcurrentColumn::build(vals.clone(), CrackerConfig::default(), mode);
            let batch = ConcurrentColumn::build(vals.clone(), CrackerConfig::default(), mode);
            let batched = batch.select_oids_batch(&preds);
            for (p, mut b) in preds.iter().zip(batched) {
                let mut s = stmt.select_oids(*p);
                s.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(s, b, "{:?} pred {:?}", mode, p);
            }
            stmt.validate().map_err(TestCaseError::fail)?;
            batch.validate().map_err(TestCaseError::fail)?;
            prop_assert_eq!(
                stmt.piece_count(),
                batch.piece_count(),
                "{:?}: final layouts diverged",
                mode
            );
        }
    }

    /// The engine's plain-column batch leg agrees with per-statement
    /// conjunctive selection (the single-predicate degenerate case).
    #[test]
    fn prop_adaptive_db_batch_matches_statement_selects(
        vals in proptest::collection::vec(-120i64..120, 16..160),
        preds in proptest::collection::vec((-130i64..130, 1i64..60), 1..24),
    ) {
        let preds: Vec<RangePred<i64>> = preds
            .iter()
            .map(|&(lo, w)| RangePred::half_open(lo, lo + w))
            .collect();
        let table = || Table::from_int_columns("t", vec![("v", vals.clone())]).expect("aligned");
        let mut stmt_db = AdaptiveDb::new();
        let mut batch_db = AdaptiveDb::new();
        stmt_db.register(table()).expect("fresh catalog");
        batch_db.register(table()).expect("fresh catalog");
        let batched = batch_db.select_batch("t", "v", &preds).expect("batch select");
        for (p, mut b) in preds.iter().zip(batched) {
            let s = stmt_db.select_conjunctive("t", &[("v", *p)]).expect("select");
            b.sort_unstable();
            prop_assert_eq!(s, b, "pred {:?}", p);
        }
    }
}
