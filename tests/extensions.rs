//! Integration across the extension subsystems: stochastic cracking,
//! sideways maps, the paged store, the policy optimizer, the SQL
//! surface and the P2P overlay all answering the *same* workload over
//! the *same* data, agreeing with each other and with a naive oracle.

use dbcracker::cracker_core::sideways::CrackerMap;
use dbcracker::cracker_core::stochastic::{StochasticCracker, StochasticPolicy};
use dbcracker::cracker_core::{CrackPolicy, PagedCracker, PolicyCracker};
use dbcracker::p2p::{Network, NodeId, P2pConfig};
use dbcracker::prelude::*;
use dbcracker::sql::SqlSession;
use dbcracker::storage::{BufferPool, MemDisk};
use workload::sequential::{adversarial_sequence, Adversary};

const N: usize = 20_000;

fn data() -> Vec<i64> {
    Tapestry::generate(N, 1, 0xE57).column(0).to_vec()
}

fn oracle(vals: &[i64], lo: i64, hi: i64) -> usize {
    vals.iter().filter(|&&v| (lo..hi).contains(&v)).count()
}

#[test]
fn every_engine_agrees_on_an_adversarial_sweep() {
    let vals = data();
    let windows = adversarial_sequence(N, 25, Adversary::SequentialAsc);

    // The five single-node answer paths.
    let mut plain = CrackerColumn::new(vals.clone());
    let mut stochastic = StochasticCracker::new(vals.clone(), StochasticPolicy::DD1R, 3);
    let mut policy = PolicyCracker::new(
        vals.clone(),
        CrackPolicy::ManyThenChunks {
            switch_at_pieces: 16,
            late_granule: 4_096,
        },
    );
    let mut map = CrackerMap::new(vals.clone(), vals.clone());
    let mut pool = BufferPool::new(MemDisk::new(), 8);
    let mut paged = PagedCracker::create(&mut pool, &vals).unwrap();

    // The SQL surface over the same column.
    let mut session = SqlSession::new();
    session
        .load_table("t", vec![("a".into(), vals.clone())])
        .unwrap();

    // The distributed overlay (tapestry values are the permutation
    // 1..=N).
    let mut net = Network::new(4, &vals, 1, N as i64 + 1, P2pConfig::default());

    for w in &windows {
        let want = oracle(&vals, w.lo, w.hi);
        assert_eq!(plain.count(w.to_pred()), want, "plain [{},{})", w.lo, w.hi);
        assert_eq!(stochastic.count(w.to_pred()), want, "stochastic");
        assert_eq!(policy.count(w.to_pred()), want, "policy");
        assert_eq!(map.select(w.to_pred()).len(), want, "sideways");
        assert_eq!(paged.count(&mut pool, w.to_pred()).unwrap(), want, "paged");
        let out = session
            .execute_one(&format!(
                "select count(*) from t where a >= {} and a < {}",
                w.lo, w.hi
            ))
            .unwrap();
        assert_eq!(out.rows().unwrap()[0][0] as usize, want, "sql");
        let trace = net.query(NodeId(0), w.lo, w.hi);
        assert_eq!(trace.result as usize, want, "p2p");
    }

    // Structural invariants across the board.
    plain.validate().unwrap();
    stochastic.column().validate().unwrap();
    policy.column().validate().unwrap();
    map.validate().unwrap();
    assert_eq!(paged.validate(&mut pool).unwrap(), Ok(()));
    net.validate().unwrap();
}

#[test]
fn stochastic_beats_plain_on_the_sweep_but_not_on_strolling() {
    let vals = data();
    let sweep = adversarial_sequence(N, 64, Adversary::SequentialAsc);
    let stroll = workload::strolling::strolling_sequence(
        N,
        64,
        0.01,
        Contraction::Linear,
        workload::strolling::StrollMode::RandomWithReplacement,
        9,
    );
    let run = |windows: &[Window], policy: StochasticPolicy| {
        let mut c = StochasticCracker::new(vals.clone(), policy, 5);
        for w in windows {
            c.select(w.to_pred());
        }
        c.total_touched()
    };
    let sweep_vanilla = run(&sweep, StochasticPolicy::Vanilla);
    let sweep_ddr = run(&sweep, StochasticPolicy::DDR { floor: 512 });
    assert!(
        sweep_ddr * 3 < sweep_vanilla,
        "DDR must dominate on the sweep ({sweep_ddr} !< {sweep_vanilla}/3)"
    );
    let stroll_vanilla = run(&stroll, StochasticPolicy::Vanilla);
    let stroll_ddr = run(&stroll, StochasticPolicy::DDR { floor: 512 });
    assert!(
        stroll_ddr < stroll_vanilla * 2,
        "the stochastic insurance premium stays small on random workloads"
    );
}

#[test]
fn sideways_map_and_sql_projection_return_the_same_tuples() {
    let vals = data();
    let payload: Vec<i64> = vals.iter().map(|v| v * 7).collect();
    let mut map = CrackerMap::new(vals.clone(), payload.clone());
    let mut session = SqlSession::new();
    session
        .load_table("t", vec![("a".into(), vals.clone()), ("b".into(), payload)])
        .unwrap();
    for (lo, hi) in [(100, 900), (5_000, 5_100), (1, 20_001)] {
        let r = map.select(RangePred::half_open(lo, hi));
        let mut from_map: Vec<i64> = map.project(r).to_vec();
        from_map.sort_unstable();
        let out = session
            .execute_one(&format!("select b from t where a >= {lo} and a < {hi}"))
            .unwrap();
        let mut from_sql: Vec<i64> = out.rows().unwrap().iter().map(|r| r[0]).collect();
        from_sql.sort_unstable();
        assert_eq!(from_map, from_sql, "[{lo},{hi})");
    }
}

#[test]
fn paged_cracker_and_granule_sim_tell_the_same_story() {
    // The §2.2 simulation predicts the write overhead fades within a few
    // steps; the physical paged cracker must show the same decay in
    // actual page writes.
    let vals = data();
    let mut pool = BufferPool::new(MemDisk::new(), 64);
    let mut cracker = PagedCracker::create(&mut pool, &vals).unwrap();
    pool.flush().unwrap();
    let seq = workload::homerun::homerun_sequence(N, 10, 0.05, Contraction::Linear, 4);
    let mut per_step_writes = Vec::new();
    for w in &seq {
        let before = pool.io_stats().writes;
        cracker.count(&mut pool, w.to_pred()).unwrap();
        pool.flush().unwrap();
        per_step_writes.push(pool.io_stats().writes - before);
    }
    let first = per_step_writes[0];
    let last = per_step_writes[per_step_writes.len() - 1];
    assert!(
        last * 4 <= first.max(4),
        "write overhead must collapse across the homerun \
         (first {first}, last {last}, all {per_step_writes:?})"
    );
}

#[test]
fn policy_budget_composes_with_sql_volume() {
    // A piece-budget cracker behind heavy SQL traffic keeps its index
    // bounded while staying correct — the end-to-end version of the
    // §3.2 resource-management story.
    let vals = data();
    let mut col = PolicyCracker::new(vals.clone(), CrackPolicy::PieceBudget { max_pieces: 32 });
    for w in adversarial_sequence(N, 200, Adversary::ZoomOutAlt) {
        assert_eq!(col.count(w.to_pred()), oracle(&vals, w.lo, w.hi));
    }
    assert!(col.column().piece_count() <= 34);
    col.column().validate().unwrap();
}
