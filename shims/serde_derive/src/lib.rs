//! Offline drop-in stub of `serde_derive`.
//!
//! Derives the miniature `serde::Serialize` / `serde::Deserialize` traits
//! (see the vendored `serde` shim) for structs and enums by hand-parsing
//! the item's token stream — the real syn/quote stack is unavailable
//! offline. Supported shapes are exactly what this workspace uses: unit /
//! tuple / named-field structs, enums whose variants are unit, tuple, or
//! struct-like, simple type generics (`<T>`), and the `#[serde(skip)]`
//! field attribute (skipped on serialize, `Default::default()` on
//! deserialize). Anything fancier panics with a clear message at compile
//! time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String, // field name, or tuple index rendered as a string
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct(Shape),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Parsed {
    name: String,
    generics: Vec<String>,
    item: Item,
}

/// Derive the miniature `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_item(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derive the miniature `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_item(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i);

    // Skip a where-clause if present (collect nothing from it).
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        while i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Brace {
                    break;
                }
            }
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ';' {
                    break;
                }
            }
            i += 1;
        }
    }

    let item = match kind.as_str() {
        "struct" => match tokens.get(i) {
            None => Item::Struct(Shape::Unit),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct(Shape::Unit),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::Struct(Shape::Tuple(parse_tuple_fields(g.stream())))
            }
            Some(other) => panic!("serde_derive: unexpected struct body {other}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde_derive: `{other}` items are not supported"),
    };

    Parsed {
        name,
        generics,
        item,
    }
}

/// Advance past outer attributes and visibility modifiers.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse `<...>` after the item name into the list of type-parameter
/// identifiers. Bounds and defaults are discarded; lifetimes and const
/// generics are rejected.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut current: Vec<TokenTree> = Vec::new();
    let mut params: Vec<Vec<TokenTree>> = Vec::new();
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(tokens[*i].clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    break;
                }
                current.push(tokens[*i].clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                params.push(std::mem::take(&mut current));
            }
            t => current.push(t.clone()),
        }
        *i += 1;
    }
    if !current.is_empty() {
        params.push(current);
    }
    params
        .into_iter()
        .filter(|p| !p.is_empty())
        .map(|p| {
            if matches!(&p[0], TokenTree::Punct(q) if q.as_char() == '\'') {
                panic!("serde_derive: lifetime generics are not supported");
            }
            match &p[0] {
                TokenTree::Ident(id) if id.to_string() == "const" => {
                    panic!("serde_derive: const generics are not supported")
                }
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: unsupported generic parameter {other}"),
            }
        })
        .collect()
}

/// Split a field/variant list on top-level commas, tracking both group
/// nesting (automatic via `TokenTree::Group`) and `<...>` depth.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0usize;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            // `->` never appears in field position; every '>' closes an angle.
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(t);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Does a `#[...]` attribute group hold `serde(... skip ...)`?
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Scan leading attributes of one field/variant; return (skip, next index).
fn consume_attrs(tokens: &[TokenTree]) -> (bool, usize) {
    let mut skip = false;
    let mut i = 0;
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            if attr_is_serde_skip(g) {
                skip = true;
            }
        }
        i += 2;
    }
    (skip, i)
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|tokens| {
            let (skip, mut i) = consume_attrs(&tokens);
            if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            match tokens.get(i) {
                Some(TokenTree::Ident(id)) => Field {
                    name: id.to_string(),
                    skip,
                },
                other => panic!("serde_derive: expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .enumerate()
        .map(|(idx, tokens)| {
            let (skip, _) = consume_attrs(&tokens);
            Field {
                name: idx.to_string(),
                skip,
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|tokens| {
            let (_, mut i) = consume_attrs(&tokens);
            let name = match tokens.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other:?}"),
            };
            i += 1;
            let shape = match tokens.get(i) {
                None => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => Shape::Unit, // discriminant
                Some(other) => panic!("serde_derive: unexpected variant body {other}"),
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------- codegen

/// `impl<T: ::serde::Serialize> Trait for Name<T>` header pieces.
fn impl_header(parsed: &Parsed, trait_path: &str) -> (String, String) {
    if parsed.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let bounded = parsed
            .generics
            .iter()
            .map(|g| format!("{g}: {trait_path}"))
            .collect::<Vec<_>>()
            .join(", ");
        let plain = parsed.generics.join(", ");
        (format!("<{bounded}>"), format!("<{plain}>"))
    }
}

fn gen_serialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let (impl_generics, ty_generics) = impl_header(parsed, "::serde::Serialize");
    let body = match &parsed.item {
        Item::Struct(shape) => serialize_shape_body(shape, name, "self."),
        Item::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    Shape::Tuple(fields) => {
                        let binders: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let inner = if fields.len() == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Seq(vec![{}])",
                                binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            binders.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binders = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let entries = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binders} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(vec![{entries}]))]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Serialize body for a struct shape, with fields accessed via `prefix`.
fn serialize_shape_body(shape: &Shape, _name: &str, prefix: &str) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if live.len() == 1 {
                format!("::serde::Serialize::to_value(&{prefix}{})", live[0].name)
            } else {
                format!(
                    "::serde::Value::Seq(vec![{}])",
                    live.iter()
                        .map(|f| format!("::serde::Serialize::to_value(&{prefix}{})", f.name))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
        }
        Shape::Named(fields) => {
            let entries = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&{prefix}{0}))",
                        f.name
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Map(vec![{entries}])")
        }
    }
}

fn gen_deserialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let (impl_generics, ty_generics) = impl_header(parsed, "::serde::Deserialize");
    let body = match &parsed.item {
        Item::Struct(shape) => {
            deserialize_struct_body(shape, name, &format!("{name}{ty_generics}"))
        }
        Item::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Shape::Tuple(fields) => {
                        let build = if fields.len() == 1 {
                            format!(
                                "::core::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?))"
                            )
                        } else {
                            let elems = (0..fields.len())
                                .map(|i| {
                                    format!(
                                        "::serde::__private::element(__items, \"{name}::{vname}\", {i})?"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "match __inner {{\n\
                                     ::serde::Value::Seq(__items) => ::core::result::Result::Ok({name}::{vname}({elems})),\n\
                                     __other => ::core::result::Result::Err(::serde::__private::unexpected(\"{name}::{vname}\", \"sequence\", __other)),\n\
                                 }}"
                            )
                        };
                        data_arms.push_str(&format!("\"{vname}\" => {{ {build} }}\n"));
                    }
                    Shape::Named(fields) => {
                        let inits = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: ::core::default::Default::default()", f.name)
                                } else {
                                    format!(
                                        "{0}: ::serde::__private::field(__entries, \"{name}::{vname}\", \"{0}\")?",
                                        f.name
                                    )
                                }
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                                 ::serde::Value::Map(__entries) => ::core::result::Result::Ok({name}::{vname} {{ {inits} }}),\n\
                                 __other => ::core::result::Result::Err(::serde::__private::unexpected(\"{name}::{vname}\", \"map\", __other)),\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::core::result::Result::Err(::serde::DeError::custom(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __inner) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\n\
                             __other => ::core::result::Result::Err(::serde::DeError::custom(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::core::result::Result::Err(::serde::__private::unexpected(\"{name}\", \"variant string or single-entry map\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(__value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}

fn deserialize_struct_body(shape: &Shape, name: &str, _full: &str) -> String {
    match shape {
        Shape::Unit => format!("::core::result::Result::Ok({name})"),
        Shape::Tuple(fields) => {
            let live: Vec<(usize, &Field)> =
                fields.iter().enumerate().filter(|(_, f)| !f.skip).collect();
            if live.len() == 1 && fields.len() == 1 {
                format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
                )
            } else {
                let elems = fields
                    .iter()
                    .enumerate()
                    .map(|(i, f)| {
                        if f.skip {
                            "::core::default::Default::default()".to_string()
                        } else {
                            let live_idx =
                                live.iter().position(|(j, _)| *j == i).expect("live field");
                            format!("::serde::__private::element(__items, \"{name}\", {live_idx})?")
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "match __value {{\n\
                         ::serde::Value::Seq(__items) => ::core::result::Result::Ok({name}({elems})),\n\
                         __other => ::core::result::Result::Err(::serde::__private::unexpected(\"{name}\", \"sequence\", __other)),\n\
                     }}"
                )
            }
        }
        Shape::Named(fields) => {
            let inits = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::core::default::Default::default()", f.name)
                    } else {
                        format!(
                            "{0}: ::serde::__private::field(__entries, \"{name}\", \"{0}\")?",
                            f.name
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "match __value {{\n\
                     ::serde::Value::Map(__entries) => ::core::result::Result::Ok({name} {{ {inits} }}),\n\
                     __other => ::core::result::Result::Err(::serde::__private::unexpected(\"{name}\", \"map\", __other)),\n\
                 }}"
            )
        }
    }
}
