//! Offline drop-in replacement for the subset of `proptest` used by this
//! workspace's tests.
//!
//! Instead of proptest's shrinking test runner, the [`proptest!`] macro
//! expands to a plain `#[test]` that draws [`CASES`] deterministic random
//! samples per strategy (seeded from the test name, so failures reproduce)
//! and runs the body on each. `prop_assert!`/`prop_assert_eq!` abort the
//! case via [`test_runner::TestCaseError`], reporting the failing case
//! index. No shrinking is performed — a failing case prints its inputs via
//! the assertion message instead.

/// Number of random cases each `proptest!` test executes.
pub const CASES: usize = 64;

/// How a strategy draws values.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Transform drawn values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut test_runner::TestRng) -> O {
        (self.map)(self.inner.sample(rng))
    }
}

/// Uniform choice between type-erased alternatives; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// An empty union (sampling panics until an option is added).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    /// Add one alternative.
    pub fn or(mut self, option: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(option));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut test_runner::TestRng) -> T {
        assert!(!self.options.is_empty(), "empty prop_oneof!");
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Run-time configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: CASES as u32,
        }
    }
}

/// Uniform choice among the listed strategies (all must share one value
/// type). Weighted alternatives are not supported by this offline stub.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new()$(.or($strategy))+
    };
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = ((hi as i128 - lo as i128) + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{test_runner::TestRng, Strategy};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `Vec` strategy: each case draws a length in `size`, then that many
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{test_runner::TestRng, Strategy};

    /// Strategy yielding `None` for a quarter of cases, `Some` otherwise.
    pub struct OptionStrategy<S>(S);

    /// Lift `inner` into an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{test_runner::TestRng, Strategy};

    /// Strategy for a fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            rng.below(2) == 1
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

/// Test execution support (`proptest::test_runner`).
pub mod test_runner {
    use std::fmt;

    /// Why a single case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed case with the given reason.
        pub fn fail<R: fmt::Display>(reason: R) -> Self {
            TestCaseError(reason.to_string())
        }

        /// Alias of [`TestCaseError::fail`], mirroring proptest's `reject`.
        pub fn reject<R: fmt::Display>(reason: R) -> Self {
            Self::fail(reason)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-test random source (SplitMix64 over the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name so each test gets a stable stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)`; `span` must be non-zero.
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running [`crate::CASES`] deterministic random cases (or the
/// count given by a leading `#![proptest_config(..)]`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)+
    ) => {
        $crate::proptest! { @__cases ($config).cases as usize; $($rest)+ }
    };
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )+) => {
        $crate::proptest! { @__cases $crate::CASES; $(
            $(#[$meta])*
            fn $name( $($arg in $strategy),+ ) $body
        )+ }
    };
    (@__cases $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases: usize = $cases;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cases,
                        e
                    );
                }
            }
        }
    )+};
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            x in -5i64..5,
            pair in (0u8..3, 10usize..=12),
            v in crate::collection::vec(0i32..100, 0..8),
            o in crate::option::of(1u64..4),
            b in crate::bool::ANY,
        ) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(pair.0 < 3);
            prop_assert!((10..=12).contains(&pair.1));
            prop_assert!(v.len() < 8);
            for e in &v {
                prop_assert!((0..100).contains(e));
            }
            if let Some(u) = o {
                prop_assert!((1..4).contains(&u));
            }
            let _: bool = b;
        }

        #[test]
        fn question_mark_propagates(n in 1u32..10) {
            let r: Result<u32, String> = Ok(n);
            let v = r.map_err(crate::test_runner::TestCaseError::fail)?;
            prop_assert_eq!(v, n);
            prop_assert_ne!(v, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        proptest! {
            fn inner(x in 0u8..10) {
                prop_assert!(x < 5, "x was {}", x);
            }
        }
        inner();
    }
}
