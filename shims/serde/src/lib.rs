//! Offline drop-in replacement for the subset of `serde` used by this
//! workspace.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! miniature serde: [`Serialize`]/[`Deserialize`] convert through a single
//! self-describing [`Value`] tree (the moral equivalent of
//! `serde_json::Value`), and the companion `serde_derive` proc-macro crate
//! derives both traits for structs and enums, honouring `#[serde(skip)]`.
//! The companion `serde_json` crate renders [`Value`] to and from JSON
//! text. Formats beyond JSON (and serde's zero-copy/visitor machinery) are
//! intentionally out of scope.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized tree, the interchange point between
/// [`Serialize`], [`Deserialize`], and the `serde_json` text format.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative numbers parse into this arm).
    I64(i64),
    /// An unsigned integer (non-negative numbers parse into this arm).
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Serialize `self` into the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserialize from the interchange tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Deserialization submodule, mirroring `serde::de`.
pub mod de {
    /// Marker for deserializable types that own all their data. Our
    /// miniature [`super::Deserialize`] always produces owned values, so
    /// this is a blanket alias.
    pub trait DeserializeOwned: super::Deserialize {}

    impl<T: super::Deserialize> DeserializeOwned for T {}
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match value {
                    Value::I64(v) => *v as i128,
                    Value::U64(v) => *v as i128,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, found {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match value {
                    Value::I64(v) => *v as i128,
                    Value::U64(v) => *v as i128,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, found {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::F64(v) => Ok(*v as $t),
                    Value::I64(v) => Ok(*v as $t),
                    Value::U64(v) => Ok(*v as $t),
                    other => Err(DeError::custom(format!(
                        "expected number, found {}",
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::custom(format!(
                "expected single-char string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($idx),+].len();
                match value {
                    Value::Seq(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected {}-tuple sequence, found {}",
                        ARITY,
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items
                .iter()
                .map(|pair| <(K, V)>::from_value(pair))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected entry sequence, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items
                .iter()
                .map(|pair| <(K, V)>::from_value(pair))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected entry sequence, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(
            value
                .get("secs")
                .ok_or_else(|| DeError::custom("Duration missing `secs`"))?,
        )?;
        let nanos = u32::from_value(
            value
                .get("nanos")
                .ok_or_else(|| DeError::custom("Duration missing `nanos`"))?,
        )?;
        Ok(Duration::new(secs, nanos))
    }
}

/// Support routines used by `serde_derive` expansions; not a public API.
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Deserialize field `name` from the entries of a struct map. A missing
    /// field falls back to deserializing `Null` (so `Option` fields may be
    /// omitted), otherwise reports the missing field.
    pub fn field<T: Deserialize>(
        entries: &[(String, Value)],
        type_name: &str,
        name: &str,
    ) -> Result<T, DeError> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| DeError::custom(format!("{type_name}.{name}: {e}")))
            }
            None => T::from_value(&Value::Null)
                .map_err(|_| DeError::custom(format!("{type_name}: missing field `{name}`"))),
        }
    }

    /// Fetch element `idx` of a tuple-struct/tuple-variant sequence.
    pub fn element<T: Deserialize>(
        items: &[Value],
        type_name: &str,
        idx: usize,
    ) -> Result<T, DeError> {
        let v = items
            .get(idx)
            .ok_or_else(|| DeError::custom(format!("{type_name}: missing element {idx}")))?;
        T::from_value(v).map_err(|e| DeError::custom(format!("{type_name}.{idx}: {e}")))
    }

    /// Shape-mismatch error helper.
    pub fn unexpected(type_name: &str, expected: &str, found: &Value) -> DeError {
        DeError::custom(format!(
            "{type_name}: expected {expected}, found {:?}",
            found
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_value(&(-42i64).to_value()).unwrap(), -42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(
            usize::from_value(&usize::MAX.to_value()).unwrap(),
            usize::MAX
        );
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(
            Option::<i32>::from_value(&None::<i32>.to_value()).unwrap(),
            None
        );
        let d = Duration::new(3, 7);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
        let t = (1u32, 2u32);
        assert_eq!(<(u32, u32)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
