//! Offline drop-in replacement for the subset of `parking_lot` used by this
//! workspace: `Mutex` and `RwLock` with non-poisoning, `Result`-free guard
//! acquisition, implemented over `std::sync`.
//!
//! Like the real crate, a panic while a guard is held does **not** poison
//! the lock — the std poison flag is swallowed on the next acquisition.

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared read access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until exclusive write access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
