//! Offline drop-in replacement for the subset of `criterion` used by this
//! workspace's benches.
//!
//! It keeps the criterion surface (`criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`,
//! `Bencher::{iter, iter_batched, iter_custom}`, `BenchmarkId`,
//! `BatchSize`, `black_box`) but replaces the statistical
//! machinery with a plain measured loop: a short warm-up, then
//! `sample_size` timed samples whose min/mean are printed to stdout. Good
//! enough to compare orders of magnitude offline; swap in real criterion
//! when the registry is reachable.
//!
//! # `--json` mode
//!
//! Passing `--json` to a bench binary (`cargo bench --bench foo -- --json`)
//! additionally writes `BENCH_<bench-name>.json` — one record per
//! benchmark with the **median** sample in nanoseconds — into
//! `$BENCH_JSON_DIR` (default: the process working directory). This is the
//! machine-readable baseline the repo's bench-trajectory tracking and the
//! CI bench-smoke step consume.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// `(label, median ns, samples)` collected by every finished benchmark in
/// this process, in execution order — the source for the `--json` report.
static COLLECTED: Mutex<Vec<(String, u128, usize)>> = Mutex::new(Vec::new());

pub use std::hint::black_box;

/// How expensive a batch setup is; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Anything usable as a bench label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.name
    }
}

/// Runs the measured closures and records samples.
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            recorded: Vec::with_capacity(samples),
        }
    }

    /// Time `routine` directly, once per sample after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.recorded.push(t.elapsed());
        }
    }

    /// Time `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.recorded.push(t.elapsed());
        }
    }

    /// Hand timing to the routine: it receives an iteration count and
    /// returns the measured [`Duration`] for that many iterations. The
    /// shim calls it once per sample with `iters = 1`, recording the
    /// returned duration verbatim — which lets a routine report a derived
    /// time (a tail latency, a span across threads) instead of wall-clock
    /// around the closure.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        black_box(routine(1));
        for _ in 0..self.samples {
            self.recorded.push(routine(1));
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup()));
        for _ in 0..self.samples {
            let mut input = setup();
            let t = Instant::now();
            black_box(routine(&mut input));
            self.recorded.push(t.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{label:<48} min {:>12?}  mean {:>12?}  ({} samples)",
        min,
        mean,
        samples.len()
    );
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2].as_nanos();
    COLLECTED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push((label.to_string(), median, samples.len()));
}

/// The bench name behind an argv[0] like
/// `target/release/deps/crack_select-0f3a9c…`: the file stem with cargo's
/// trailing `-<hex hash>` stripped.
fn bench_name(argv0: &str) -> String {
    let stem = std::path::Path::new(argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        // Cargo's metadata hash is exactly 16 hex digits.
        Some((name, hash)) if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ => stem.to_string(),
    }
}

/// When `--json` was passed on the command line, write every collected
/// result as `BENCH_<name>.json` into `$BENCH_JSON_DIR` (default: the
/// working directory). Called by the shim's `criterion_main!` after all
/// groups ran; a no-op without the flag.
pub fn write_json_report() {
    let mut args = std::env::args();
    let argv0 = args.next().unwrap_or_default();
    if !args.any(|a| a == "--json") {
        return;
    }
    let name = bench_name(&argv0);
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    let collected = COLLECTED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"bench\": \"{name}\",\n  \"results\": [\n"));
    for (i, (label, median_ns, samples)) in collected.iter().enumerate() {
        let comma = if i + 1 == collected.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"id\": \"{label}\", \"median_ns\": {median_ns}, \"samples\": {samples} }}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {}", path.display()),
        // The caller asked for the JSON; silently keeping exit code 0
        // would let CI upload a stale committed baseline as this run's
        // artifact. Fail loudly instead.
        Err(e) => panic!(
            "--json requested but writing {} failed: {e}",
            path.display()
        ),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut b = Bencher::new(self.sample_size);
        routine(&mut b);
        report(&label, &b.recorded);
        self
    }

    /// Benchmark `routine` against a borrowed `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut b = Bencher::new(self.sample_size);
        routine(&mut b, input);
        report(&label, &b.recorded);
        self
    }

    /// Finish the group (printing is incremental; this is a no-op marker).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut b = Bencher::new(self.sample_size);
        routine(&mut b);
        report(&label, &b.recorded);
        self
    }
}

/// Bundle bench functions into a group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups, mirroring criterion's macro.
/// After all groups ran, the `--json` report is written when requested.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_name_strips_cargo_hash() {
        assert_eq!(
            bench_name("target/release/deps/crack_select-0f3a9cbb12d45e77"),
            "crack_select"
        );
        assert_eq!(bench_name("sharded_scale"), "sharded_scale");
        assert_eq!(bench_name("deps/no_hash-suffix"), "no_hash-suffix");
        assert_eq!(bench_name(""), "bench");
    }

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("inc", |b| b.iter(|| runs += 1));
        // one warm-up + three samples
        assert_eq!(runs, 4);
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &p| {
            b.iter_batched(|| p, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
