//! Offline drop-in replacement for the subset of `rand` 0.8 used by this
//! workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a tiny, API-compatible implementation: a seedable
//! xoshiro256++ generator (`rngs::SmallRng`), `Rng::{gen, gen_range,
//! gen_bool}` over integer and float ranges, and `seq::SliceRandom::shuffle`.
//! Determinism per seed is all the callers rely on; statistical quality of
//! xoshiro256++ comfortably exceeds what the workloads and tests need.

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high word of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift reduction of a random word onto `[0, span)`.
#[inline]
fn reduce(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + reduce(rng.next_u64(), span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform value of type `T` (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::reduce(rng.next_u64(), i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
