//! Offline drop-in stub of `serde_json`: renders the vendored `serde`
//! shim's `Value` tree to JSON text and parses it back.
//!
//! One deliberate deviation from strict JSON: non-finite floats are written
//! as the bare tokens `NaN`, `inf`, and `-inf` (strict JSON cannot
//! represent them), and the parser accepts them back. Snapshots written by
//! this crate are only ever read by this crate, so self-consistency is what
//! matters. Finite floats round-trip exactly (shortest-representation
//! printing).

use serde::{de::DeserializeOwned, DeError, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Render `value` as a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Write `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

/// Parse a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

/// Read all of `reader` and parse a value from it.
pub fn from_reader<R: Read, T: DeserializeOwned>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::new(format!("io error: {e}")))?;
    from_str(&buf)
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_nan() {
                out.push_str("NaN");
            } else if f.is_infinite() {
                out.push_str(if *f > 0.0 { "inf" } else { "-inf" });
            } else {
                // {:?} prints the shortest representation that round-trips,
                // always with a decimal point or exponent.
                out.push_str(&format!("{f:?}"));
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::F64(f64::NAN)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Value::F64(f64::INFINITY)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 encoded char.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| Error::new("empty char"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.eat_keyword("inf") {
                return Ok(Value::F64(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("bad number at offset {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("bad float `{text}`: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|v| Value::I64(-v))
                .map_err(|e| Error::new(format!("bad integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::new(format!("bad integer `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, u32)>>(&s).unwrap(), v);
    }

    #[test]
    fn extreme_numbers_roundtrip() {
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), u64::MAX);
        let f = 0.1f64 + 0.2;
        let s = to_string(&f).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), f);
        assert!(from_str::<f64>(&to_string(&f64::NAN).unwrap())
            .unwrap()
            .is_nan());
        assert_eq!(
            from_str::<f64>(&to_string(&f64::NEG_INFINITY).unwrap()).unwrap(),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "héllo \"world\" \u{1}\t∑";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }
}
