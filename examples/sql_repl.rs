//! Interactive SQL over a self-cracking store.
//!
//! ```sh
//! cargo run --release --example sql_repl            # empty session
//! echo "select count(*) from r where a < 500;" | \
//!   cargo run --release --example sql_repl -- --demo
//! ```
//!
//! With `--demo`, the session is preloaded with a 100k-row tapestry table
//! `r(k, a)` so range queries can be fired immediately. After every
//! statement the REPL reports how far the store has cracked itself — the
//! paper's "incremental buildup of a search accelerator, driven by actual
//! queries" (§2.2), watchable live.
//!
//! Meta-commands: `\d` lists tables, `\stats` prints crack statistics,
//! `\q` quits.

use dbcracker::prelude::*;
use std::io::{self, BufRead, Write};

fn main() {
    let demo = std::env::args().any(|a| a == "--demo");
    let mut session = SqlSession::new();
    if demo {
        let n = 100_000;
        eprintln!("loading demo table r(k, a) with {n} rows ...");
        let t = Tapestry::generate(n, 2, 42);
        session
            .load_table(
                "r",
                vec![
                    ("k".into(), t.column(0).to_vec()),
                    ("a".into(), t.column(1).to_vec()),
                ],
            )
            .expect("fresh session has no table r");
    }
    eprintln!("dbcracker SQL — statements end with ';', \\q quits");

    let stdin = io::stdin();
    let mut buffer = String::new();
    let mut out = io::stdout();
    loop {
        if buffer.is_empty() {
            eprint!("sql> ");
        } else {
            eprint!("  -> ");
        }
        io::stderr().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        match trimmed {
            "\\q" => break,
            "\\d" => {
                let catalog = session.adaptive().catalog();
                for name in catalog.names() {
                    let t = catalog.table(name).expect("listed");
                    println!(
                        "{name}({}) — {} rows",
                        t.schema().names().join(", "),
                        t.len()
                    );
                }
                continue;
            }
            "\\stats" => {
                let s = session.adaptive().total_crack_stats();
                println!(
                    "queries={} cracks={} tuples_touched={} tuples_moved={} \
                     cracked_columns={}",
                    s.queries,
                    s.cracks,
                    s.tuples_touched,
                    s.tuples_moved,
                    session.cracked_columns()
                );
                continue;
            }
            _ => {}
        }
        buffer.push_str(&line);
        // Execute once the buffer holds a complete (';'-terminated)
        // statement list.
        if !buffer.trim_end().ends_with(';') && !buffer.trim().is_empty() {
            continue;
        }
        let src = std::mem::take(&mut buffer);
        if src.trim().is_empty() {
            continue;
        }
        match session.execute(&src) {
            Ok(outputs) => {
                for o in outputs {
                    writeln!(out, "{o}").ok();
                }
                let s = session.adaptive().total_crack_stats();
                eprintln!(
                    "[cracked columns: {}, cracks so far: {}]",
                    session.cracked_columns(),
                    s.cracks
                );
            }
            Err(e) => eprintln!("{}", e.render(&src)),
        }
    }
    eprintln!("bye");
}
