//! A self-organizing P2P database, watched live.
//!
//! ```sh
//! cargo run --release --example p2p_selforg
//! ```
//!
//! The paper's closing conjecture (§7): "database cracking may proof a
//! sound basis to realize self-organizing databases in a P2P
//! environment." This demo stripes a table over four peers, then lets
//! each peer's clients hammer a range that starts out on the *wrong*
//! machine. Queries crack the owners' pieces; hot pieces migrate to
//! their consumers; within a few rounds every query is answered locally.

use dbcracker::p2p::{Network, NodeId, P2pConfig};
use dbcracker::prelude::*;

fn main() {
    let n = 200_000;
    let nodes = 4;
    println!("striping a {n}-row tapestry table over {nodes} peers ...");
    let tapestry = Tapestry::generate(n, 1, 7);
    let values = tapestry.column(0).to_vec();
    let mut net = Network::new(
        nodes,
        &values,
        1,
        n as i64 + 1,
        P2pConfig {
            migrate_after: 2,
            max_pieces_per_node: 256,
        },
    );

    // Peer i's clients zoom into three hot windows inside peer
    // ((i+1) % nodes)'s stripe — the worst static placement.
    let stripe = (n as i64 + nodes as i64 - 1) / nodes as i64;
    println!(
        "{:>5}  {:>6} {:>12} {:>11} {:>9}   distribution (tuples per peer)",
        "round", "hops", "transferred", "migrations", "locality"
    );
    for round in 1..=12 {
        let (mut hops, mut transferred, mut migrations) = (0, 0, 0);
        let (mut local, mut result) = (0, 0);
        for node in 0..nodes {
            let target_base = 1 + ((node + 1) % nodes) as i64 * stripe;
            for hot in 0..3i64 {
                let lo = target_base + hot * (stripe / 4);
                let t = net.query(NodeId(node), lo, lo + stripe / 8);
                hops += t.hops;
                transferred += t.transferred;
                migrations += t.migrations;
                local += t.local;
                result += t.result;
            }
        }
        let locality = if result == 0 {
            1.0
        } else {
            local as f64 / result as f64
        };
        println!(
            "{round:>5}  {hops:>6} {transferred:>12} {migrations:>11} {locality:>9.3}   {:?}",
            net.tuple_counts()
        );
    }
    net.validate().expect("overlay invariants hold");
    let s = net.stats();
    println!(
        "\ntotals: {} queries, {} cracks, {} migrations ({} tuples moved), {} fusions",
        s.queries, s.cracks, s.migrations, s.migrated_tuples, s.fusions
    );
    println!("the overlay re-partitioned itself query-by-query: no DBA, no resharding job.");
}
