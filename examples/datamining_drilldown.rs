//! A data-warehouse drill-down session — the paper's motivating workload.
//!
//! ```sh
//! cargo run --release --example datamining_drilldown
//! ```
//!
//! "Datawarehouses provide the basis for datamining, which is
//! characterized by lengthy query sequences zooming into a portion of
//! statistical interest" (§4). An analyst drills into a sales table:
//! range-restrict the revenue column step by step (Ξ cracking), then
//! group the survivors by region (Ω cracking) and aggregate — each query
//! both answers and reorganizes.

use dbcracker::cracker_core::group::{aggregate_groups, omega_crack};
use dbcracker::cracker_core::join::PairColumn;
use dbcracker::prelude::*;

fn main() {
    let n = 500_000;
    let regions = 8i64;

    // Synthetic sales: revenue is a permutation (all distinct values),
    // region cycles 0..regions.
    let tapestry = Tapestry::generate(n, 1, 2024);
    let revenue = tapestry.column(0).to_vec();
    let region: Vec<i64> = (0..n as i64).map(|i| i % regions).collect();

    // Phase 1 — drill into the top revenue band in four refinements.
    let mut cracked = CrackerColumn::new(revenue.clone());
    let bands = [
        (n as i64 / 2, n as i64),       // top half
        (3 * n as i64 / 4, n as i64),   // top quarter
        (7 * n as i64 / 8, n as i64),   // top eighth
        (15 * n as i64 / 16, n as i64), // top sixteenth
    ];
    println!("drill-down on revenue ({n} rows):");
    let mut final_sel = None;
    for (lo, hi) in bands {
        let before = *cracked.stats();
        let sel = cracked.select(RangePred::half_open(lo, hi));
        let d = cracked.stats().delta_since(&before);
        println!(
            "  revenue in [{lo}, {hi}): {} rows, touched {}, pieces {}",
            sel.count(),
            d.tuples_touched,
            cracked.piece_count()
        );
        final_sel = Some(sel);
    }

    // Phase 2 — Ω-crack the survivors by region and aggregate.
    let sel = final_sel.expect("four bands ran");
    let survivors = cracked.selection_oids(&sel);
    println!(
        "\nsurvivors: {} rows; grouping by region (Ω cracker) ...",
        survivors.len()
    );
    let mut by_region = PairColumn::from_pairs(
        survivors.iter().map(|&oid| region[oid as usize]).collect(),
        survivors.clone(),
    );
    let len = by_region.len();
    let omega = omega_crack(&mut by_region, 0..len);
    let counts = aggregate_groups(&by_region, &omega, |_, vals, _| vals.len());
    let sums = aggregate_groups(&by_region, &omega, |_, _, oids| {
        oids.iter().map(|&o| revenue[o as usize]).sum::<i64>()
    });
    println!("{:>8} {:>10} {:>16}", "region", "count", "sum(revenue)");
    for ((region, count), (_, sum)) in counts.iter().zip(&sums) {
        println!("{region:>8} {count:>10} {sum:>16}");
    }

    // Each region's piece is contiguous: follow-up per-region queries are
    // single-range reads.
    let r0 = omega.range_of(0).expect("region 0 exists");
    println!(
        "\nregion 0 occupies slots {:?} of the grouped column — contiguous, as Ω guarantees",
        r0
    );
}
