//! A scientific-database session with live updates.
//!
//! ```sh
//! cargo run --release --example sensor_exploration
//! ```
//!
//! §4's second playground: "the database is continuously filled with
//! stream/sensor information and the application has to keep track [of]
//! or localize interesting elements in a limited window." A float-valued
//! sensor column is explored with a strolling profile while new readings
//! keep arriving; the cracker's pending-update areas absorb them and the
//! periodic merge folds them in without losing the index built so far.

use dbcracker::cracker_core::{CrackerColumn, CrackerConfig, OrdF64, RangePred};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 200_000usize;
    let mut rng = SmallRng::seed_from_u64(0x5E45);

    // Initial readings: simulated sensor values in [0, 100).
    let initial: Vec<OrdF64> = (0..n).map(|_| OrdF64(rng.gen_range(0.0..100.0))).collect();
    let cfg = CrackerConfig::new().with_merge_threshold(5_000);
    let mut column = CrackerColumn::with_config(initial, cfg);
    let mut next_oid = n as u32;

    println!("exploring {n} sensor readings while new ones stream in ...\n");
    println!(
        "{:>4} {:>18} {:>10} {:>10} {:>9} {:>8} {:>7}",
        "step", "window", "matches", "touched", "pending", "pieces", "merges"
    );
    for step in 0..20 {
        // The analyst inspects a drifting anomaly band.
        let lo = 40.0 + step as f64;
        let hi = lo + 5.0;
        let before = *column.stats();
        let pred = RangePred::with_bounds(Some((OrdF64(lo), true)), Some((OrdF64(hi), false)));
        let sel = column.select(pred);
        let d = column.stats().delta_since(&before);
        println!(
            "{:>4} {:>8.1}..{:<8.1} {:>10} {:>10} {:>9} {:>8} {:>7}",
            step + 1,
            lo,
            hi,
            sel.count(),
            d.tuples_touched,
            column.pending_len(),
            column.piece_count(),
            column.stats().merges,
        );

        // Between queries, a burst of 2000 new readings arrives.
        for _ in 0..2000 {
            column.insert(next_oid, OrdF64(rng.gen_range(0.0..100.0)));
            next_oid += 1;
        }
        // And a handful of readings are retracted (sensor recalibration).
        for _ in 0..50 {
            let victim = rng.gen_range(0..next_oid);
            column.delete(victim);
        }
    }

    column.merge_pending();
    column.validate().expect("cracker invariants hold");
    println!(
        "\nfinal state: {} readings, {} pieces, {} merges — index survived {} inserts",
        column.len(),
        column.piece_count(),
        column.stats().merges,
        next_oid - n as u32,
    );
}
