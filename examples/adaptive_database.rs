//! The full adaptive database surface: multi-table, multi-column,
//! joins and group-bys, all cracking as a byproduct.
//!
//! ```sh
//! cargo run --release --example adaptive_database
//! ```
//!
//! Models the paper's architecture sketch (§3): the cracker sits between
//! the semantic analyzer and the optimizer, so *every* query shape —
//! range selection (Ξ), conjunction over several attributes, equi-join
//! (^), grouped aggregation (Ω) — contributes pieces, and the lineage
//! graph records them all.

use dbcracker::engine::db::AdaptiveDb;
use dbcracker::engine::query::AggFunc;
use dbcracker::prelude::*;

fn main() {
    let n = 200_000;
    let mut db = AdaptiveDb::new();

    // orders(id, customer, amount): the fact table.
    let t = Tapestry::generate(n, 2, 77);
    db.register(
        Table::from_int_columns(
            "orders",
            vec![
                ("customer", (0..n as i64).map(|i| i % 1000).collect()),
                ("amount", t.column(0).to_vec()),
                ("region", (0..n as i64).map(|i| i % 8).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    // customers(id): a small dimension (ids 0..1000, permuted).
    db.register(
        Table::from_int_columns("customers", vec![("id", (0..1000).rev().collect())]).unwrap(),
    )
    .unwrap();

    // 1. Range selections crack `amount` lazily.
    let q = RangeQuery::new("orders", "amount", RangePred::between(150_000, 160_000));
    let (oids, stats) = db.select(&q, OutputMode::Stream).unwrap();
    println!(
        "Q1 range on amount: {} rows, read {} tuples (first touch cracks)",
        oids.len(),
        stats.tuples_read
    );
    let (_, stats) = db.select(&q, OutputMode::Count).unwrap();
    println!(
        "Q1 again:            read {} tuples (index-only)",
        stats.tuples_read
    );

    // 2. A conjunction cracks a second column and intersects.
    let hits = db
        .select_conjunctive(
            "orders",
            &[
                ("amount", RangePred::ge(150_000)),
                ("customer", RangePred::lt(10)),
            ],
        )
        .unwrap();
    println!(
        "Q2 conjunction amount>=150000 AND customer<10: {} rows, {} columns cracked",
        hits.len(),
        db.cracked_columns()
    );

    // 3. An equi-join runs through the ^ cracker (semijoin split).
    let pairs = db.join("orders", "customer", "customers", "id").unwrap();
    println!(
        "Q3 join orders.customer = customers.id: {} pairs",
        pairs.len()
    );

    // 4. Grouped aggregation via the Ω cracker.
    let sums = db
        .group_aggregate("orders", "region", AggFunc::Sum, Some("amount"))
        .unwrap();
    println!("Q4 sum(amount) per region:");
    for (region, total) in &sums {
        println!("    region {region}: {total}");
    }

    // The lineage graph has recorded the wedge split.
    println!("\nlineage: {}", db.lineage().reconstruction_expr("orders"));
    println!("lineage: {}", db.lineage().reconstruction_expr("customers"));
    let s = db.total_crack_stats();
    println!(
        "cracker totals: {} queries, {} cracks, {} tuples touched, {} moved",
        s.queries, s.cracks, s.tuples_touched, s.tuples_moved
    );
}
