//! Quickstart: watch a column index itself.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a tapestry column, fires a zooming query sequence at it, and
//! prints how the per-query cost collapses as the store cracks itself —
//! the headline behaviour of the paper.

use dbcracker::prelude::*;

fn main() {
    let n = 1_000_000;
    println!("generating a {n}-row tapestry column ...");
    let tapestry = Tapestry::generate(n, 1, 42);
    let mut engine = CrackEngine::new(tapestry.column(0).to_vec());

    // A homerun: 12 nested refinements converging on a 2% target.
    let windows = homerun_sequence(n, 12, 0.02, Contraction::Linear, 7);

    println!(
        "{:>4}  {:>22}  {:>12} {:>12} {:>12} {:>8}",
        "step", "query", "result", "reads", "writes", "pieces"
    );
    for (i, w) in windows.iter().enumerate() {
        let stats = engine.run(w.to_pred(), OutputMode::Count);
        println!(
            "{:>4}  {:>10}..{:<10}  {:>12} {:>12} {:>12} {:>8}",
            i + 1,
            w.lo,
            w.hi,
            stats.result_count,
            stats.tuples_read,
            stats.tuples_written,
            engine.column().piece_count(),
        );
    }

    // The pay-off: repeating the final query is free.
    let again = engine.run(windows[11].to_pred(), OutputMode::Count);
    println!(
        "\nrepeat of the final query: {} results, {} tuples read — \
         the hot set is fully indexed",
        again.result_count, again.tuples_read
    );

    // Compare with the scan baseline over the same sequence.
    let mut scan = ScanEngine::new(tapestry.column(0).to_vec());
    let mut scan_reads = 0;
    let mut crack_reads = 0;
    let mut fresh = CrackEngine::new(tapestry.column(0).to_vec());
    for w in &windows {
        scan_reads += scan.run(w.to_pred(), OutputMode::Count).tuples_read;
        crack_reads += fresh.run(w.to_pred(), OutputMode::Count).tuples_read;
    }
    println!(
        "sequence totals: scan read {scan_reads} tuples, cracking read {crack_reads} \
         ({:.1}x fewer)",
        scan_reads as f64 / crack_reads as f64
    );
}
