//! The adaptive-indexing toolbox under an adversarial workload.
//!
//! ```sh
//! cargo run --release --example robust_indexing
//! ```
//!
//! The paper's §2.2 outlook draws query ranges at random, and there plain
//! cracking wins within "a handful of queries". But real streams contain
//! patterns — and a plain cracker facing a left-to-right sweep re-scans
//! the giant uncracked tail on every single query. This example runs the
//! same sweep against four engines and prints per-query tuples touched:
//!
//! * `scan` — the nocrack baseline;
//! * `sort` — sort-upfront, the §2.2 alternative;
//! * `crack` — plain cracking (watch it degenerate);
//! * `stochastic` — cracking + DDR auxiliary cuts (watch it not).

use dbcracker::prelude::*;
use workload::sequential::{adversarial_sequence, Adversary};

fn main() {
    let n = 1_000_000;
    let k = 128;
    println!("a {n}-row column under a {k}-step sequential sweep\n");
    let tapestry = Tapestry::generate(n, 1, 99);
    let vals = tapestry.column(0).to_vec();
    let windows = adversarial_sequence(n, k, Adversary::SequentialAsc);

    let mut engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(ScanEngine::new(vals.clone())),
        Box::new(SortEngine::new(vals.clone())),
        Box::new(CrackEngine::new(vals.clone())),
        Box::new(StochasticEngine::new(
            vals,
            StochasticPolicy::DDR { floor: 8_192 },
            7,
        )),
    ];

    println!(
        "{:>4}  {:>14} {:>14} {:>14} {:>14}",
        "step", "scan", "sort", "crack", "stochastic"
    );
    let mut totals = [0u64; 4];
    for (i, w) in windows.iter().enumerate() {
        let mut row = Vec::new();
        for (e, total) in engines.iter_mut().zip(&mut totals) {
            let stats = e.run(w.to_pred(), OutputMode::Count);
            *total += stats.tuples_read;
            row.push(stats.tuples_read);
        }
        // Print every eighth step (the trend, not the wall of numbers).
        if i % 8 == 0 || i + 1 == windows.len() {
            println!(
                "{:>4}  {:>14} {:>14} {:>14} {:>14}",
                i + 1,
                row[0],
                row[1],
                row[2],
                row[3]
            );
        }
    }
    println!(
        "{:>4}  {:>14} {:>14} {:>14} {:>14}   (total tuples read)",
        "sum", totals[0], totals[1], totals[2], totals[3]
    );
    println!(
        "\nplain cracking read {}x more than stochastic on this sweep;",
        totals[2] / totals[3].max(1)
    );
    println!("on random workloads the two are within ~20% of each other — run");
    println!("`cargo run -p bench --release --bin ext_stochastic` for the full grid.");
}
