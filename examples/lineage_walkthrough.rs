//! The paper's Figure 5 worked end-to-end: three queries crack two
//! relations, the lineage graph records every piece, and the originals
//! are reconstructed from the leaves.
//!
//! ```sh
//! cargo run --example lineage_walkthrough
//! ```
//!
//! ```sql
//! select * from R where R.a < 10;
//! select * from R, S where R.k = S.k and R.a < 5;
//! select * from S where S.b > 25;
//! ```

use dbcracker::cracker_core::join::{join_matched, wedge_crack, PairColumn};
use dbcracker::cracker_core::lineage::{CrackOp, LineageGraph};
use dbcracker::prelude::*;

fn main() {
    // R(k, a) and S(k, b), small enough to eyeball.
    let r_k: Vec<i64> = (0..20).map(|i| i * 3 % 20).collect();
    let r_a: Vec<i64> = (0..20).map(|i| (i * 7 + 2) % 40).collect();
    let s_k: Vec<i64> = (0..15).map(|i| i * 2 % 30).collect();
    let s_b: Vec<i64> = (0..15).map(|i| (i * 11) % 50).collect();

    let mut lineage = LineageGraph::new();
    let r_root = lineage.add_root("R");
    let s_root = lineage.add_root("S");

    // Query 1: Ξ(R.a < 10) — crack R on a.
    let mut r_col = CrackerColumn::new(r_a.clone());
    let sel1 = r_col.select(RangePred::lt(10));
    let out = lineage.apply(CrackOp::Xi("R.a<10".into()), &[r_root], &[2]);
    let r2 = out[0][1];
    println!(
        "Q1  select * from R where R.a < 10   -> {} rows",
        sel1.count()
    );

    // Query 2: Ξ(R.a < 5) narrows within the cracked store, then
    // ^(R.k = S.k) wedge-cracks the qualifying R piece against S.
    let sel2 = r_col.select(RangePred::lt(5));
    let out = lineage.apply(CrackOp::Xi("R.a<5".into()), &[r2], &[2]);
    let r4 = out[0][1];
    let qualifying = r_col.selection_oids(&sel2);
    let mut r_join = PairColumn::from_pairs(
        qualifying.iter().map(|&o| r_k[o as usize]).collect(),
        qualifying.clone(),
    );
    let mut s_join = PairColumn::new(s_k.clone());
    let (rn, sn) = (r_join.len(), s_join.len());
    let wedge = wedge_crack(&mut r_join, &mut s_join, 0..rn, 0..sn);
    let pairs = join_matched(&r_join, &s_join, &wedge);
    let out = lineage.apply(CrackOp::Wedge("R.k=S.k".into()), &[r4, s_root], &[2, 2]);
    let (s3, s4) = (out[1][0], out[1][1]);
    println!(
        "Q2  join on k with R.a < 5            -> {} joined pairs; S split into {} / {} (match / no-match)",
        pairs.len(),
        wedge.s_match.len(),
        sn - wedge.s_match.len()
    );

    // Query 3: Ξ(S.b > 25) — nothing is known about b yet, so both S
    // pieces are inspected and cracked.
    let mut s_col = CrackerColumn::new(s_b.clone());
    let sel3 = s_col.select(RangePred::gt(25));
    lineage.apply(CrackOp::Xi("S.b>25".into()), &[s3, s4], &[2, 2]);
    println!(
        "Q3  select * from S where S.b > 25   -> {} rows",
        sel3.count()
    );

    // The cracker index administration, exactly as in Figure 5.
    println!("\nlineage after three queries:");
    println!("  {}", lineage.reconstruction_expr("R"));
    println!("  {}", lineage.reconstruction_expr("S"));

    // Loss-less check: the R pieces in the cracked column still hold
    // every original tuple.
    let mut all: Vec<i64> = r_col.values().to_vec();
    all.sort_unstable();
    let mut orig = r_a;
    orig.sort_unstable();
    assert_eq!(all, orig, "union of pieces reconstructs R");
    println!("\nreconstruction check passed: pieces union to the original relations");
}
