#![warn(missing_docs)]
//! # dbcracker — *Cracking the Database Store*, in Rust
//!
//! A from-scratch reproduction of Kersten & Manegold's CIDR 2005 paper on
//! **database cracking**: making physical reorganization a byproduct of
//! query processing instead of an update-time obligation. Each query is
//! read both as a request for a subset and as "advice to crack the
//! database store into smaller pieces augmented with an index to access
//! them" — so the store adaptively converges toward an index of exactly
//! the hot set.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`storage`] | MonetDB-like BAT column store: typed tails, string heaps, zero-copy views, accelerators, in-memory catalog |
//! | [`cracker_core`] | the paper's contribution: crack-in-two/three, the cracker index, Ξ/Ψ/^/Ω operators, lineage, fusion, updates |
//! | [`engine`] | relational substrate: tables, Volcano operators, select-push-down planner, scan/sort/crack access engines, cost model |
//! | [`workload`] | DBtapestry generator and the MQS(α,N,k,σ,ρ,δ) multi-query benchmark kit (homerun / hiking / strolling) |
//! | [`sim`] | the §2.2 granule-vector cost simulation behind Figures 2–3 |
//! | [`sql`] | SQL front-end: lexer/parser, DNF normalizer, lowering onto the cracker, and an interactive [`sql::SqlSession`] |
//! | [`p2p`] | self-organizing P2P overlay: cracking as the partitioning engine of a distributed store (paper §7) |
//!
//! ## Quickstart
//!
//! ```
//! use dbcracker::prelude::*;
//!
//! // A tapestry column in random order.
//! let tapestry = Tapestry::generate(10_000, 1, 42);
//! let mut engine = CrackEngine::new(tapestry.column(0).to_vec());
//!
//! // Fire a zooming query sequence; the store reorganizes itself.
//! let windows = homerun_sequence(10_000, 8, 0.02, Contraction::Linear, 7);
//! for window in &windows {
//!     let stats = engine.run(window.to_pred(), OutputMode::Count);
//!     assert!(stats.result_count > 0);
//! }
//! // After a few queries the hot range is fully isolated: repeats are free.
//! let again = engine.run(windows[7].to_pred(), OutputMode::Count);
//! assert_eq!(again.tuples_read, 0);
//! ```

pub use cracker_core;
pub use engine;
pub use p2p;
pub use sim;
pub use sql;
pub use storage;
pub use workload;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use cracker_core::{
        simd_supported, CrackKernel, CrackMode, CrackStats, CrackerColumn, CrackerConfig,
        FusionPolicy, KernelPolicy, RangePred,
    };
    pub use cracker_core::{
        ConcurrencyMode, ConcurrentColumn, ShardedCrackerColumn, SharedCrackerColumn,
    };
    pub use cracker_core::{CrackPolicy, PolicyCracker, StochasticCracker, StochasticPolicy};
    pub use engine::{
        ChaosReport, CrackEngine, DbCatalog, DbScenarioRunner, EngineProfile, OutputMode,
        QueryEngine, RangeQuery, RunStats, ScanEngine, SortEngine, StochasticEngine, Table,
    };
    pub use sim::{fig2_series, fig3_series, GranuleSim};
    pub use sql::{QueryOutput, SqlSession};
    pub use storage::{Atom, AtomType, Bat, BatView, StoreCatalog};
    pub use workload::homerun::homerun_sequence;
    pub use workload::scenario::{
        ChaosAction, ChaosSchedule, Op, RunReport, Scenario, ScenarioExecutor, ScenarioRunner,
        Shift, ShiftingHotSet, SortedOracle, UpdateHeavy, ZipfQueries,
    };
    pub use workload::strolling::strolling_sequence;
    pub use workload::{Contraction, Mqs, Profile, Tapestry, Window};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable_end_to_end() {
        let t = Tapestry::generate(100, 2, 1);
        let mut e = CrackEngine::new(t.column(0).to_vec());
        let s = e.run(RangePred::between(10, 20), OutputMode::Count);
        assert_eq!(s.result_count, 11);
    }
}
